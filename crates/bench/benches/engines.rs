//! Benches for the activation schedulers: how fast can each engine hand
//! out ticks? Driven by the shared benchmark registry (`scheduler` group),
//! so `cargo bench --bench engines` and `xp bench run scheduler` measure
//! exactly the same kernels. Accepts `--quick` / `--budget-ms N` and a
//! substring filter.

use rapid_bench::harness::Harness;

fn main() {
    Harness::from_args().run_groups(&["scheduler"]);
}
