//! Criterion benches for the activation schedulers: how fast can each
//! engine hand out ticks?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapid_sim::prelude::*;

const BATCH: u64 = 10_000;

fn schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.throughput(Throughput::Elements(BATCH));
    for &n in &[1usize << 10, 1 << 16] {
        group.bench_with_input(
            BenchmarkId::new("sequential_expected", n),
            &n,
            |b, &n| {
                let mut s = SequentialScheduler::new(n, Seed::new(1));
                b.iter(|| {
                    for _ in 0..BATCH {
                        std::hint::black_box(s.next_activation());
                    }
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("sequential_sampled", n), &n, |b, &n| {
            let mut s = SequentialScheduler::with_mode(n, Seed::new(2), TimeMode::Sampled);
            b.iter(|| {
                for _ in 0..BATCH {
                    std::hint::black_box(s.next_activation());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("event_queue", n), &n, |b, &n| {
            let mut s = EventQueueScheduler::new(n, Seed::new(3), 1.0);
            b.iter(|| {
                for _ in 0..BATCH {
                    std::hint::black_box(s.next_activation());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("jittered", n), &n, |b, &n| {
            let inner = SequentialScheduler::with_mode(n, Seed::new(4), TimeMode::Sampled);
            let mut s = JitteredScheduler::new(inner, Seed::new(5), 2.0);
            b.iter(|| {
                for _ in 0..BATCH {
                    std::hint::black_box(s.next_activation());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, schedulers);
criterion_main!(benches);
