//! Benches for the activation schedulers: how fast can each engine hand
//! out ticks?

use rapid_bench::harness::Harness;
use rapid_sim::prelude::*;

const BATCH: u64 = 10_000;

fn main() {
    let h = Harness::from_args();
    for &n in &[1usize << 10, 1 << 16] {
        h.bench(&format!("schedulers/sequential_expected/{n}"), BATCH, {
            let mut s = SequentialScheduler::new(n, Seed::new(1));
            move || {
                for _ in 0..BATCH {
                    std::hint::black_box(s.next_activation());
                }
            }
        });
        h.bench(&format!("schedulers/sequential_sampled/{n}"), BATCH, {
            let mut s = SequentialScheduler::with_mode(n, Seed::new(2), TimeMode::Sampled);
            move || {
                for _ in 0..BATCH {
                    std::hint::black_box(s.next_activation());
                }
            }
        });
        h.bench(&format!("schedulers/event_queue/{n}"), BATCH, {
            let mut s = EventQueueScheduler::new(n, Seed::new(3), 1.0);
            move || {
                for _ in 0..BATCH {
                    std::hint::black_box(s.next_activation());
                }
            }
        });
        h.bench(&format!("schedulers/jittered/{n}"), BATCH, {
            let inner = SequentialScheduler::with_mode(n, Seed::new(4), TimeMode::Sampled);
            let mut s = JitteredScheduler::new(inner, Seed::new(5), 2.0);
            move || {
                for _ in 0..BATCH {
                    std::hint::black_box(s.next_activation());
                }
            }
        });
    }
}
