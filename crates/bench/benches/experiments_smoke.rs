//! End-to-end smoke benches: a complete consensus run per iteration.
//!
//! These are the "table kernels": each experiment binary spends its time in
//! exactly these loops, so tracking their wall-clock here catches
//! performance regressions in the whole stack (scheduler → protocol →
//! bookkeeping).

use criterion::{criterion_group, criterion_main, Criterion};
use rapid_bench::bench_counts;
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_runs");
    group.sample_size(10);

    group.bench_function("sync_two_choices_n4096", |b| {
        let counts = bench_counts(4096, 8, 0.5);
        let g = Complete::new(4096);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut config = Configuration::from_counts(&counts).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(seed));
            run_sync_to_consensus(&mut TwoChoices::new(), &g, &mut config, &mut rng, 100_000)
                .expect("converges")
        });
    });

    group.bench_function("sync_one_extra_bit_n4096", |b| {
        let counts = bench_counts(4096, 8, 0.5);
        let g = Complete::new(4096);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut config = Configuration::from_counts(&counts).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(seed));
            let mut proto = OneExtraBit::for_network(4096, 8);
            run_sync_to_consensus(&mut proto, &g, &mut config, &mut rng, 100_000)
                .expect("converges")
        });
    });

    group.bench_function("rapid_async_n2048", |b| {
        let counts = bench_counts(2048, 4, 0.5);
        let params = Params::for_network_with_eps(2048, 4, 0.5);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = clique_rapid(&counts, params, Seed::new(seed));
            let budget = sim.default_step_budget();
            sim.run_until_consensus(budget).expect("converges")
        });
    });

    group.bench_function("async_gossip_endgame_n2048", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim =
                clique_gossip(&[1948, 100], GossipRule::TwoChoices, Seed::new(seed))
                    .with_halt_after(200);
            sim.run_until_consensus(50_000_000).expect("converges")
        });
    });

    group.finish();
}

criterion_group!(benches, full_runs);
criterion_main!(benches);
