//! End-to-end smoke benches: a complete consensus run per iteration.
//!
//! These are the "table kernels": each experiment binary spends its time
//! in exactly these loops, so tracking their wall-clock here catches
//! performance regressions in the whole stack (scheduler → protocol →
//! bookkeeping). Every run goes through the unified `Sim` builder, so the
//! façade's dispatch overhead is measured too.

use rapid_bench::bench_counts;
use rapid_bench::harness::Harness;
use rapid_core::facade::Sim;
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn main() {
    let h = Harness::from_args();

    h.bench("consensus_runs/sync_two_choices_n4096", 1, {
        let counts = bench_counts(4096, 8, 0.5);
        let mut seed = 0u64;
        move || {
            seed += 1;
            let out = Sim::builder()
                .topology(Complete::new(4096))
                .counts(&counts)
                .protocol(TwoChoices::new())
                .seed(Seed::new(seed))
                .stop(StopCondition::RoundBudget(100_000))
                .build()
                .expect("valid")
                .run();
            assert!(out.converged(), "converges");
        }
    });

    h.bench("consensus_runs/sync_one_extra_bit_n4096", 1, {
        let counts = bench_counts(4096, 8, 0.5);
        let mut seed = 0u64;
        move || {
            seed += 1;
            let out = Sim::builder()
                .topology(Complete::new(4096))
                .counts(&counts)
                .protocol(OneExtraBit::for_network(4096, 8))
                .seed(Seed::new(seed))
                .stop(StopCondition::RoundBudget(100_000))
                .build()
                .expect("valid")
                .run();
            assert!(out.converged(), "converges");
        }
    });

    h.bench("consensus_runs/rapid_async_n2048", 1, {
        let counts = bench_counts(2048, 4, 0.5);
        let params = Params::for_network_with_eps(2048, 4, 0.5);
        let mut seed = 0u64;
        move || {
            seed += 1;
            let out = Sim::builder()
                .topology(Complete::new(2048))
                .counts(&counts)
                .rapid(params)
                .seed(Seed::new(seed))
                .build()
                .expect("valid")
                .run();
            assert!(out.converged(), "converges");
        }
    });

    h.bench("consensus_runs/async_gossip_endgame_n2048", 1, {
        let mut seed = 0u64;
        move || {
            seed += 1;
            let out = Sim::builder()
                .topology(Complete::new(2048))
                .counts(&[1948, 100])
                .gossip(GossipRule::TwoChoices)
                .halt_after(200)
                .seed(Seed::new(seed))
                .stop(StopCondition::StepBudget(50_000_000))
                .build()
                .expect("valid")
                .run();
            assert!(out.converged(), "converges");
        }
    });
}
