//! End-to-end smoke benches: a complete consensus run per iteration.
//!
//! These are the "table kernels": each experiment spends its time in
//! exactly these loops, so tracking their wall-clock catches performance
//! regressions in the whole stack (scheduler → protocol → bookkeeping).
//! Every run goes through the unified `Sim` builder, so the façade's
//! dispatch overhead is measured too. Driven by the shared benchmark
//! registry (`consensus` group), so `cargo bench` and `xp bench` measure
//! exactly the same kernels. Accepts `--quick` / `--budget-ms N` and a
//! substring filter.

use rapid_bench::harness::Harness;

fn main() {
    Harness::from_args().run_groups(&["consensus"]);
}
