//! Criterion benches for the protocol kernels: one synchronous round of
//! each protocol, one OneExtraBit phase, and batches of asynchronous ticks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapid_bench::bench_counts;
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn sync_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_round");
    for &n in &[1usize << 10, 1 << 14] {
        let counts = bench_counts(n as u64, 8, 0.3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("two_choices", n), &n, |b, &n| {
            let g = Complete::new(n);
            let mut config = Configuration::from_counts(&counts).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(1));
            let mut proto = TwoChoices::new();
            b.iter(|| proto.round(&g, &mut config, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("three_majority", n), &n, |b, &n| {
            let g = Complete::new(n);
            let mut config = Configuration::from_counts(&counts).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(2));
            let mut proto = ThreeMajority::new();
            b.iter(|| proto.round(&g, &mut config, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("voter", n), &n, |b, &n| {
            let g = Complete::new(n);
            let mut config = Configuration::from_counts(&counts).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(3));
            let mut proto = Voter::new();
            b.iter(|| proto.round(&g, &mut config, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("one_extra_bit", n), &n, |b, &n| {
            let g = Complete::new(n);
            let mut config = Configuration::from_counts(&counts).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(4));
            let mut proto = OneExtraBit::for_network(n, 8);
            b.iter(|| proto.round(&g, &mut config, &mut rng));
        });
    }
    group.finish();
}

fn async_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_ticks");
    for &n in &[1usize << 10, 1 << 14] {
        let counts = bench_counts(n as u64, 8, 0.3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("rapid_sim_n_ticks", n), &n, |b, &n| {
            let params = Params::for_network(n, 8);
            let mut sim = clique_rapid(&counts, params, Seed::new(5));
            b.iter(|| {
                for _ in 0..n {
                    sim.tick();
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("gossip_n_ticks", n), &n, |b, &n| {
            let mut sim = clique_gossip(&counts, GossipRule::TwoChoices, Seed::new(6));
            b.iter(|| {
                for _ in 0..n {
                    sim.tick();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, sync_round, async_ticks);
criterion_main!(benches);
