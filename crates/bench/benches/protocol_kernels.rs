//! Benches for the protocol kernels: one synchronous round of each
//! protocol and batches of asynchronous ticks.

use rapid_bench::bench_counts;
use rapid_bench::harness::Harness;
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn main() {
    let h = Harness::from_args();

    for &n in &[1usize << 10, 1 << 14] {
        let counts = bench_counts(n as u64, 8, 0.3);
        let g = Complete::new(n);

        let sync_case = |name: &str, proto: &mut dyn SyncProtocol, seed: u64| {
            let mut config = Configuration::from_counts(&counts).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(seed));
            h.bench(&format!("sync_round/{name}/{n}"), n as u64, || {
                proto.round(&g, &mut config, &mut rng);
            });
        };
        sync_case("two_choices", &mut TwoChoices::new(), 1);
        sync_case("three_majority", &mut ThreeMajority::new(), 2);
        sync_case("voter", &mut Voter::new(), 3);
        sync_case("one_extra_bit", &mut OneExtraBit::for_network(n, 8), 4);

        h.bench(&format!("async_ticks/rapid_sim_n_ticks/{n}"), n as u64, {
            let params = Params::for_network(n, 8);
            let config = Configuration::from_counts(&counts).expect("valid");
            let source = SequentialScheduler::new(n, Seed::new(5));
            let mut sim = RapidSim::new(Complete::new(n), config, params, source, Seed::new(15));
            move || {
                for _ in 0..n {
                    sim.tick();
                }
            }
        });
        h.bench(&format!("async_ticks/gossip_n_ticks/{n}"), n as u64, {
            let config = Configuration::from_counts(&counts).expect("valid");
            let source = SequentialScheduler::new(n, Seed::new(6));
            let mut sim = AsyncGossipSim::new(
                Complete::new(n),
                config,
                GossipRule::TwoChoices,
                source,
                Seed::new(16),
            );
            move || {
                for _ in 0..n {
                    sim.tick();
                }
            }
        });
    }
}
