//! Benches for the protocol kernels: batches of asynchronous ticks
//! (gossip and the full Rapid two-phase step) and one synchronous round of
//! each round-based protocol. Driven by the shared benchmark registry
//! (`gossip` / `rapid` / `sync` groups), so `cargo bench` and `xp bench`
//! measure exactly the same kernels. Accepts `--quick` / `--budget-ms N`
//! and a substring filter.

use rapid_bench::harness::Harness;

fn main() {
    Harness::from_args().run_groups(&["gossip", "rapid", "sync"]);
}
