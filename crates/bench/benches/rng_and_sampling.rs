//! Benches for the low-level primitives: RNG output, bounded sampling,
//! neighbor sampling, urn steps and stats accumulators. Driven by the
//! shared benchmark registry (`rng` / `topology` / `urn` / `stats`
//! groups), so `cargo bench` and `xp bench` measure exactly the same
//! kernels. Accepts `--quick` / `--budget-ms N` and a substring filter.

use rapid_bench::harness::Harness;

fn main() {
    Harness::from_args().run_groups(&["rng", "topology", "urn", "stats"]);
}
