//! Criterion benches for the low-level primitives: RNG output, bounded
//! sampling, neighbor sampling, urn steps, Beta draws.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_urn::{BetaDistribution, PolyaUrn};

const BATCH: u64 = 10_000;

fn rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("next_u64", |b| {
        let mut rng = SimRng::from_seed_value(Seed::new(1));
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc = acc.wrapping_add(rand::RngCore::next_u64(&mut rng));
            }
            acc
        });
    });
    group.bench_function("bounded", |b| {
        let mut rng = SimRng::from_seed_value(Seed::new(2));
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc += rng.bounded(12345);
            }
            acc
        });
    });
    group.bench_function("unit_f64", |b| {
        let mut rng = SimRng::from_seed_value(Seed::new(3));
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.unit_f64();
            }
            acc
        });
    });
    group.finish();
}

fn sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("complete_neighbor", |b| {
        let g = Complete::new(1 << 16);
        let mut rng = SimRng::from_seed_value(Seed::new(4));
        let u = NodeId::new(7);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..BATCH {
                acc += g.sample_neighbor(u, &mut rng).index();
            }
            acc
        });
    });
    group.bench_function("regular_neighbor", |b| {
        let g = RandomRegular::sample(1 << 12, 8, Seed::new(5)).expect("samplable");
        let mut rng = SimRng::from_seed_value(Seed::new(6));
        let u = NodeId::new(7);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..BATCH {
                acc += g.sample_neighbor(u, &mut rng).index();
            }
            acc
        });
    });
    group.bench_function("urn_step", |b| {
        let mut urn = PolyaUrn::new(vec![100, 50, 25], 1).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(7));
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..BATCH {
                acc += urn.step(&mut rng);
            }
            acc
        });
    });
    group.bench_function("beta_sample", |b| {
        let d = BetaDistribution::new(3.0, 7.0);
        let mut rng = SimRng::from_seed_value(Seed::new(8));
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += d.sample(&mut rng);
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, rng, sampling);
criterion_main!(benches);
