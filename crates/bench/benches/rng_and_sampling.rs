//! Benches for the low-level primitives: RNG output, bounded sampling,
//! neighbor sampling, urn steps, Beta draws.

use rapid_bench::harness::Harness;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_urn::{BetaDistribution, PolyaUrn};

const BATCH: u64 = 10_000;

fn main() {
    let h = Harness::from_args();

    h.bench("rng/next_u64", BATCH, {
        let mut rng = SimRng::from_seed_value(Seed::new(1));
        move || {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc = acc.wrapping_add(rng.next_u64());
            }
            std::hint::black_box(acc);
        }
    });
    h.bench("rng/bounded", BATCH, {
        let mut rng = SimRng::from_seed_value(Seed::new(2));
        move || {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc += rng.bounded(12345);
            }
            std::hint::black_box(acc);
        }
    });
    h.bench("rng/unit_f64", BATCH, {
        let mut rng = SimRng::from_seed_value(Seed::new(3));
        move || {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += rng.unit_f64();
            }
            std::hint::black_box(acc);
        }
    });

    h.bench("sampling/complete_neighbor", BATCH, {
        let g = Complete::new(1 << 16);
        let mut rng = SimRng::from_seed_value(Seed::new(4));
        let u = NodeId::new(7);
        move || {
            let mut acc = 0usize;
            for _ in 0..BATCH {
                acc += g.sample_neighbor(u, &mut rng).index();
            }
            std::hint::black_box(acc);
        }
    });
    h.bench("sampling/regular_neighbor", BATCH, {
        let g = RandomRegular::sample(1 << 12, 8, Seed::new(5)).expect("samplable");
        let mut rng = SimRng::from_seed_value(Seed::new(6));
        let u = NodeId::new(7);
        move || {
            let mut acc = 0usize;
            for _ in 0..BATCH {
                acc += g.sample_neighbor(u, &mut rng).index();
            }
            std::hint::black_box(acc);
        }
    });
    h.bench("sampling/urn_step", BATCH, {
        let mut urn = PolyaUrn::new(vec![100, 50, 25], 1).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(7));
        move || {
            let mut acc = 0usize;
            for _ in 0..BATCH {
                acc += urn.step(&mut rng);
            }
            std::hint::black_box(acc);
        }
    });
    h.bench("sampling/beta_sample", BATCH, {
        let d = BetaDistribution::new(3.0, 7.0);
        let mut rng = SimRng::from_seed_value(Seed::new(8));
        move || {
            let mut acc = 0.0;
            for _ in 0..BATCH {
                acc += d.sample(&mut rng);
            }
            std::hint::black_box(acc);
        }
    });
}
