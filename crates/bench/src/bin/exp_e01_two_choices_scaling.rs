//! Regenerates Table 1: Theorem 1.1 upper bound (Two-Choices scaling).
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e01;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e01::Config::quick(),
        Scale::Full => e01::Config::default(),
    };
    emit(&e01::run(&cfg));
}
