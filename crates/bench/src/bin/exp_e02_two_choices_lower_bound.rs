//! Regenerates Figure 1: Theorem 1.1 lower bound (Omega(k)).
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e02;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e02::Config::quick(),
        Scale::Full => e02::Config::default(),
    };
    emit(&e02::run(&cfg));
}
