//! Regenerates Table 2: small-bias failure of Two-Choices.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e03;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e03::Config::quick(),
        Scale::Full => e03::Config::default(),
    };
    emit(&e03::run(&cfg));
}
