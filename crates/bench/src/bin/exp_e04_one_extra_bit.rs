//! Regenerates Table 3: Theorem 1.2 (OneExtraBit).
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e04;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e04::Config::quick(),
        Scale::Full => e04::Config::default(),
    };
    emit(&e04::run(&cfg));
}
