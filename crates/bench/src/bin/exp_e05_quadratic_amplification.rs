//! Regenerates Figure 2: quadratic bias amplification.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e05;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e05::Config::quick(),
        Scale::Full => e05::Config::default(),
    };
    emit(&e05::run(&cfg));
}
