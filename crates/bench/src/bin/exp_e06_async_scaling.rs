//! Regenerates Table 4: Theorem 1.3 (async Theta(log n)).
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e06;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e06::Config::quick(),
        Scale::Full => e06::Config::default(),
    };
    emit(&e06::run(&cfg));
}
