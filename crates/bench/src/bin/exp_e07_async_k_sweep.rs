//! Regenerates Figure 3: async k-sweep.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e07;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e07::Config::quick(),
        Scale::Full => e07::Config::default(),
    };
    emit(&e07::run(&cfg));
}
