//! Regenerates Figure 4: weak synchronicity / Sync Gadget ablation.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e08;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e08::Config::quick(),
        Scale::Full => e08::Config::default(),
    };
    emit(&e08::run(&cfg));
}
