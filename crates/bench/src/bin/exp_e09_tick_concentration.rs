//! Regenerates Table 5: tick concentration and the Omega(log n) barrier.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e09;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e09::Config::quick(),
        Scale::Full => e09::Config::default(),
    };
    emit(&e09::run(&cfg));
}
