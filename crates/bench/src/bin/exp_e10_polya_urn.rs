//! Regenerates Figure 5: Bit-Propagation as a Polya urn.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e10;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e10::Config::quick(),
        Scale::Full => e10::Config::default(),
    };
    emit(&e10::run(&cfg));
}
