//! Regenerates Table 6: the endgame.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e11;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e11::Config::quick(),
        Scale::Full => e11::Config::default(),
    };
    emit(&e11::run(&cfg));
}
