//! Regenerates Table 7: exponential response delays.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e12;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e12::Config::quick(),
        Scale::Full => e12::Config::default(),
    };
    emit(&e12::run(&cfg));
}
