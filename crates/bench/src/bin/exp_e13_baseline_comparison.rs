//! Regenerates Figure 6: protocol comparison.
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e13;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e13::Config::quick(),
        Scale::Full => e13::Config::default(),
    };
    emit(&e13::run(&cfg));
}
