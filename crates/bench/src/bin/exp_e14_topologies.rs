//! Regenerates Figure 7 (extension): the protocols beyond the complete
//! graph (discussion §4).
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e14;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e14::Config::quick(),
        Scale::Full => e14::Config::default(),
    };
    emit(&e14::run(&cfg));
}
