//! Regenerates Table 8 (extension): robustness to heterogeneous clock
//! rates (discussion §4).
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e15;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e15::Config::quick(),
        Scale::Full => e15::Config::default(),
    };
    emit(&e15::run(&cfg));
}
