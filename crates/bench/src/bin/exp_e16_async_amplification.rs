//! Regenerates Figure 8: quadratic amplification inside the asynchronous
//! protocol (Section 3).
//!
//! Run with `--quick` for a CI-scale run; the default reproduces the
//! paper-scale sweep recorded in EXPERIMENTS.md.
use rapid_experiments::cli::{emit, Scale};
use rapid_experiments::e16;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => e16::Config::quick(),
        Scale::Full => e16::Config::default(),
    };
    emit(&e16::run(&cfg));
}
