//! `xp` — the single multiplexed experiment-and-benchmark driver.
//!
//! `xp list` enumerates the experiment registry; `xp run <id> [--quick]
//! [--set k=v]` runs any experiment with per-parameter overrides; `xp all`
//! sweeps the whole registry; `xp bench …` drives the benchmark registry and the
//! `BENCH_*.json` performance trajectory; `xp sweep …` runs a cached parameter
//! grid and `xp serve` exposes sweeps plus the benchmark trajectory over HTTP;
//! `xp net run …` boots a real message-passing deployment (channel or UDP
//! loopback); `xp lint` runs the determinism & hygiene static-analysis pass
//! over the workspace's own source. All behaviour lives in
//! `rapid_experiments::cli`, `rapid_bench::cli`, `rapid_sweep::cli`,
//! `rapid_net::cli` and `rapid_lint::cli` so it is unit tested; this binary
//! only dispatches the first word, injects the benchmark-trajectory provider
//! into `serve`, and adapts the exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("bench") => rapid_bench::cli::run(&args[1..]),
        Some("net") => rapid_net::cli::run(&args[1..]),
        Some("lint") => rapid_lint::cli::run(&args[1..]),
        Some("sweep") => rapid_sweep::cli::sweep(&args[1..]),
        Some("serve") => rapid_sweep::cli::serve(
            &args[1..],
            Some(rapid_bench::trajectory::provider(
                rapid_bench::trajectory::default_dir(),
            )),
        ),
        _ => rapid_experiments::cli::run(&args),
    };
    std::process::exit(code);
}
