//! `xp` — the single multiplexed experiment driver.
//!
//! `xp list` enumerates the registry; `xp run <id> [--quick] [--set k=v]`
//! runs any experiment with per-parameter overrides; `xp all` sweeps all
//! sixteen. All behaviour lives in `rapid_experiments::cli` so it is unit
//! tested; this binary only adapts process arguments and the exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(rapid_experiments::cli::run(&args));
}
