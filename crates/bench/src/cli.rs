//! The `xp bench` command line: registry-driven micro-benchmarks.
//!
//! Mirrors the experiment CLI one level down:
//!
//! ```text
//! xp bench list                       every bench: id, group, title
//! xp bench run scheduler event_queue  run by group / id / substring
//! xp bench all --budget-ms 50        the full registry, CI budget
//! xp bench all --format json          machine-readable BENCH document
//! xp bench all --baseline bench/baseline.json --gate 100
//! ```
//!
//! Every `run`/`all` saves a timestamped `BENCH_<unix-ms>.json` under
//! `<workspace>/target/benchmarks` (override with `--out DIR`) — the
//! performance trajectory. With `--baseline FILE` the run is diffed
//! against a previous document; with `--gate PCT` a median more than
//! `PCT` percent slower (beyond an absolute noise floor) makes the
//! process exit 1, which is what the CI perf job keys off.

use std::path::{Path, PathBuf};

use crate::registry;
use crate::report::{gate, BenchReport, GateVerdict};
use crate::sample::{Bench, BenchSample, BudgetCfg};

/// How a run is rendered on stdout.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BenchFormat {
    /// Aligned text table (the default).
    #[default]
    Table,
    /// The full `BENCH_*.json` document (plus the gate verdict, if any).
    Json,
}

/// Options shared by `xp bench run` and `xp bench all`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchOpts {
    /// `--budget-ms N` / `--quick` per-bench budget.
    pub budget_ms: u64,
    /// `--format table|json`.
    pub format: BenchFormat,
    /// `--out DIR` overrides the save directory.
    pub out: Option<PathBuf>,
    /// `--baseline FILE` to diff against.
    pub baseline: Option<PathBuf>,
    /// `--gate PCT`: fail (exit 1) on medians > PCT percent slower.
    pub gate: Option<f64>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            budget_ms: 300,
            format: BenchFormat::default(),
            out: None,
            baseline: None,
            gate: None,
        }
    }
}

/// A parsed `xp bench` invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum BenchCommand {
    /// `xp bench help` / no arguments.
    Help,
    /// `xp bench list`.
    List,
    /// `xp bench run <selector>... [options]`.
    Run {
        /// Id / group / substring selectors.
        selectors: Vec<String>,
        /// Shared options.
        opts: BenchOpts,
    },
    /// `xp bench all [options]`.
    All {
        /// Shared options.
        opts: BenchOpts,
    },
}

/// A user error in the `xp bench` invocation (exit code 2).
#[derive(Clone, Debug, PartialEq)]
pub enum BenchCliError {
    /// The first argument is not a known subcommand.
    UnknownCommand(String),
    /// A selector matched no registered bench.
    UnknownBench(String),
    /// A flag is not recognised here.
    UnknownFlag(String),
    /// A flag that needs a value was given none.
    MissingValue(&'static str),
    /// `xp bench run` without a selector.
    MissingSelector,
    /// A positional argument where none is accepted.
    UnexpectedArg(String),
    /// A numeric flag value failed to parse.
    BadNumber {
        /// The flag.
        flag: &'static str,
        /// The offending text.
        value: String,
    },
    /// `--format` with something other than `table|json`.
    BadFormat(String),
    /// `--gate` without `--baseline`.
    GateWithoutBaseline,
    /// The baseline file failed to load or parse.
    Baseline(String),
}

impl std::fmt::Display for BenchCliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchCliError::UnknownCommand(c) => {
                write!(f, "unknown bench command {c:?} (try list, run, all)")
            }
            BenchCliError::UnknownBench(s) => {
                write!(f, "no bench matches {s:?} (see `xp bench list`)")
            }
            BenchCliError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            BenchCliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            BenchCliError::MissingSelector => {
                write!(f, "a bench id, group or substring is required")
            }
            BenchCliError::UnexpectedArg(a) => write!(f, "unexpected argument {a:?}"),
            BenchCliError::BadNumber { flag, value } => {
                write!(f, "{flag} needs a positive number, got {value:?}")
            }
            BenchCliError::BadFormat(v) => {
                write!(f, "--format must be table or json, got {v:?}")
            }
            BenchCliError::GateWithoutBaseline => {
                write!(f, "--gate needs --baseline FILE to compare against")
            }
            BenchCliError::Baseline(e) => write!(f, "baseline: {e}"),
        }
    }
}

impl std::error::Error for BenchCliError {}

const USAGE: &str = "\
xp bench — registry-driven micro-benchmarks with a BENCH_*.json trajectory

USAGE:
    xp bench list                      list every registered bench
    xp bench run <sel>... [OPTIONS]    run benches by id, group or substring
    xp bench all [OPTIONS]             run the full registry
    xp bench help                      this message

OPTIONS (run / all):
    --budget-ms N          per-bench time budget (default: 300)
    --quick                shorthand for --budget-ms 50 (the CI budget)
    --format table|json    stdout rendering (default: table)
    --out DIR              save directory (default: <workspace>/target/benchmarks)
    --baseline FILE        diff this run against a previous BENCH_*.json
    --gate PCT             with --baseline: exit 1 if any median is more
                           than PCT percent slower (noise floor applies)

A timestamped BENCH_<unix-ms>.json is saved on every run; commit one as
bench/baseline.json to give CI a regression reference.
";

/// Parses an `xp bench` argument vector (after the `bench` word).
///
/// # Errors
///
/// Returns the first [`BenchCliError`] encountered, left to right.
pub fn parse(args: &[String]) -> Result<BenchCommand, BenchCliError> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(BenchCommand::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(BenchCommand::Help),
        "list" => {
            if let Some(extra) = it.next() {
                return Err(BenchCliError::UnexpectedArg(extra.to_string()));
            }
            Ok(BenchCommand::List)
        }
        "run" => {
            let (selectors, opts) = parse_run_args(it)?;
            if selectors.is_empty() {
                return Err(BenchCliError::MissingSelector);
            }
            registry::select(&selectors).map_err(BenchCliError::UnknownBench)?;
            Ok(BenchCommand::Run { selectors, opts })
        }
        "all" => {
            let (selectors, opts) = parse_run_args(it)?;
            if let Some(extra) = selectors.first() {
                return Err(BenchCliError::UnexpectedArg(extra.clone()));
            }
            Ok(BenchCommand::All { opts })
        }
        other => Err(BenchCliError::UnknownCommand(other.to_string())),
    }
}

fn parse_run_args<'a>(
    mut it: impl Iterator<Item = &'a str>,
) -> Result<(Vec<String>, BenchOpts), BenchCliError> {
    let mut selectors = Vec::new();
    let mut opts = BenchOpts::default();
    while let Some(arg) = it.next() {
        match arg {
            "--quick" => opts.budget_ms = 50,
            "--budget-ms" => {
                let v = it
                    .next()
                    .ok_or(BenchCliError::MissingValue("--budget-ms"))?;
                let n: u64 = v.parse().map_err(|_| BenchCliError::BadNumber {
                    flag: "--budget-ms",
                    value: v.to_string(),
                })?;
                if n == 0 {
                    return Err(BenchCliError::BadNumber {
                        flag: "--budget-ms",
                        value: v.to_string(),
                    });
                }
                opts.budget_ms = n;
            }
            "--format" => {
                let v = it.next().ok_or(BenchCliError::MissingValue("--format"))?;
                opts.format = match v {
                    "table" => BenchFormat::Table,
                    "json" => BenchFormat::Json,
                    other => return Err(BenchCliError::BadFormat(other.to_string())),
                };
            }
            "--out" => {
                let v = it.next().ok_or(BenchCliError::MissingValue("--out"))?;
                opts.out = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or(BenchCliError::MissingValue("--baseline"))?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--gate" => {
                let v = it.next().ok_or(BenchCliError::MissingValue("--gate"))?;
                let pct: f64 = v.parse().map_err(|_| BenchCliError::BadNumber {
                    flag: "--gate",
                    value: v.to_string(),
                })?;
                if !pct.is_finite() || pct <= 0.0 {
                    return Err(BenchCliError::BadNumber {
                        flag: "--gate",
                        value: v.to_string(),
                    });
                }
                opts.gate = Some(pct);
            }
            flag if flag.starts_with('-') => {
                return Err(BenchCliError::UnknownFlag(flag.to_string()))
            }
            sel => selectors.push(sel.to_string()),
        }
    }
    if opts.gate.is_some() && opts.baseline.is_none() {
        return Err(BenchCliError::GateWithoutBaseline);
    }
    Ok((selectors, opts))
}

/// The save directory without `--out`: `target/benchmarks` under the
/// workspace root (cwd-independent, like `xp`'s experiment reports).
pub fn default_out_dir() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        // lint: allow(panic-hygiene): CARGO_MANIFEST_DIR of a workspace member always has the workspace root two levels up
        .expect("manifest dir has a workspace root two levels up")
        .to_path_buf();
    if root.is_dir() {
        root.join("target").join("benchmarks")
    } else {
        Path::new("target").join("benchmarks")
    }
}

fn render_table(samples: &[BenchSample]) -> String {
    // Size the id column to its content: fixed widths mis-aligned every
    // row once multi-digit kernel ids outgrew them.
    let w = samples
        .iter()
        .map(|s| s.id.len())
        .chain(std::iter::once("bench".len()))
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<w$} {:>12} {:>12} {:>12} {:>14} {:>7}\n",
        "bench", "p50/iter", "p10", "p90", "throughput", "iters"
    ));
    for s in samples {
        let thr = if s.elements > 1 {
            format!("{}/s", format_rate(s.throughput()))
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:<w$} {:>12} {:>12} {:>12} {:>14} {:>7}\n",
            s.id,
            format_ns(s.p50_ns),
            format_ns(s.p10_ns),
            format_ns(s.p90_ns),
            thr,
            s.iters,
        ));
    }
    out
}

/// Formats nanoseconds human-readably (`432 ns`, `1.4 µs`, `2.3 ms`).
pub fn format_ns(ns: f64) -> String {
    if ns < 10_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 10_000_000.0 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 10_000_000_000.0 {
        format!("{:.1} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Formats a per-second rate (`53.3 M`, `1.2 G`).
pub fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

fn execute(cmd: &BenchCommand) -> Result<bool, BenchCliError> {
    match cmd {
        BenchCommand::Help => {
            print!("{USAGE}");
            Ok(true)
        }
        BenchCommand::List => {
            let w = registry::id_width();
            for b in registry::bench_registry() {
                println!("{:<w$} {:<10} {}", b.id(), b.group(), b.title());
            }
            Ok(true)
        }
        BenchCommand::Run { selectors, opts } => {
            let benches = registry::select(selectors).map_err(BenchCliError::UnknownBench)?;
            run_benches(&benches, opts)
        }
        BenchCommand::All { opts } => run_benches(&registry::bench_registry(), opts),
    }
}

/// Runs `benches` under `opts`; returns whether the gate passed (always
/// `true` without a gate).
fn run_benches(benches: &[&'static dyn Bench], opts: &BenchOpts) -> Result<bool, BenchCliError> {
    // Load the baseline *before* spending the measurement budget: a bad
    // path must fail fast.
    let baseline = match &opts.baseline {
        Some(path) => Some(BenchReport::load(path).map_err(BenchCliError::Baseline)?),
        None => None,
    };
    let cfg = BudgetCfg::from_millis(opts.budget_ms);
    let mut samples = Vec::with_capacity(benches.len());
    for b in benches {
        eprintln!("[bench {} ...]", b.id());
        samples.push(b.run(&cfg));
    }
    let report = BenchReport::new(opts.budget_ms, samples);
    let verdict: Option<GateVerdict> = baseline
        .as_ref()
        .map(|base| gate(&report, base, opts.gate.unwrap_or(100.0)));

    match opts.format {
        BenchFormat::Table => {
            print!("{}", render_table(&report.samples));
            if let Some(v) = &verdict {
                println!();
                if opts.gate.is_some() {
                    // Enforced: the PASS/FAIL line matches the exit code.
                    println!("{v}");
                } else {
                    // Informational diff: no PASS/FAIL claim, since the
                    // exit code will be 0 regardless.
                    print!("{}", v.comparison_table());
                    println!("baseline diff is informational; pass --gate PCT to enforce");
                }
            }
        }
        BenchFormat::Json => {
            // One JSON document on stdout: the BENCH report, with the gate
            // verdict embedded when a baseline was given. `enforced`
            // records whether the verdict drives the exit code.
            let mut doc = report.to_json_value();
            if let (rapid_experiments::json::JsonValue::Object(map), Some(v)) = (&mut doc, &verdict)
            {
                let mut gate_doc = v.to_json_value();
                if let rapid_experiments::json::JsonValue::Object(g) = &mut gate_doc {
                    g.insert(
                        "enforced".to_string(),
                        rapid_experiments::json::JsonValue::Bool(opts.gate.is_some()),
                    );
                }
                map.insert("gate".to_string(), gate_doc);
            }
            println!("{}", doc.to_pretty());
        }
    }

    let out = opts.out.clone().unwrap_or_else(default_out_dir);
    match report.save(&out) {
        Ok(path) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warning: could not save BENCH json: {e}]"),
    }

    let passed = match (&verdict, opts.gate) {
        (Some(v), Some(_)) => v.passed(),
        _ => true,
    };
    if let (Some(v), Some(_)) = (&verdict, opts.gate) {
        if !v.passed() {
            for r in v.regressions() {
                eprintln!(
                    "xp bench: REGRESSION {} — {} → {} ({:.2}x, gate {:.0}%)",
                    r.id,
                    format_ns(r.baseline_ns),
                    format_ns(r.current_ns),
                    r.ratio,
                    v.gate_pct
                );
            }
        }
    }
    Ok(passed)
}

/// Full `xp bench` entry point: parse, execute, map to an exit code.
///
/// Exit codes: 0 success, 1 regression gate failed, 2 usage error.
pub fn run(args: &[String]) -> i32 {
    match parse(args) {
        Ok(cmd) => match execute(&cmd) {
            Ok(true) => 0,
            Ok(false) => 1,
            Err(e) => {
                eprintln!("xp bench: {e}");
                2
            }
        },
        Err(e) => {
            eprintln!("xp bench: {e}");
            eprintln!("run `xp bench help` for usage");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<BenchCommand, BenchCliError> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn golden_parse_table() {
        assert_eq!(p(&[]), Ok(BenchCommand::Help));
        assert_eq!(p(&["help"]), Ok(BenchCommand::Help));
        assert_eq!(p(&["list"]), Ok(BenchCommand::List));
        assert_eq!(
            p(&["run", "scheduler"]),
            Ok(BenchCommand::Run {
                selectors: vec!["scheduler".into()],
                opts: BenchOpts::default(),
            })
        );
        assert_eq!(
            p(&[
                "run",
                "rng/next_u64",
                "--budget-ms",
                "25",
                "--format",
                "json"
            ]),
            Ok(BenchCommand::Run {
                selectors: vec!["rng/next_u64".into()],
                opts: BenchOpts {
                    budget_ms: 25,
                    format: BenchFormat::Json,
                    ..BenchOpts::default()
                },
            })
        );
        assert_eq!(
            p(&["all", "--quick", "--baseline", "b.json", "--gate", "100"]),
            Ok(BenchCommand::All {
                opts: BenchOpts {
                    budget_ms: 50,
                    baseline: Some(PathBuf::from("b.json")),
                    gate: Some(100.0),
                    ..BenchOpts::default()
                },
            })
        );
        assert_eq!(
            p(&["all", "--out", "/tmp/x"]),
            Ok(BenchCommand::All {
                opts: BenchOpts {
                    out: Some(PathBuf::from("/tmp/x")),
                    ..BenchOpts::default()
                },
            })
        );
    }

    #[test]
    fn golden_error_table() {
        assert_eq!(
            p(&["bogus"]),
            Err(BenchCliError::UnknownCommand("bogus".into()))
        );
        assert_eq!(p(&["run"]), Err(BenchCliError::MissingSelector));
        assert_eq!(
            p(&["run", "nope-никто"]),
            Err(BenchCliError::UnknownBench("nope-никто".into()))
        );
        assert_eq!(
            p(&["list", "extra"]),
            Err(BenchCliError::UnexpectedArg("extra".into()))
        );
        assert_eq!(
            p(&["all", "rng"]),
            Err(BenchCliError::UnexpectedArg("rng".into()))
        );
        assert_eq!(
            p(&["run", "rng", "--bogus"]),
            Err(BenchCliError::UnknownFlag("--bogus".into()))
        );
        assert_eq!(
            p(&["all", "--budget-ms"]),
            Err(BenchCliError::MissingValue("--budget-ms"))
        );
        assert_eq!(
            p(&["all", "--budget-ms", "0"]),
            Err(BenchCliError::BadNumber {
                flag: "--budget-ms",
                value: "0".into()
            })
        );
        assert_eq!(
            p(&["all", "--format", "xml"]),
            Err(BenchCliError::BadFormat("xml".into()))
        );
        assert_eq!(
            p(&["all", "--gate", "100"]),
            Err(BenchCliError::GateWithoutBaseline)
        );
        assert_eq!(
            p(&["all", "--baseline", "b.json", "--gate", "-5"]),
            Err(BenchCliError::BadNumber {
                flag: "--gate",
                value: "-5".into()
            })
        );
    }

    #[test]
    fn errors_render_readably() {
        for (err, needle) in [
            (BenchCliError::UnknownCommand("x".into()), "unknown bench"),
            (BenchCliError::UnknownBench("z".into()), "xp bench list"),
            (BenchCliError::UnknownFlag("--x".into()), "--x"),
            (BenchCliError::MissingValue("--gate"), "--gate"),
            (BenchCliError::MissingSelector, "bench id"),
            (BenchCliError::UnexpectedArg("q".into()), "q"),
            (
                BenchCliError::BadNumber {
                    flag: "--budget-ms",
                    value: "x".into(),
                },
                "--budget-ms",
            ),
            (BenchCliError::BadFormat("xml".into()), "xml"),
            (BenchCliError::GateWithoutBaseline, "--baseline"),
            (BenchCliError::Baseline("no file".into()), "no file"),
        ] {
            assert!(err.to_string().contains(needle), "{err:?}");
        }
    }

    #[test]
    fn render_table_golden_sizes_the_id_column() {
        // Pins the run-table layout: the id column grows to the widest
        // id in the run (29 chars here), so long kernel ids no longer
        // shear the numeric columns out of alignment.
        let sample =
            |id: &str, elements: u64, p10: f64, p50: f64, p90: f64, iters: u64| BenchSample {
                id: id.into(),
                group: id.split('/').next().unwrap_or("").into(),
                elements,
                iters,
                total_ns: 0,
                mean_ns: p50,
                min_ns: p10,
                p10_ns: p10,
                p50_ns: p50,
                p90_ns: p90,
                max_ns: p90,
            };
        let table = render_table(&[
            sample("micro/full_run_sequential/1e6", 1, 1.5e9, 2e9, 2.5e9, 4),
            sample("rng/next_u64", 10_000, 4000.0, 5000.0, 6000.0, 250),
        ]);
        let expected = "\
bench                             p50/iter          p10          p90     throughput   iters
micro/full_run_sequential/1e6    2000.0 ms    1500.0 ms    2500.0 ms              -       4
rng/next_u64                       5000 ns      4000 ns      6000 ns       2.00 G/s     250
";
        assert_eq!(table, expected);
    }

    #[test]
    fn default_out_dir_is_workspace_anchored() {
        let dir = default_out_dir();
        assert!(dir.ends_with("target/benchmarks"));
    }

    #[test]
    fn formatting_spans_scales() {
        assert!(format_ns(5.0).contains("ns"));
        assert!(format_ns(50_000.0).contains("µs"));
        assert!(format_ns(50_000_000.0).contains("ms"));
        assert!(format_ns(50_000_000_000.0).contains('s'));
        assert!(format_rate(2.5e9).contains('G'));
        assert!(format_rate(2.5e6).contains('M'));
        assert!(format_rate(2.5e3).contains('k'));
        assert!(format_rate(2.5).contains("2.5"));
    }
}
