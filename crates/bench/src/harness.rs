//! The `cargo bench` adapter over the benchmark registry.
//!
//! Each bench target is a plain `fn main` (`harness = false`) that builds
//! a [`Harness`] and asks it to run a slice of registry groups. The
//! harness owns the CLI contract of `cargo bench -- <args>`:
//!
//! * the first free argument is a substring filter on bench ids;
//! * `--quick` selects the CI budget (50 ms per bench);
//! * `--budget-ms N` sets an explicit budget;
//! * `--bench` (appended by cargo) and unknown flags are ignored.
//!
//! Measurement itself is delegated to the same [`crate::registry`]
//! entries the `xp bench` subcommand runs, so `cargo bench` and
//! `xp bench` can never disagree on what or how something is measured —
//! only on where the output goes (human-readable lines here, a
//! `BENCH_*.json` document there).

use crate::cli::{format_ns, format_rate};
use crate::sample::{BenchSample, BudgetCfg};

/// A named group of benchmark closures with a shared CLI filter/budget.
pub struct Harness {
    filter: Option<String>,
    cfg: BudgetCfg,
}

impl Harness {
    /// Creates a harness, reading filter and budget from the process
    /// arguments (see the module docs for the accepted grammar).
    pub fn from_args() -> Self {
        Self::from_arg_list(std::env::args().skip(1))
    }

    fn from_arg_list(args: impl Iterator<Item = String>) -> Self {
        let mut filter = None;
        let mut cfg = BudgetCfg::default();
        let mut it = args.peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => cfg = BudgetCfg::quick(),
                "--budget-ms" => {
                    if let Some(v) = it.next() {
                        if let Ok(ms) = v.parse::<u64>() {
                            if ms > 0 {
                                cfg = BudgetCfg::from_millis(ms);
                            }
                        }
                    }
                }
                flag if flag.starts_with('-') => {} // cargo's --bench etc.
                free => {
                    if filter.is_none() {
                        filter = Some(free.to_string());
                    }
                }
            }
        }
        Harness { filter, cfg }
    }

    /// The per-bench budget in force.
    pub fn budget(&self) -> &BudgetCfg {
        &self.cfg
    }

    /// Whether the CLI filter admits this bench name.
    pub fn matches(&self, name: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|f| name.contains(f.as_str()))
    }

    /// Runs every registry bench whose group is in `groups` (and whose id
    /// passes the filter), printing one human-readable line each.
    pub fn run_groups(&self, groups: &[&str]) {
        for bench in crate::registry::bench_registry() {
            if groups.contains(&bench.group()) && self.matches(bench.id()) {
                print_line(&bench.run(&self.cfg));
            }
        }
    }

    /// Runs one ad-hoc closure under the harness budget (legacy entry
    /// point; registry benches should go through [`Harness::run_groups`]).
    ///
    /// `elements` is the number of logical items one iteration processes
    /// (used to print a throughput figure); pass 1 for whole-run benches.
    pub fn bench(&self, name: &str, elements: u64, mut f: impl FnMut()) {
        if !self.matches(name) {
            return;
        }
        let sample = crate::sample::measure(name, "adhoc", elements, &self.cfg, &mut f);
        print_line(&sample);
    }
}

fn print_line(s: &BenchSample) {
    // Lines print one at a time, so the column is sized to the widest
    // *registered* id (ad-hoc names longer than that pad to themselves) —
    // a fixed width mis-aligned rows once ids outgrew it.
    let w = crate::registry::id_width().max(s.id.len());
    if s.elements > 1 {
        println!(
            "{:<w$} {:>12} /iter  {:>14} elem/s  ({} iters)",
            s.id,
            format_ns(s.p50_ns),
            format_rate(s.throughput()),
            s.iters,
        );
    } else {
        println!(
            "{:<w$} {:>12} /iter  ({} iters)",
            s.id,
            format_ns(s.p50_ns),
            s.iters,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn harness(args: &[&str]) -> Harness {
        Harness::from_arg_list(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bench_runs_and_prints() {
        let h = Harness {
            filter: None,
            cfg: BudgetCfg {
                budget: Duration::from_millis(1),
                min_iters: 5,
            },
        };
        let mut count = 0u64;
        h.bench("noop", 1, || count += 1);
        assert!(count >= 5);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let h = Harness {
            filter: Some("match-me".into()),
            cfg: BudgetCfg {
                budget: Duration::from_millis(1),
                min_iters: 1,
            },
        };
        let mut ran = false;
        h.bench("other", 1, || ran = true);
        assert!(!ran);
        h.bench("has match-me inside", 1, || ran = true);
        assert!(ran);
    }

    #[test]
    fn quick_flag_selects_the_ci_budget() {
        // The seed harness silently ignored --quick; it must now bite.
        let h = harness(&["--quick"]);
        assert_eq!(h.budget(), &BudgetCfg::quick());
        assert_eq!(h.budget().budget, Duration::from_millis(50));
    }

    #[test]
    fn budget_ms_flag_is_wired() {
        let h = harness(&["--budget-ms", "7"]);
        assert_eq!(h.budget().budget, Duration::from_millis(7));
        // Malformed or zero values keep the default instead of panicking
        // (cargo bench forwards arbitrary user args).
        assert_eq!(
            harness(&["--budget-ms", "x"]).budget(),
            &BudgetCfg::default()
        );
        assert_eq!(
            harness(&["--budget-ms", "0"]).budget(),
            &BudgetCfg::default()
        );
    }

    #[test]
    fn filter_and_flags_coexist() {
        let h = harness(&["--bench", "--quick", "event_queue"]);
        assert!(h.matches("scheduler/event_queue/1024"));
        assert!(!h.matches("rng/next_u64"));
        assert_eq!(h.budget(), &BudgetCfg::quick());
    }
}
