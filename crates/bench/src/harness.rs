//! A dependency-free micro-benchmark harness (`std::time` based).
//!
//! Each bench target is a plain `fn main` (`harness = false`) that builds
//! a [`Harness`] and registers closures. The harness warms each closure
//! up, runs it until a time budget is spent, and prints the per-iteration
//! wall clock plus optional element throughput. A substring filter (the
//! first free argument, as passed by `cargo bench -- <filter>`) selects
//! benches by name.

use std::time::{Duration, Instant};

/// Minimum measured iterations per bench.
const MIN_ITERS: u32 = 5;
/// Wall-clock budget per bench once warmed up.
const BUDGET: Duration = Duration::from_millis(300);

/// A named group of benchmark closures with a shared CLI filter.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Creates a harness, reading the filter from the process arguments.
    ///
    /// Flags (`--bench`, `--quick`, anything starting with `-`) are
    /// ignored; the first free argument becomes the name filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// Runs one benchmark unless the filter excludes it.
    ///
    /// `elements` is the number of logical items one iteration processes
    /// (used to print a throughput figure); pass 1 for whole-run benches.
    pub fn bench(&self, name: &str, elements: u64, mut f: impl FnMut()) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: one untimed iteration (fills caches, faults pages).
        f();
        let mut iters = 0u32;
        let start = Instant::now();
        while iters < MIN_ITERS || start.elapsed() < BUDGET {
            f();
            iters += 1;
        }
        let per_iter = start.elapsed() / iters;
        if elements > 1 {
            let rate = elements as f64 / per_iter.as_secs_f64();
            println!(
                "{name:<40} {:>12} /iter  {:>14} elem/s  ({iters} iters)",
                format_duration(per_iter),
                format_rate(rate),
            );
        } else {
            println!(
                "{name:<40} {:>12} /iter  ({iters} iters)",
                format_duration(per_iter)
            );
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let h = Harness { filter: None };
        let mut count = 0u64;
        h.bench("noop", 1, || count += 1);
        assert!(count >= u64::from(MIN_ITERS));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let h = Harness {
            filter: Some("match-me".into()),
        };
        let mut ran = false;
        h.bench("other", 1, || ran = true);
        assert!(!ran);
        h.bench("has match-me inside", 1, || ran = true);
        assert!(ran);
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(format_duration(Duration::from_nanos(5)).contains("ns"));
        assert!(format_duration(Duration::from_micros(50)).contains("µs"));
        assert!(format_duration(Duration::from_millis(50)).contains("ms"));
        assert!(format_duration(Duration::from_secs(50)).contains("s"));
        assert!(format_rate(2.5e9).contains('G'));
        assert!(format_rate(2.5e6).contains('M'));
        assert!(format_rate(2.5e3).contains('k'));
        assert!(format_rate(2.5).contains("2.5"));
    }
}
