//! Shared helpers for the benchmark suite and the `xp` experiment driver.
//!
//! The scientific content lives in `rapid-experiments`; this crate hosts
//! the benches (`benches/`, driven by the dependency-free [`harness`]
//! below) and the single `xp` binary (`src/bin/xp.rs`) so that
//! `cargo bench --workspace` exercises the protocol kernels and
//! `cargo run -p rapid-bench --bin xp -- run e06` (etc.) regenerates any
//! table/figure through the experiment registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

/// Standard workload used by benches: multiplicative bias counts.
///
/// # Panics
///
/// Panics if the workload is infeasible (population too small for `k`).
pub fn bench_counts(n: u64, k: usize, eps: f64) -> Vec<u64> {
    rapid_experiments::InitialDistribution::multiplicative_bias(k, eps)
        .counts(n)
        .expect("benchmark workload must be feasible")
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_counts_sum_to_n() {
        let c = super::bench_counts(1000, 4, 0.3);
        assert_eq!(c.iter().sum::<u64>(), 1000);
    }
}
