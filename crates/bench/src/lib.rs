//! The benchmark subsystem and the `xp` driver binary.
//!
//! The scientific content lives in `rapid-experiments`; this crate hosts
//! the *measurement layer* mirroring that crate's experiment registry one
//! level down:
//!
//! * [`sample`] — the [`sample::Bench`] trait, time budgets and the
//!   machine-readable [`sample::BenchSample`];
//! * [`registry`] — the static list of hot-path kernels
//!   ([`registry::bench_registry`]): protocol ticks, scheduler hand-out,
//!   topology/urn/RNG primitives, stats accumulators, full consensus runs;
//! * [`report`] — the `BENCH_<unix-ms>.json` trajectory document with
//!   host/commit provenance, and the noise-aware regression gate;
//! * [`cli`] — the `xp bench` subcommand (`list` / `run` / `all`,
//!   `--budget-ms`, `--baseline`, `--gate`);
//! * [`harness`] — the `cargo bench` adapter, which drives the *same*
//!   registry so the two entry points cannot disagree;
//! * [`trajectory`] — the flat, queryable view over a directory of
//!   `BENCH_*.json` documents, served by `xp serve`'s `GET /bench`.
//!
//! The single `xp` binary (`src/bin/xp.rs`) multiplexes: `xp bench …`
//! lands here, `xp sweep` / `xp serve` go to `rapid_sweep::cli` (with
//! the [`trajectory`] provider injected), everything else is the
//! experiment CLI.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cli;
pub mod harness;
pub mod registry;
pub mod report;
pub mod sample;
pub mod trajectory;

pub use registry::bench_registry;
pub use report::{gate, BenchReport, GateVerdict};
pub use sample::{Bench, BenchSample, BudgetCfg};

/// Standard workload used by benches: multiplicative bias counts.
///
/// # Panics
///
/// Panics if the workload is infeasible (population too small for `k`).
pub fn bench_counts(n: u64, k: usize, eps: f64) -> Vec<u64> {
    rapid_experiments::InitialDistribution::multiplicative_bias(k, eps)
        .counts(n)
        // lint: allow(panic-hygiene): benchmark workloads are hard-coded and feasible by construction
        .expect("benchmark workload must be feasible")
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_counts_sum_to_n() {
        let c = super::bench_counts(1000, 4, 0.3);
        assert_eq!(c.iter().sum::<u64>(), 1000);
    }
}
