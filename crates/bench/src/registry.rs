//! The static benchmark registry.
//!
//! One entry per hot path, mirroring the experiment registry one level
//! down: the `xp bench` CLI, the `cargo bench` targets and the CI perf
//! gate all enumerate the same list, so a kernel cannot silently drop out
//! of the measured set. Groups:
//!
//! * `gossip` / `rapid` — single asynchronous protocol ticks on `K_n`,
//!   clean and under the fault layer (loss + churn + adversary);
//! * `sync` — one synchronous round of the round-based protocols;
//! * `scheduler` — activation hand-out (sequential, event-queue, jittered,
//!   heavy-tailed latency wrap);
//! * `topology` — neighbor sampling;
//! * `urn` / `rng` / `stats` — the primitive draws and accumulators;
//! * `macro` — the population-level engine: one τ-leap batch, and a full
//!   run to unanimity at `n = 10⁶`;
//! * `micro` — the sharded per-node epoch engine at `n = 10⁶`: one epoch
//!   advance, plus full sequential-vs-sharded runs to unanimity (the pair
//!   the scaling claim in the README is measured on);
//! * `consensus` — a full run to unanimity per iteration (the end-to-end
//!   smoke kernels every experiment binary spends its time in).

use rapid_core::facade::{EngineKind, Sim, SimBuilder, StopCondition};
use rapid_core::prelude::*;
use rapid_core::{ShardedProtocol, ShardedSim};
use rapid_graph::prelude::*;
use rapid_macro::MacroSim;
use rapid_obs::{Obs, ObsHandle, TraceEvent};
use rapid_sim::fault::{
    AdversaryKind, AdversaryPlan, ChurnEvent, FaultPlan, LatencyModel, LatencyScheduler,
};
use rapid_sim::prelude::*;
use rapid_stats::{OnlineStats, P2Quantile};
use rapid_urn::PolyaUrn;

use crate::bench_counts;
use crate::sample::{measure, Bench, BenchSample, BudgetCfg};

/// Inner batch size for kernels too fast to time individually.
const BATCH: u64 = 10_000;

/// A registry entry: a named kernel whose setup builds the timed closure.
///
/// `setup` runs outside the timed region (population layout, graph
/// sampling, scheduler heap fill); only the returned closure is measured.
struct KernelBench {
    id: &'static str,
    title: &'static str,
    group: &'static str,
    elements: u64,
    setup: fn() -> Box<dyn FnMut()>,
}

impl Bench for KernelBench {
    fn id(&self) -> &'static str {
        self.id
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn group(&self) -> &'static str {
        self.group
    }

    fn run(&self, cfg: &BudgetCfg) -> BenchSample {
        let mut f = (self.setup)();
        measure(self.id, self.group, self.elements, cfg, &mut f)
    }
}

fn gossip_tick_4096() -> Box<dyn FnMut()> {
    let n = 4096;
    let counts = bench_counts(n as u64, 8, 0.3);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let config = Configuration::from_counts(&counts).expect("valid");
    let source = SequentialScheduler::new(n, Seed::new(6));
    let mut sim = AsyncGossipSim::new(
        Complete::new(n),
        config,
        GossipRule::TwoChoices,
        source,
        Seed::new(16),
    );
    Box::new(move || {
        for _ in 0..BATCH {
            sim.tick();
        }
    })
}

/// The standard faulty-run plan the tick kernels use: 10% loss, a churn
/// window over 1/16 of the population, and an oblivious adversary.
fn bench_fault_plan(n: usize) -> FaultPlan {
    let churn: Vec<ChurnEvent> = (0..n / 16)
        .map(|i| {
            ChurnEvent::window(
                NodeId::new(i * 16),
                SimTime::from_secs(2.0),
                SimTime::from_secs(50.0),
            )
        })
        .collect();
    FaultPlan::none()
        .with_loss(0.1)
        .with_churn(churn)
        .with_adversary(AdversaryPlan {
            kind: AdversaryKind::Oblivious,
            budget: u64::MAX,
            start: SimTime::from_secs(1.0),
            interval: 0.5,
        })
}

fn gossip_tick_faulty_4096() -> Box<dyn FnMut()> {
    let n = 4096;
    let counts = bench_counts(n as u64, 8, 0.3);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let config = Configuration::from_counts(&counts).expect("valid");
    let source = SequentialScheduler::new(n, Seed::new(6));
    let mut sim = AsyncGossipSim::new(
        Complete::new(n),
        config,
        GossipRule::TwoChoices,
        source,
        Seed::new(16),
    )
    .with_faults(&bench_fault_plan(n), Seed::new(26));
    Box::new(move || {
        for _ in 0..BATCH {
            sim.tick();
        }
    })
}

fn rapid_tick_faulty_4096() -> Box<dyn FnMut()> {
    let n = 4096;
    let counts = bench_counts(n as u64, 8, 0.3);
    let params = Params::for_network(n, 8);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let config = Configuration::from_counts(&counts).expect("valid");
    let source = SequentialScheduler::new(n, Seed::new(5));
    let mut sim = RapidSim::new(Complete::new(n), config, params, source, Seed::new(15))
        .with_faults(&bench_fault_plan(n), Seed::new(25));
    Box::new(move || {
        for _ in 0..BATCH {
            sim.tick();
        }
    })
}

fn rapid_tick_4096() -> Box<dyn FnMut()> {
    let n = 4096;
    let counts = bench_counts(n as u64, 8, 0.3);
    let params = Params::for_network(n, 8);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let config = Configuration::from_counts(&counts).expect("valid");
    let source = SequentialScheduler::new(n, Seed::new(5));
    let mut sim = RapidSim::new(Complete::new(n), config, params, source, Seed::new(15));
    Box::new(move || {
        for _ in 0..BATCH {
            sim.tick();
        }
    })
}

fn sync_two_choices_round_4096() -> Box<dyn FnMut()> {
    let n = 4096;
    let counts = bench_counts(n as u64, 8, 0.3);
    let g = Complete::new(n);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let mut config = Configuration::from_counts(&counts).expect("valid");
    let mut rng = SimRng::from_seed_value(Seed::new(1));
    let mut proto = TwoChoices::new();
    Box::new(move || proto.round(&g, &mut config, &mut rng))
}

fn sync_three_majority_round_4096() -> Box<dyn FnMut()> {
    let n = 4096;
    let counts = bench_counts(n as u64, 8, 0.3);
    let g = Complete::new(n);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let mut config = Configuration::from_counts(&counts).expect("valid");
    let mut rng = SimRng::from_seed_value(Seed::new(2));
    let mut proto = ThreeMajority::new();
    Box::new(move || proto.round(&g, &mut config, &mut rng))
}

fn sync_voter_round_4096() -> Box<dyn FnMut()> {
    let n = 4096;
    let counts = bench_counts(n as u64, 8, 0.3);
    let g = Complete::new(n);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let mut config = Configuration::from_counts(&counts).expect("valid");
    let mut rng = SimRng::from_seed_value(Seed::new(3));
    let mut proto = Voter::new();
    Box::new(move || proto.round(&g, &mut config, &mut rng))
}

fn sync_one_extra_bit_round_4096() -> Box<dyn FnMut()> {
    let n = 4096;
    let counts = bench_counts(n as u64, 8, 0.3);
    let g = Complete::new(n);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let mut config = Configuration::from_counts(&counts).expect("valid");
    let mut rng = SimRng::from_seed_value(Seed::new(4));
    let mut proto = OneExtraBit::for_network(n, 8);
    Box::new(move || proto.round(&g, &mut config, &mut rng))
}

fn scheduler_sequential_expected_1024() -> Box<dyn FnMut()> {
    let mut s = SequentialScheduler::new(1024, Seed::new(1));
    Box::new(move || {
        for _ in 0..BATCH {
            std::hint::black_box(s.next_activation());
        }
    })
}

fn scheduler_sequential_sampled_1024() -> Box<dyn FnMut()> {
    let mut s = SequentialScheduler::with_mode(1024, Seed::new(2), TimeMode::Sampled);
    Box::new(move || {
        for _ in 0..BATCH {
            std::hint::black_box(s.next_activation());
        }
    })
}

fn scheduler_event_queue_1024() -> Box<dyn FnMut()> {
    let mut s = EventQueueScheduler::new(1024, Seed::new(3), 1.0);
    Box::new(move || {
        for _ in 0..BATCH {
            std::hint::black_box(s.next_activation());
        }
    })
}

fn scheduler_event_queue_65536() -> Box<dyn FnMut()> {
    let mut s = EventQueueScheduler::new(1 << 16, Seed::new(3), 1.0);
    Box::new(move || {
        for _ in 0..BATCH {
            std::hint::black_box(s.next_activation());
        }
    })
}

fn scheduler_jittered_1024() -> Box<dyn FnMut()> {
    let inner = SequentialScheduler::with_mode(1024, Seed::new(4), TimeMode::Sampled);
    let mut s = JitteredScheduler::new(inner, Seed::new(5), 2.0);
    Box::new(move || {
        for _ in 0..BATCH {
            std::hint::black_box(s.next_activation());
        }
    })
}

fn scheduler_latency_pareto_1024() -> Box<dyn FnMut()> {
    let inner = SequentialScheduler::with_mode(1024, Seed::new(4), TimeMode::Sampled);
    let model = LatencyModel::Pareto {
        scale: 0.1,
        shape: 1.5,
    };
    let mut s = LatencyScheduler::new(inner, Seed::new(5), model);
    Box::new(move || {
        for _ in 0..BATCH {
            std::hint::black_box(s.next_activation());
        }
    })
}

fn topology_complete_sample_65536() -> Box<dyn FnMut()> {
    let g = Complete::new(1 << 16);
    let mut rng = SimRng::from_seed_value(Seed::new(4));
    let u = NodeId::new(7);
    Box::new(move || {
        let mut acc = 0usize;
        for _ in 0..BATCH {
            acc += g.sample_neighbor(u, &mut rng).index();
        }
        std::hint::black_box(acc);
    })
}

fn topology_regular_sample_4096() -> Box<dyn FnMut()> {
    // lint: allow(panic-hygiene): fixed n and even degree make the regular graph samplable by construction
    let g = RandomRegular::sample(1 << 12, 8, Seed::new(5)).expect("samplable");
    let mut rng = SimRng::from_seed_value(Seed::new(6));
    let u = NodeId::new(7);
    Box::new(move || {
        let mut acc = 0usize;
        for _ in 0..BATCH {
            acc += g.sample_neighbor(u, &mut rng).index();
        }
        std::hint::black_box(acc);
    })
}

fn urn_polya_step() -> Box<dyn FnMut()> {
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let mut urn = PolyaUrn::new(vec![100, 50, 25], 1).expect("valid");
    let mut rng = SimRng::from_seed_value(Seed::new(7));
    Box::new(move || {
        let mut acc = 0usize;
        for _ in 0..BATCH {
            acc += urn.step(&mut rng);
        }
        std::hint::black_box(acc);
    })
}

fn urn_beta_sample() -> Box<dyn FnMut()> {
    let d = rapid_urn::BetaDistribution::new(3.0, 7.0);
    let mut rng = SimRng::from_seed_value(Seed::new(8));
    Box::new(move || {
        let mut acc = 0.0;
        for _ in 0..BATCH {
            acc += d.sample(&mut rng);
        }
        std::hint::black_box(acc);
    })
}

fn rng_multinomial_64() -> Box<dyn FnMut()> {
    // One multinomial draw = 64 conditional binomials (the τ-leap's
    // per-bucket splitting primitive); 100 draws per iteration.
    let weights: Vec<f64> = (1..=64).map(|i| i as f64).collect();
    let mut rng = SimRng::from_seed_value(Seed::new(9));
    let mut counts = vec![0u64; 64];
    Box::new(move || {
        let mut acc = 0u64;
        for _ in 0..100 {
            rng.multinomial_into(1_000_000, &weights, &mut counts);
            acc = acc.wrapping_add(counts[0]);
        }
        std::hint::black_box(acc);
    })
}

fn macro_gossip_sim(n: usize, seed: u64) -> MacroSim {
    let counts = bench_counts(n as u64, 8, 0.3);
    MacroSim::from_builder(
        Sim::builder()
            .topology(Complete::new(n))
            .counts(&counts)
            .gossip(GossipRule::TwoChoices)
            .engine(EngineKind::Macro)
            .seed(Seed::new(seed)),
    )
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    .expect("valid macro assembly")
}

fn macro_tau_leap_tick() -> Box<dyn FnMut()> {
    // One τ-leap batch (n/8 activations over 8 color buckets) per call;
    // the sim keeps advancing across iterations like the micro tick
    // kernels do. n = 10⁸ so the state never reaches absorption within a
    // bench budget.
    let mut sim = macro_gossip_sim(100_000_000, 10);
    Box::new(move || {
        sim.tau_leap_tick();
        std::hint::black_box(sim.counts()[0]);
    })
}

fn macro_full_run_1e6() -> Box<dyn FnMut()> {
    // A whole population-level run to unanimity at n = 10⁶ per iteration
    // (τ-leap bulk + exact single-event tail).
    let mut seed = 0u64;
    Box::new(move || {
        seed += 1;
        let mut sim = macro_gossip_sim(1_000_000, seed);
        let out = sim.run();
        assert!(out.converged(), "macro run converges");
    })
}

/// The micro full-run assembly both scaling kernels share: Two-Choices
/// on K_n with k=2 and a 0.5 multiplicative bias, so a run converges in
/// a benchmarkable number of activations even at n = 10⁶.
fn micro_two_choices_builder(n: usize, seed: u64) -> SimBuilder {
    let counts = bench_counts(n as u64, 2, 0.5);
    Sim::builder()
        .topology(Complete::new(n))
        .counts(&counts)
        .gossip(GossipRule::TwoChoices)
        .seed(Seed::new(seed))
}

fn micro_full_run_sequential_1e6() -> Box<dyn FnMut()> {
    // The per-activation baseline: one whole facade run to unanimity at
    // n = 10⁶ through the sequential scheduler per iteration.
    let mut seed = 0u64;
    Box::new(move || {
        seed += 1;
        let out = micro_two_choices_builder(1_000_000, seed)
            .build()
            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
            .expect("valid")
            .run();
        assert!(out.converged(), "sequential micro run converges");
    })
}

fn micro_full_run_sharded_1e6() -> Box<dyn FnMut()> {
    // The same run through the sharded epoch engine at 4 shards — the
    // pair of kernels the README scaling table compares.
    let mut seed = 0u64;
    Box::new(move || {
        seed += 1;
        let out = micro_two_choices_builder(1_000_000, seed)
            // lint: allow(panic-hygiene): the spec literal is well-formed; parse failure is a programming error
            .parallelism(Parallelism::parse("1x4").expect("well-formed spec"))
            .build()
            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
            .expect("valid")
            .run();
        assert!(out.converged(), "sharded micro run converges");
    })
}

fn micro_sharded_epoch_1e6() -> Box<dyn FnMut()> {
    // One τ-sized epoch (≈ n Poisson activations in expectation) of the
    // sharded engine per call; k=8 with a small bias keeps the state away
    // from absorption within a bench budget, like the tick kernels.
    let n = 1_000_000;
    let counts = bench_counts(n as u64, 8, 0.3);
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let config = Configuration::from_counts(&counts).expect("valid");
    let mut sim = ShardedSim::new(
        Box::new(Complete::new(n)),
        config,
        ShardedProtocol::Gossip(GossipRule::TwoChoices),
        Seed::new(12),
        1.0,
        4,
    );
    Box::new(move || {
        sim.run_epoch();
        std::hint::black_box(sim.steps());
    })
}

/// The channel cluster the net kernels step: Two-Choices on K_1024.
fn net_channel_cluster(n: usize, seed: u64) -> rapid_net::Cluster {
    let counts = bench_counts(n as u64, 2, 0.3);
    rapid_net::Cluster::from_builder(
        Sim::builder()
            .topology(Complete::new(n))
            .counts(&counts)
            .gossip(GossipRule::TwoChoices)
            .engine(EngineKind::Net)
            .seed(Seed::new(seed)),
    )
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    .expect("valid net assembly")
}

fn net_codec_round_trip() -> Box<dyn FnMut()> {
    use rapid_net::codec::{Envelope, Payload};
    let env = Envelope {
        src: 17,
        dst: 40_961,
        seq: 0x00C0_FFEE,
        payload: Payload::PullReply {
            color: 5,
            bit: true,
            beacon: false,
            real_time: 321,
        },
    };
    let mut buf = Vec::new();
    Box::new(move || {
        for _ in 0..BATCH {
            buf.clear();
            env.encode_into(&mut buf);
            // lint: allow(panic-hygiene): the codec round-trip property is pinned by rapid-net unit tests; a bench failure is a programming error
            let (back, _) = Envelope::decode(&buf).expect("round-trips");
            std::hint::black_box(back.seq);
        }
    })
}

fn net_machine_on_message() -> Box<dyn FnMut()> {
    use rapid_core::facade::MacroProtocol;
    use rapid_net::codec::{Envelope, Payload};
    use rapid_net::NodeMachine;
    // One node machine answering a stream of pull requests: the hot
    // receive path of every deployment (decode is measured separately).
    let mut machine = NodeMachine::new(
        0,
        std::sync::Arc::new(Complete::new(1024)),
        Color::new(0),
        &MacroProtocol::Gossip(GossipRule::TwoChoices),
        1.0,
        Seed::new(7),
        rapid_net::machine::default_beacon_threshold(1024),
    );
    let req = Envelope {
        src: 1,
        dst: 0,
        seq: 1,
        payload: Payload::PullRequest { beacon: false },
    };
    Box::new(move || {
        for _ in 0..BATCH {
            let replies = machine.on_message(&req);
            std::hint::black_box(replies.len());
        }
    })
}

fn net_channel_step() -> Box<dyn FnMut()> {
    // One full channel-driver activation per inner iteration: heap pop,
    // tick, frame encode/route/decode, reply dispatch, quiescence pump.
    let mut cluster = net_channel_cluster(1024, 8);
    Box::new(move || {
        for _ in 0..1000 {
            cluster.step_channel();
        }
    })
}

fn rng_next_u64() -> Box<dyn FnMut()> {
    let mut rng = SimRng::from_seed_value(Seed::new(1));
    Box::new(move || {
        let mut acc = 0u64;
        for _ in 0..BATCH {
            acc = acc.wrapping_add(rng.next_u64());
        }
        std::hint::black_box(acc);
    })
}

fn rng_bounded() -> Box<dyn FnMut()> {
    let mut rng = SimRng::from_seed_value(Seed::new(2));
    Box::new(move || {
        let mut acc = 0u64;
        for _ in 0..BATCH {
            acc += rng.bounded(12_345);
        }
        std::hint::black_box(acc);
    })
}

fn rng_unit_f64() -> Box<dyn FnMut()> {
    let mut rng = SimRng::from_seed_value(Seed::new(3));
    Box::new(move || {
        let mut acc = 0.0;
        for _ in 0..BATCH {
            acc += rng.unit_f64();
        }
        std::hint::black_box(acc);
    })
}

fn stats_online_push() -> Box<dyn FnMut()> {
    let mut x = 0.0f64;
    Box::new(move || {
        let mut acc = OnlineStats::new();
        for _ in 0..BATCH {
            x = (x + 0.618_033_988_749_895) % 1.0;
            acc.push(x);
        }
        std::hint::black_box(acc.mean());
    })
}

fn stats_p2_quantile_push() -> Box<dyn FnMut()> {
    let mut x = 0.0f64;
    Box::new(move || {
        let mut q = P2Quantile::new(0.5);
        for _ in 0..BATCH {
            x = (x + 0.618_033_988_749_895) % 1.0;
            q.push(x);
        }
        std::hint::black_box(q.estimate());
    })
}

fn consensus_gossip_run() -> Box<dyn FnMut()> {
    let counts = bench_counts(4096, 8, 0.5);
    let mut seed = 0u64;
    Box::new(move || {
        seed += 1;
        let out = Sim::builder()
            .topology(Complete::new(4096))
            .counts(&counts)
            .gossip(GossipRule::TwoChoices)
            .seed(Seed::new(seed))
            .stop(StopCondition::StepBudget(50_000_000))
            .build()
            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
            .expect("valid")
            .run();
        assert!(out.converged(), "converges");
    })
}

fn consensus_rapid_run() -> Box<dyn FnMut()> {
    let counts = bench_counts(1024, 4, 0.5);
    let params = Params::for_network_with_eps(1024, 4, 0.5);
    let mut seed = 0u64;
    Box::new(move || {
        seed += 1;
        let out = Sim::builder()
            .topology(Complete::new(1024))
            .counts(&counts)
            .rapid(params)
            .seed(Seed::new(seed))
            .build()
            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
            .expect("valid")
            .run();
        assert!(out.converged(), "converges");
    })
}

fn consensus_gossip_endgame_halt_run() -> Box<dyn FnMut()> {
    // The Theorem 1.3 endgame: dominant start, per-node halt budget —
    // exercises the freeze bookkeeping the plain gossip run never hits.
    let mut seed = 0u64;
    Box::new(move || {
        seed += 1;
        let out = Sim::builder()
            .topology(Complete::new(2048))
            .counts(&[1948, 100])
            .gossip(GossipRule::TwoChoices)
            .halt_after(200)
            .seed(Seed::new(seed))
            .stop(StopCondition::StepBudget(50_000_000))
            .build()
            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
            .expect("valid")
            .run();
        assert!(out.converged(), "converges");
    })
}

fn consensus_sync_two_choices_run() -> Box<dyn FnMut()> {
    let counts = bench_counts(4096, 8, 0.5);
    let mut seed = 0u64;
    Box::new(move || {
        seed += 1;
        let out = Sim::builder()
            .topology(Complete::new(4096))
            .counts(&counts)
            .protocol(TwoChoices::new())
            .seed(Seed::new(seed))
            .stop(StopCondition::RoundBudget(100_000))
            .build()
            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
            .expect("valid")
            .run();
        assert!(out.converged(), "converges");
    })
}

fn obs_counter_inc() -> Box<dyn FnMut()> {
    // A pre-resolved handle, exactly as engine instrumentation holds it:
    // registry lookups happen at attach time, the hot path is one
    // relaxed atomic add.
    let obs = Obs::new();
    let counter = obs.registry.counter("bench.obs.counter");
    Box::new(move || {
        for _ in 0..BATCH {
            counter.inc();
        }
    })
}

fn obs_trace_event_enabled() -> Box<dyn FnMut()> {
    let obs = Obs::new();
    let mut t = 0u64;
    Box::new(move || {
        for _ in 0..BATCH {
            t += 1;
            obs.trace.emit(
                "bench",
                TraceEvent::BiasSample {
                    time: t as f64,
                    leader: 0,
                    support: 60,
                    runner_up: 40,
                    total: 100,
                },
            );
        }
    })
}

fn obs_trace_event_disabled() -> Box<dyn FnMut()> {
    // The branch-away fast path every engine takes when no Obs is
    // attached: one `Option` test, no event construction. black_box
    // keeps the optimizer from deleting the check outright — this is the
    // kernel the zero-overhead contract is gated on.
    let obs: ObsHandle = None;
    let mut t = 0u64;
    Box::new(move || {
        for _ in 0..BATCH {
            t += 1;
            if let Some(o) = std::hint::black_box(&obs) {
                o.trace.emit(
                    "bench",
                    TraceEvent::BiasSample {
                        time: t as f64,
                        leader: 0,
                        support: 60,
                        runner_up: 40,
                        total: 100,
                    },
                );
            }
        }
    })
}

macro_rules! kernel {
    ($id:literal, $title:literal, $group:literal, $elements:expr, $setup:path) => {
        KernelBench {
            id: $id,
            title: $title,
            group: $group,
            elements: $elements,
            setup: $setup,
        }
    };
}

static KERNELS: [KernelBench; 39] = [
    kernel!(
        "consensus/gossip_endgame_halt/2048",
        "async Two-Choices endgame run with a 200-tick halt budget, n=2048",
        "consensus",
        1,
        consensus_gossip_endgame_halt_run
    ),
    kernel!(
        "consensus/gossip_two_choices/4096x8",
        "full async Two-Choices run to unanimity, n=4096 k=8",
        "consensus",
        1,
        consensus_gossip_run
    ),
    kernel!(
        "consensus/rapid/1024x4",
        "full Rapid protocol run to unanimity, n=1024 k=4",
        "consensus",
        1,
        consensus_rapid_run
    ),
    kernel!(
        "consensus/sync_two_choices/4096x8",
        "full synchronous Two-Choices run to unanimity, n=4096 k=8",
        "consensus",
        1,
        consensus_sync_two_choices_run
    ),
    kernel!(
        "gossip/clique_tick/4096",
        "10k async gossip ticks (Two-Choices) on K_4096, k=8",
        "gossip",
        BATCH,
        gossip_tick_4096
    ),
    kernel!(
        "gossip/clique_tick_faulty/4096",
        "10k async gossip ticks under loss+churn+adversary, K_4096, k=8",
        "gossip",
        BATCH,
        gossip_tick_faulty_4096
    ),
    kernel!(
        "macro/full_run/1e6",
        "full population-level Two-Choices run to unanimity, n=10^6 k=8",
        "macro",
        1,
        macro_full_run_1e6
    ),
    kernel!(
        "macro/tau_leap_tick",
        "one tau-leap batch (n/8 activations) of the macro engine, n=10^8 k=8",
        "macro",
        1,
        macro_tau_leap_tick
    ),
    kernel!(
        "micro/full_run_sequential/1e6",
        "full per-node Two-Choices run to unanimity, sequential scheduler, n=10^6 k=2",
        "micro",
        1,
        micro_full_run_sequential_1e6
    ),
    kernel!(
        "micro/full_run_sharded/1e6",
        "full per-node Two-Choices run to unanimity, sharded epoch engine (4 shards), n=10^6 k=2",
        "micro",
        1,
        micro_full_run_sharded_1e6
    ),
    kernel!(
        "micro/sharded_epoch/1e6",
        "one tau-sized epoch of the sharded engine (~10^6 activations), n=10^6 k=8",
        "micro",
        1_000_000,
        micro_sharded_epoch_1e6
    ),
    kernel!(
        "net/channel_step/1024",
        "1k channel-cluster activations (tick + frames + pump), n=1024",
        "net",
        1000,
        net_channel_step
    ),
    kernel!(
        "net/codec_round_trip",
        "10k envelope encode+decode round trips (pull-reply frame)",
        "net",
        BATCH,
        net_codec_round_trip
    ),
    kernel!(
        "net/machine_on_message/1024",
        "10k pull-request dispatches through one node machine",
        "net",
        BATCH,
        net_machine_on_message
    ),
    kernel!(
        "obs/counter_inc",
        "10k pre-resolved metric counter increments (one relaxed atomic add each)",
        "obs",
        BATCH,
        obs_counter_inc
    ),
    kernel!(
        "obs/trace_event_disabled",
        "10k disabled-tracing checks (the None branch engines take with no Obs attached)",
        "obs",
        BATCH,
        obs_trace_event_disabled
    ),
    kernel!(
        "obs/trace_event_enabled",
        "10k structured bias-sample emissions into the trace ring",
        "obs",
        BATCH,
        obs_trace_event_enabled
    ),
    kernel!(
        "rapid/clique_tick/4096",
        "10k Rapid two-phase protocol ticks on K_4096, k=8",
        "rapid",
        BATCH,
        rapid_tick_4096
    ),
    kernel!(
        "rapid/clique_tick_faulty/4096",
        "10k Rapid protocol ticks under loss+churn+adversary, K_4096, k=8",
        "rapid",
        BATCH,
        rapid_tick_faulty_4096
    ),
    kernel!(
        "rng/bounded",
        "10k Lemire bounded draws",
        "rng",
        BATCH,
        rng_bounded
    ),
    kernel!(
        "rng/multinomial/64",
        "100 multinomial draws over 64 categories (n=10^6 each)",
        "rng",
        100,
        rng_multinomial_64
    ),
    kernel!(
        "rng/next_u64",
        "10k raw xoshiro256++ outputs",
        "rng",
        BATCH,
        rng_next_u64
    ),
    kernel!(
        "rng/unit_f64",
        "10k uniform [0,1) doubles",
        "rng",
        BATCH,
        rng_unit_f64
    ),
    kernel!(
        "scheduler/event_queue/1024",
        "10k event-queue heap pops/pushes, n=1024",
        "scheduler",
        BATCH,
        scheduler_event_queue_1024
    ),
    kernel!(
        "scheduler/event_queue/65536",
        "10k event-queue heap pops/pushes, n=65536",
        "scheduler",
        BATCH,
        scheduler_event_queue_65536
    ),
    kernel!(
        "scheduler/jittered/1024",
        "10k jittered activations (exp. response delay), n=1024",
        "scheduler",
        BATCH,
        scheduler_jittered_1024
    ),
    kernel!(
        "scheduler/latency_pareto/1024",
        "10k activations through a heavy-tailed Pareto latency wrap, n=1024",
        "scheduler",
        BATCH,
        scheduler_latency_pareto_1024
    ),
    kernel!(
        "scheduler/sequential_expected/1024",
        "10k sequential-model activations, expected time",
        "scheduler",
        BATCH,
        scheduler_sequential_expected_1024
    ),
    kernel!(
        "scheduler/sequential_sampled/1024",
        "10k sequential-model activations, sampled gaps",
        "scheduler",
        BATCH,
        scheduler_sequential_sampled_1024
    ),
    kernel!(
        "stats/online_push",
        "10k Welford accumulator pushes",
        "stats",
        BATCH,
        stats_online_push
    ),
    kernel!(
        "stats/p2_quantile_push",
        "10k P² streaming-median pushes",
        "stats",
        BATCH,
        stats_p2_quantile_push
    ),
    kernel!(
        "sync/one_extra_bit_round/4096",
        "one synchronous OneExtraBit round on K_4096, k=8",
        "sync",
        4096,
        sync_one_extra_bit_round_4096
    ),
    kernel!(
        "sync/three_majority_round/4096",
        "one synchronous 3-Majority round on K_4096, k=8",
        "sync",
        4096,
        sync_three_majority_round_4096
    ),
    kernel!(
        "sync/two_choices_round/4096",
        "one synchronous Two-Choices round on K_4096, k=8",
        "sync",
        4096,
        sync_two_choices_round_4096
    ),
    kernel!(
        "sync/voter_round/4096",
        "one synchronous Voter round on K_4096, k=8",
        "sync",
        4096,
        sync_voter_round_4096
    ),
    kernel!(
        "topology/complete_sample/65536",
        "10k O(1) neighbor draws on K_65536",
        "topology",
        BATCH,
        topology_complete_sample_65536
    ),
    kernel!(
        "topology/regular_sample/4096",
        "10k neighbor draws on an 8-regular random graph",
        "topology",
        BATCH,
        topology_regular_sample_4096
    ),
    kernel!(
        "urn/beta_sample",
        "10k Beta(3,7) draws (the urn's limit law)",
        "urn",
        BATCH,
        urn_beta_sample
    ),
    kernel!(
        "urn/polya_step",
        "10k Pólya urn reinforcement steps",
        "urn",
        BATCH,
        urn_polya_step
    ),
];

/// Every benchmark, sorted by [`Bench::id`].
pub fn bench_registry() -> Vec<&'static dyn Bench> {
    KERNELS.iter().map(|k| k as &dyn Bench).collect()
}

/// The widest registered bench id — every rendered table sizes its id
/// column from this (a fixed width silently mis-aligned once ids grew
/// past it).
pub fn id_width() -> usize {
    KERNELS.iter().map(|k| k.id.len()).max().unwrap_or(0)
}

/// Looks up a benchmark by exact id (case-sensitive — ids are lowercase).
pub fn find(id: &str) -> Option<&'static dyn Bench> {
    KERNELS.iter().find(|k| k.id == id).map(|k| k as &dyn Bench)
}

/// Expands CLI selectors into registry benches: a selector matches on
/// exact id, exact group, or id substring. Benches are returned in
/// registry order, deduplicated. Unmatched selectors are reported.
pub fn select(selectors: &[String]) -> Result<Vec<&'static dyn Bench>, String> {
    let mut chosen: Vec<&'static dyn Bench> = Vec::new();
    for sel in selectors {
        let mut matched = false;
        for k in &KERNELS {
            if k.id == sel || k.group == sel || k.id.contains(sel.as_str()) {
                matched = true;
                if !chosen.iter().any(|b| b.id() == k.id) {
                    chosen.push(k as &dyn Bench);
                }
            }
        }
        if !matched {
            return Err(sel.clone());
        }
    }
    chosen.sort_by_key(|b| b.id());
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_sorted_and_grouped() {
        let ids: Vec<&str> = bench_registry().iter().map(|b| b.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "ids must be unique and sorted");
        for b in bench_registry() {
            assert!(b.id().starts_with(b.group()), "{} not under group", b.id());
            assert!(!b.title().is_empty());
        }
    }

    #[test]
    fn registry_covers_the_paper_hot_paths() {
        let groups: std::collections::BTreeSet<&str> =
            bench_registry().iter().map(|b| b.group()).collect();
        for g in [
            "consensus",
            "gossip",
            "macro",
            "micro",
            "net",
            "obs",
            "rapid",
            "rng",
            "scheduler",
            "stats",
            "sync",
            "topology",
            "urn",
        ] {
            assert!(groups.contains(g), "no benches in group {g}");
        }
    }

    #[test]
    fn find_and_select_resolve() {
        assert!(find("rng/next_u64").is_some());
        assert!(find("nope").is_none());
        let by_group = select(&["scheduler".to_string()]).expect("matches");
        assert!(by_group.len() >= 4);
        let by_substring = select(&["event_queue".to_string()]).expect("matches");
        assert_eq!(by_substring.len(), 2);
        let dedup = select(&["rng".to_string(), "rng/bounded".to_string()]).expect("matches");
        assert_eq!(dedup.len(), 4, "selectors must not duplicate benches");
        let err = match select(&["bogus".to_string()]) {
            Err(sel) => sel,
            Ok(_) => panic!("bogus selector must not match"),
        };
        assert_eq!(err, "bogus");
    }

    #[test]
    fn a_fast_kernel_produces_a_plausible_sample() {
        let cfg = BudgetCfg {
            budget: std::time::Duration::from_millis(5),
            min_iters: 3,
        };
        let s = find("rng/next_u64").expect("registered").run(&cfg);
        assert_eq!(s.id, "rng/next_u64");
        assert!(s.iters >= 3);
        assert!(s.p50_ns > 0.0);
        assert!(s.throughput() > 0.0);
    }
}
