//! The `BENCH_*.json` trajectory format and the regression gate.
//!
//! Every `xp bench` run emits one machine-readable document — per-bench
//! nanoseconds/iteration quantiles plus host and commit provenance — named
//! `BENCH_<unix-ms>.json` so a directory of them is a performance
//! *trajectory*. Two documents can be diffed into a [`GateVerdict`]: the
//! regression gate joins runs on bench id, compares medians (the
//! noise-aware statistic), and fails only when a bench slowed beyond the
//! configured percentage *and* a small absolute floor, so shared-runner
//! jitter on nanosecond-scale kernels cannot flip CI.

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use rapid_experiments::json::JsonValue;

use crate::sample::{BenchSample, SchemaError};

/// The format tag written into every document.
pub const SCHEMA: &str = "rapid-bench/1";

/// Regressions smaller than this many ns/iter never fail the gate, no
/// matter the ratio: at that scale the measurement is timer noise.
pub const ABSOLUTE_FLOOR_NS: f64 = 100.0;

/// Where the measurement ran (coarse provenance, std-only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostInfo {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available hardware parallelism (0 if unknown).
    pub cpus: u64,
}

impl HostInfo {
    /// Probes the current host.
    pub fn current() -> Self {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(0, |p| p.get() as u64),
        }
    }
}

/// One benchmark run: provenance plus every [`BenchSample`] measured.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Milliseconds since the Unix epoch when the run started; also the
    /// file-name timestamp.
    pub created_unix_ms: u64,
    /// The per-bench budget in milliseconds.
    pub budget_ms: u64,
    /// Host provenance.
    pub host: HostInfo,
    /// The commit measured (`GITHUB_SHA`, else `git rev-parse HEAD`).
    pub commit: Option<String>,
    /// The measurements, in run order (registry order).
    pub samples: Vec<BenchSample>,
}

impl BenchReport {
    /// Wraps measured samples with current host/commit/time provenance.
    pub fn new(budget_ms: u64, samples: Vec<BenchSample>) -> Self {
        BenchReport {
            schema: SCHEMA.to_string(),
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            budget_ms,
            host: HostInfo::current(),
            commit: detect_commit(),
            samples,
        }
    }

    /// The canonical trajectory file name: `BENCH_<unix-ms>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.created_unix_ms)
    }

    /// The document as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// The document as a [`JsonValue`] (so callers can graft extra
    /// members, e.g. the CLI's embedded gate verdict).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("schema", JsonValue::String(self.schema.clone())),
            ("created_unix_ms", JsonValue::U64(self.created_unix_ms)),
            ("budget_ms", JsonValue::U64(self.budget_ms)),
            (
                "host",
                JsonValue::object([
                    ("os", JsonValue::String(self.host.os.clone())),
                    ("arch", JsonValue::String(self.host.arch.clone())),
                    ("cpus", JsonValue::U64(self.host.cpus)),
                ]),
            ),
            (
                "commit",
                match &self.commit {
                    Some(c) => JsonValue::String(c.clone()),
                    None => JsonValue::Null,
                },
            ),
            (
                "samples",
                JsonValue::Array(
                    self.samples
                        .iter()
                        .map(BenchSample::to_json_value)
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a document produced by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError`] naming the first missing or mistyped field
    /// (malformed JSON maps to the synthetic field `"<json>"`).
    pub fn from_json(doc: &str) -> Result<BenchReport, SchemaError> {
        let v = rapid_experiments::json::parse(doc).map_err(|_| SchemaError {
            path: "<json>",
            expected: "valid JSON document",
        })?;
        let str_field = |key: &'static str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(SchemaError {
                    path: key,
                    expected: "string",
                })
        };
        let u64_field = |key: &'static str| {
            v.get(key).and_then(JsonValue::as_u64).ok_or(SchemaError {
                path: key,
                expected: "unsigned integer",
            })
        };
        let schema = str_field("schema")?;
        if schema != SCHEMA {
            return Err(SchemaError {
                path: "schema",
                expected: "rapid-bench/1 document",
            });
        }
        let host = v.get("host").ok_or(SchemaError {
            path: "host",
            expected: "object",
        })?;
        let samples = v
            .get("samples")
            .and_then(JsonValue::as_array)
            .ok_or(SchemaError {
                path: "samples",
                expected: "array",
            })?
            .iter()
            .map(BenchSample::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema,
            created_unix_ms: u64_field("created_unix_ms")?,
            budget_ms: u64_field("budget_ms")?,
            host: HostInfo {
                os: host
                    .get("os")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                arch: host
                    .get("arch")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                cpus: host.get("cpus").and_then(JsonValue::as_u64).unwrap_or(0),
            },
            commit: v
                .get("commit")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            samples,
        })
    }

    /// Loads a report from a file.
    ///
    /// # Errors
    ///
    /// I/O errors come back as `Err(Ok(_))`-free plain strings suitable for
    /// CLI display: the file path plus the underlying cause.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        BenchReport::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the document into `dir` under [`BenchReport::file_name`].
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// A sample by bench id.
    pub fn sample(&self, id: &str) -> Option<&BenchSample> {
        self.samples.iter().find(|s| s.id == id)
    }
}

fn detect_commit() -> Option<String> {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return Some(sha);
        }
    }
    let out = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let sha = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!sha.is_empty()).then_some(sha)
}

/// One bench's comparison against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct GateEntry {
    /// The bench id both runs measured.
    pub id: String,
    /// Baseline median ns/iter.
    pub baseline_ns: f64,
    /// Current median ns/iter.
    pub current_ns: f64,
    /// `current / baseline` (> 1 means slower).
    pub ratio: f64,
    /// Whether this entry fails the gate.
    pub regressed: bool,
}

/// The regression verdict for a run against a baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct GateVerdict {
    /// Per-bench comparisons, in current-run order.
    pub entries: Vec<GateEntry>,
    /// Bench ids measured now but absent from the baseline (new benches —
    /// informational, never a failure).
    pub missing_in_baseline: Vec<String>,
    /// Bench ids in the baseline but not measured now (retired or
    /// filtered out — informational).
    pub missing_in_current: Vec<String>,
    /// The gate percentage applied.
    pub gate_pct: f64,
}

impl GateVerdict {
    /// Whether the run is regression-free.
    pub fn passed(&self) -> bool {
        self.entries.iter().all(|e| !e.regressed)
    }

    /// The entries that fail the gate.
    pub fn regressions(&self) -> Vec<&GateEntry> {
        self.entries.iter().filter(|e| e.regressed).collect()
    }

    /// The verdict as a JSON fragment (embedded in `--format json` output).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("gate_pct", JsonValue::Number(self.gate_pct)),
            ("passed", JsonValue::Bool(self.passed())),
            (
                "entries",
                JsonValue::Array(
                    self.entries
                        .iter()
                        .map(|e| {
                            JsonValue::object([
                                ("id", JsonValue::String(e.id.clone())),
                                ("baseline_ns", JsonValue::Number(e.baseline_ns)),
                                ("current_ns", JsonValue::Number(e.current_ns)),
                                ("ratio", JsonValue::Number(e.ratio)),
                                ("regressed", JsonValue::Bool(e.regressed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "missing_in_baseline",
                JsonValue::strings(&self.missing_in_baseline),
            ),
            (
                "missing_in_current",
                JsonValue::strings(&self.missing_in_current),
            ),
        ])
    }
}

impl GateVerdict {
    /// The per-bench comparison table, without the enforcement line.
    ///
    /// The id column is sized to the widest id in the verdict (a fixed
    /// width broke alignment once multi-digit kernel ids outgrew it).
    pub fn comparison_table(&self) -> String {
        use std::fmt::Write as _;
        let w = self
            .entries
            .iter()
            .map(|e| e.id.len())
            .chain(self.missing_in_baseline.iter().map(String::len))
            .chain(self.missing_in_current.iter().map(String::len))
            .chain(std::iter::once("bench".len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<w$} {:>14} {:>14} {:>8}  verdict",
            "bench", "baseline", "current", "ratio"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<w$} {:>11.1} ns {:>11.1} ns {:>8.3}  {}",
                e.id,
                e.baseline_ns,
                e.current_ns,
                e.ratio,
                if e.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for id in &self.missing_in_baseline {
            let _ = writeln!(out, "{id:<w$} (not in baseline — skipped)");
        }
        for id in &self.missing_in_current {
            let _ = writeln!(out, "{id:<w$} (in baseline, not measured)");
        }
        out
    }
}

impl std::fmt::Display for GateVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.comparison_table())?;
        write!(
            f,
            "gate: fail above {:.0}% slower (and > {ABSOLUTE_FLOOR_NS:.0} ns absolute) → {}",
            self.gate_pct,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Compares `current` against `baseline` with a `gate_pct` threshold.
///
/// A bench regresses when its median slowed by more than `gate_pct`
/// percent **and** by more than [`ABSOLUTE_FLOOR_NS`] absolute — the
/// second clause keeps timer noise on nanosecond kernels from flipping
/// CI. Benches present on only one side never fail the gate; they are
/// listed in the verdict so a silently shrinking measured set is visible.
pub fn gate(current: &BenchReport, baseline: &BenchReport, gate_pct: f64) -> GateVerdict {
    let threshold = 1.0 + gate_pct / 100.0;
    let mut entries = Vec::new();
    let mut missing_in_baseline = Vec::new();
    for s in &current.samples {
        match baseline.sample(&s.id) {
            None => missing_in_baseline.push(s.id.clone()),
            Some(b) => {
                let ratio = if b.p50_ns > 0.0 {
                    s.p50_ns / b.p50_ns
                } else {
                    f64::INFINITY
                };
                let regressed = ratio > threshold && (s.p50_ns - b.p50_ns) > ABSOLUTE_FLOOR_NS;
                entries.push(GateEntry {
                    id: s.id.clone(),
                    baseline_ns: b.p50_ns,
                    current_ns: s.p50_ns,
                    ratio,
                    regressed,
                });
            }
        }
    }
    let missing_in_current = baseline
        .samples
        .iter()
        .filter(|b| current.sample(&b.id).is_none())
        .map(|b| b.id.clone())
        .collect();
    GateVerdict {
        entries,
        missing_in_baseline,
        missing_in_current,
        gate_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: &str, p50: f64) -> BenchSample {
        BenchSample {
            id: id.into(),
            group: id.split('/').next().expect("non-empty").into(),
            elements: 1,
            iters: 10,
            total_ns: 1000,
            mean_ns: p50,
            min_ns: p50,
            p10_ns: p50,
            p50_ns: p50,
            p90_ns: p50,
            max_ns: p50,
        }
    }

    fn report(samples: Vec<BenchSample>) -> BenchReport {
        BenchReport::new(300, samples)
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(vec![sample("a/x", 1000.0), sample("b/y", 2000.0)]);
        let parsed = BenchReport::from_json(&r.to_json()).expect("round-trip");
        assert_eq!(parsed, r);
        assert!(r.file_name().starts_with("BENCH_"));
        assert!(r.file_name().ends_with(".json"));
    }

    #[test]
    fn report_records_provenance() {
        let r = report(vec![]);
        assert_eq!(r.schema, SCHEMA);
        assert!(!r.host.os.is_empty());
        assert!(!r.host.arch.is_empty());
        // Inside this repo the commit is detectable (git or GITHUB_SHA).
        assert!(r.commit.is_some(), "commit provenance should resolve here");
    }

    #[test]
    fn malformed_documents_are_rejected_with_field_names() {
        assert_eq!(
            BenchReport::from_json("not json")
                .expect_err("rejected")
                .path,
            "<json>"
        );
        assert_eq!(
            BenchReport::from_json("{}").expect_err("rejected").path,
            "schema"
        );
        let wrong = r#"{"schema": "other/9"}"#;
        assert_eq!(
            BenchReport::from_json(wrong).expect_err("rejected").path,
            "schema"
        );
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let base = report(vec![sample("a/x", 1000.0), sample("b/y", 1000.0)]);
        let ok = report(vec![sample("a/x", 1400.0), sample("b/y", 900.0)]);
        let v = gate(&ok, &base, 100.0);
        assert!(v.passed(), "{v}");
        assert_eq!(v.entries.len(), 2);

        let bad = report(vec![sample("a/x", 2500.0), sample("b/y", 900.0)]);
        let v = gate(&bad, &base, 100.0);
        assert!(!v.passed());
        let regs = v.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "a/x");
        assert!((regs[0].ratio - 2.5).abs() < 1e-9);
        assert!(v.to_string().contains("REGRESSED"));
    }

    #[test]
    fn gate_ignores_sub_floor_noise_even_at_huge_ratios() {
        // 3x slower but only 80 ns absolute: timer noise, not a regression.
        let base = report(vec![sample("a/x", 40.0)]);
        let cur = report(vec![sample("a/x", 120.0)]);
        assert!(gate(&cur, &base, 100.0).passed());
    }

    #[test]
    fn gate_reports_missing_benches_without_failing() {
        let base = report(vec![sample("a/x", 1000.0), sample("old/z", 1.0)]);
        let cur = report(vec![sample("a/x", 1000.0), sample("new/w", 1.0)]);
        let v = gate(&cur, &base, 100.0);
        assert!(v.passed());
        assert_eq!(v.missing_in_baseline, vec!["new/w".to_string()]);
        assert_eq!(v.missing_in_current, vec!["old/z".to_string()]);
        let txt = v.to_string();
        assert!(txt.contains("not in baseline"));
        assert!(txt.contains("not measured"));
    }

    #[test]
    fn comparison_table_golden_render_sizes_the_id_column() {
        // Pins the table layout: the id column is as wide as the widest
        // id (here the 29-char micro kernel), so multi-digit / long
        // kernel ids keep every numeric column aligned.
        let v = GateVerdict {
            entries: vec![
                GateEntry {
                    id: "a/x".into(),
                    baseline_ns: 1000.0,
                    current_ns: 1500.0,
                    ratio: 1.5,
                    regressed: false,
                },
                GateEntry {
                    id: "micro/full_run_sequential/1e6".into(),
                    baseline_ns: 100.0,
                    current_ns: 400.0,
                    ratio: 4.0,
                    regressed: true,
                },
            ],
            missing_in_baseline: vec![],
            missing_in_current: vec!["old/z".into()],
            gate_pct: 100.0,
        };
        let expected = "\
bench                               baseline        current    ratio  verdict
a/x                                1000.0 ns      1500.0 ns    1.500  ok
micro/full_run_sequential/1e6       100.0 ns       400.0 ns    4.000  REGRESSED
old/z                         (in baseline, not measured)
";
        assert_eq!(v.comparison_table(), expected);
    }

    #[test]
    fn save_writes_the_timestamped_file() {
        let dir = std::env::temp_dir().join("rapid-bench-save-test");
        std::fs::remove_dir_all(&dir).ok();
        let r = report(vec![sample("a/x", 1.0)]);
        let path = r.save(&dir).expect("saved");
        assert_eq!(
            path.file_name().expect("name").to_string_lossy(),
            r.file_name()
        );
        let loaded = BenchReport::load(&path).expect("loads");
        assert_eq!(loaded, r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_is_a_readable_error() {
        let err = BenchReport::load(Path::new("/nonexistent/baseline.json")).expect_err("missing");
        assert!(err.contains("/nonexistent/baseline.json"));
    }
}
