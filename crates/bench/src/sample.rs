//! The measurement layer: [`Bench`], [`BudgetCfg`] and [`BenchSample`].
//!
//! Mirrors the experiment registry's design one level down: a benchmark is
//! a trait object with a stable id, a human title and a group, and running
//! it under a time budget yields a machine-readable [`BenchSample`] —
//! per-iteration wall-clock quantiles (via `rapid-stats`) plus element
//! throughput. Samples serialise to the `BENCH_*.json` trajectory format
//! (see [`crate::report`]) and parse back, so two runs can be diffed into
//! a regression verdict.

use std::time::{Duration, Instant};

use rapid_experiments::json::JsonValue;
use rapid_stats::{quantile::quantile_sorted, OnlineStats};

/// Hard cap on stored per-iteration timings, so a pathologically fast
/// closure cannot allocate without bound inside one budget window.
const MAX_TIMINGS: usize = 1 << 21;

/// How long to run each benchmark.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BudgetCfg {
    /// Wall-clock budget per bench once warmed up.
    pub budget: Duration,
    /// Minimum measured iterations, even if the budget is exceeded.
    pub min_iters: u32,
}

impl Default for BudgetCfg {
    fn default() -> Self {
        BudgetCfg {
            budget: Duration::from_millis(300),
            min_iters: 5,
        }
    }
}

impl BudgetCfg {
    /// A budget of `ms` milliseconds with the default iteration floor.
    pub fn from_millis(ms: u64) -> Self {
        BudgetCfg {
            budget: Duration::from_millis(ms),
            ..BudgetCfg::default()
        }
    }

    /// The CI-scale budget (50 ms — noisy runners want the generous gate,
    /// not long budgets).
    pub fn quick() -> Self {
        BudgetCfg::from_millis(50)
    }
}

/// One benchmark's measured result: iteration wall-clock quantiles.
///
/// All durations are nanoseconds per iteration. `p50_ns` (the median) is
/// the headline figure — it is what the regression gate compares, being
/// far less noise-sensitive than the mean on shared runners.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSample {
    /// The benchmark's stable id (`"scheduler/event_queue/1024"`).
    pub id: String,
    /// The registry group (`"scheduler"`).
    pub group: String,
    /// Logical items processed per iteration (1 for whole-run benches).
    pub elements: u64,
    /// Measured iterations.
    pub iters: u64,
    /// Total measured wall-clock, nanoseconds.
    pub total_ns: u64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Minimum ns/iter.
    pub min_ns: f64,
    /// 10th percentile ns/iter.
    pub p10_ns: f64,
    /// Median ns/iter — the regression gate's comparison key.
    pub p50_ns: f64,
    /// 90th percentile ns/iter.
    pub p90_ns: f64,
    /// Maximum ns/iter.
    pub max_ns: f64,
}

impl BenchSample {
    /// Element throughput (elements per second) at the median iteration.
    pub fn throughput(&self) -> f64 {
        if self.p50_ns <= 0.0 {
            return 0.0;
        }
        self.elements as f64 * 1e9 / self.p50_ns
    }

    /// Nanoseconds per element at the median iteration.
    pub fn ns_per_element(&self) -> f64 {
        self.p50_ns / self.elements as f64
    }

    /// The sample as a `BENCH_*.json` fragment.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("id", JsonValue::String(self.id.clone())),
            ("group", JsonValue::String(self.group.clone())),
            ("elements", JsonValue::U64(self.elements)),
            ("iters", JsonValue::U64(self.iters)),
            ("total_ns", JsonValue::U64(self.total_ns)),
            (
                "ns_per_iter",
                JsonValue::object([
                    ("mean", JsonValue::Number(self.mean_ns)),
                    ("min", JsonValue::Number(self.min_ns)),
                    ("p10", JsonValue::Number(self.p10_ns)),
                    ("p50", JsonValue::Number(self.p50_ns)),
                    ("p90", JsonValue::Number(self.p90_ns)),
                    ("max", JsonValue::Number(self.max_ns)),
                ]),
            ),
            (
                "throughput_elem_per_s",
                JsonValue::Number(self.throughput()),
            ),
        ])
    }

    /// Parses a sample from a `BENCH_*.json` fragment.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError`] naming the first missing or mistyped field.
    pub fn from_json_value(v: &JsonValue) -> Result<BenchSample, SchemaError> {
        let str_field = |key: &'static str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(SchemaError {
                    path: key,
                    expected: "string",
                })
        };
        let u64_field = |key: &'static str| {
            v.get(key).and_then(JsonValue::as_u64).ok_or(SchemaError {
                path: key,
                expected: "unsigned integer",
            })
        };
        let ns = v.get("ns_per_iter").ok_or(SchemaError {
            path: "ns_per_iter",
            expected: "object",
        })?;
        let ns_field = |key: &'static str| {
            ns.get(key).and_then(JsonValue::as_f64).ok_or(SchemaError {
                path: key,
                expected: "number in ns_per_iter",
            })
        };
        Ok(BenchSample {
            id: str_field("id")?,
            group: str_field("group")?,
            elements: u64_field("elements")?,
            iters: u64_field("iters")?,
            total_ns: u64_field("total_ns")?,
            mean_ns: ns_field("mean")?,
            min_ns: ns_field("min")?,
            p10_ns: ns_field("p10")?,
            p50_ns: ns_field("p50")?,
            p90_ns: ns_field("p90")?,
            max_ns: ns_field("max")?,
        })
    }
}

/// A malformed `BENCH_*.json` document.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SchemaError {
    /// The offending field.
    pub path: &'static str,
    /// What the schema expected there.
    pub expected: &'static str,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "field {:?} missing or not a {}",
            self.path, self.expected
        )
    }
}

impl std::error::Error for SchemaError {}

/// One registered micro-benchmark.
///
/// Implementations are zero-sized registry entries (see
/// [`crate::registry::bench_registry`]); all measurement state is built in
/// `run`, so a `Bench` can be executed any number of times under any
/// budget.
pub trait Bench: Sync {
    /// Stable id (`"scheduler/event_queue/1024"`), the CLI handle and the
    /// key the regression gate joins runs on.
    fn id(&self) -> &'static str;

    /// Human-readable description of what one iteration does.
    fn title(&self) -> &'static str;

    /// Coarse group (`"scheduler"`, `"gossip"`, …) for filtering.
    fn group(&self) -> &'static str;

    /// Runs the benchmark under `cfg` and reports the measurement.
    fn run(&self, cfg: &BudgetCfg) -> BenchSample;
}

/// Times `f` repeatedly under `cfg` and summarises into a [`BenchSample`].
///
/// One untimed warm-up call fills caches and faults pages; then every call
/// is timed individually until the budget is spent (but at least
/// `cfg.min_iters` calls), and the per-iteration quantiles are computed
/// exactly with `rapid-stats`.
///
/// **Batching contract:** each call is bracketed by two `Instant::now()`
/// reads (tens of nanoseconds). A closure must therefore do at least
/// ~1 µs of work per call — batch fast kernels internally (the registry
/// batches 10k operations per iteration) — or the sample measures timer
/// overhead, not the kernel.
pub fn measure(
    id: &str,
    group: &str,
    elements: u64,
    cfg: &BudgetCfg,
    f: &mut dyn FnMut(),
) -> BenchSample {
    f(); // warm-up
    let mut timings_ns: Vec<f64> = Vec::new();
    let start = Instant::now();
    loop {
        let t0 = Instant::now();
        f();
        timings_ns.push(t0.elapsed().as_nanos() as f64);
        if timings_ns.len() >= cfg.min_iters as usize
            && (start.elapsed() >= cfg.budget || timings_ns.len() >= MAX_TIMINGS)
        {
            break;
        }
    }
    let total_ns = start.elapsed().as_nanos() as u64;
    let mut acc = OnlineStats::new();
    for &t in &timings_ns {
        acc.push(t);
    }
    timings_ns.sort_by(f64::total_cmp);
    BenchSample {
        id: id.to_string(),
        group: group.to_string(),
        elements,
        iters: timings_ns.len() as u64,
        total_ns,
        mean_ns: acc.mean(),
        min_ns: timings_ns[0],
        p10_ns: quantile_sorted(&timings_ns, 0.10),
        p50_ns: quantile_sorted(&timings_ns, 0.50),
        p90_ns: quantile_sorted(&timings_ns, 0.90),
        // lint: allow(panic-hygiene): the sampling loop always records at least one timing
        max_ns: *timings_ns.last().expect("at least min_iters timings"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_respects_min_iters_and_orders_quantiles() {
        let cfg = BudgetCfg {
            budget: Duration::from_millis(1),
            min_iters: 7,
        };
        let mut count = 0u64;
        let s = measure("t/noop", "t", 10, &cfg, &mut || count += 1);
        assert!(s.iters >= 7);
        assert_eq!(count, s.iters + 1, "one warm-up call plus timed calls");
        assert!(s.min_ns <= s.p10_ns);
        assert!(s.p10_ns <= s.p50_ns);
        assert!(s.p50_ns <= s.p90_ns);
        assert!(s.p90_ns <= s.max_ns);
        assert!(s.mean_ns >= s.min_ns && s.mean_ns <= s.max_ns);
        assert_eq!(s.elements, 10);
        assert_eq!(s.group, "t");
    }

    #[test]
    fn sample_json_round_trips_exactly() {
        let s = BenchSample {
            id: "g/x/1".into(),
            group: "g".into(),
            elements: 10_000,
            iters: 321,
            total_ns: 300_000_111,
            mean_ns: 934_579.25,
            min_ns: 900_000.0,
            p10_ns: 910_000.5,
            p50_ns: 930_000.0,
            p90_ns: 960_000.0,
            max_ns: 1_200_000.0,
        };
        let doc = s.to_json_value().to_pretty();
        let parsed =
            BenchSample::from_json_value(&rapid_experiments::json::parse(&doc).expect("valid"))
                .expect("schema");
        assert_eq!(parsed, s);
    }

    #[test]
    fn schema_errors_name_the_field() {
        // No quantile block at all: reported before the scalar fields.
        let doc = rapid_experiments::json::parse(r#"{"id": "x"}"#).expect("valid JSON");
        let err = BenchSample::from_json_value(&doc).expect_err("incomplete");
        assert_eq!(err.path, "ns_per_iter");

        // Quantile block present but a field missing inside it.
        let doc = rapid_experiments::json::parse(
            r#"{"id": "x", "ns_per_iter": {"mean": 1.0}, "elements": 1,
                "iters": 1, "total_ns": 1}"#,
        )
        .expect("valid JSON");
        let err = BenchSample::from_json_value(&doc).expect_err("incomplete");
        assert_eq!(err.path, "group");
        assert!(err.to_string().contains("group"));
    }

    #[test]
    fn throughput_follows_median() {
        let mut s = BenchSample {
            id: "x".into(),
            group: "g".into(),
            elements: 1000,
            iters: 10,
            total_ns: 1,
            mean_ns: 0.0,
            min_ns: 0.0,
            p10_ns: 0.0,
            p50_ns: 1_000_000.0, // 1 ms per 1000 elements → 1M elem/s
            p90_ns: 0.0,
            max_ns: 0.0,
        };
        assert!((s.throughput() - 1e6).abs() < 1e-6);
        assert!((s.ns_per_element() - 1000.0).abs() < 1e-9);
        s.p50_ns = 0.0;
        assert_eq!(s.throughput(), 0.0);
    }
}
