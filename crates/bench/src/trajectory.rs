//! Reading a directory of `BENCH_*.json` documents as one flat,
//! queryable trajectory.
//!
//! Each document is a snapshot of every registered benchmark at one
//! commit and time; the *trajectory* is the concatenation. This module
//! flattens the per-document sample arrays into one row per
//! (document, bench id) — the shape `xp serve`'s `GET /bench` exposes,
//! where query parameters filter rows by field equality (`?group=
//! scheduler`, `?commit=<sha>`). Parsing is lenient by design: the
//! serving layer must keep answering when a directory mixes schema
//! generations or contains a half-written document, so malformed files
//! are skipped and reported in the `skipped` field rather than failing
//! the endpoint.

use std::path::{Path, PathBuf};

use rapid_experiments::json::{self, JsonValue};

/// The default trajectory directory: `target/benchmarks` under the
/// workspace root, where `xp bench` saves its documents.
pub fn default_dir() -> PathBuf {
    crate::cli::default_out_dir()
}

/// Flattens every readable `BENCH_*.json` under `dir` into
/// `{"rows": [...], "skipped": [...]}`. Rows are sorted by
/// (`created_unix_ms`, `id`) so the document is deterministic for a
/// given directory; files that fail to parse land in `skipped` by name.
///
/// # Errors
///
/// Returns an error string only when `dir` exists but cannot be
/// enumerated; a missing directory is an empty trajectory.
pub fn load(dir: &Path) -> Result<JsonValue, String> {
    let mut rows: Vec<(u64, String, JsonValue)> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    if dir.is_dir() {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut names: Vec<String> = entries
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
            .collect();
        names.sort();
        for name in names {
            match flatten_document(dir, &name, &mut rows) {
                Ok(()) => {}
                Err(()) => skipped.push(name),
            }
        }
    }
    rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    Ok(JsonValue::object([
        (
            "rows",
            JsonValue::Array(rows.into_iter().map(|(_, _, row)| row).collect()),
        ),
        ("skipped", JsonValue::strings(&skipped)),
    ]))
}

/// A ready-made `/bench` provider over `dir` for `xp serve`.
pub fn provider(dir: PathBuf) -> rapid_sweep::BenchProvider {
    Box::new(move || load(&dir))
}

/// Parses one document and appends its sample rows; `Err(())` marks the
/// file as skipped.
fn flatten_document(
    dir: &Path,
    name: &str,
    rows: &mut Vec<(u64, String, JsonValue)>,
) -> Result<(), ()> {
    let text = std::fs::read_to_string(dir.join(name)).map_err(|_| ())?;
    let doc = json::parse(&text).map_err(|_| ())?;
    let created = doc
        .get("created_unix_ms")
        .and_then(JsonValue::as_u64)
        .ok_or(())?;
    let commit = doc
        .get("commit")
        .and_then(JsonValue::as_str)
        .unwrap_or("-")
        .to_string();
    let samples = doc.get("samples").and_then(JsonValue::as_array).ok_or(())?;
    for sample in samples {
        let id = sample
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or(())?
            .to_string();
        let field = |key: &str| sample.get(key).cloned().unwrap_or(JsonValue::Null);
        let quantile = |key: &str| {
            sample
                .get("ns_per_iter")
                .and_then(|q| q.get(key))
                .cloned()
                .unwrap_or(JsonValue::Null)
        };
        let row = JsonValue::object([
            ("file", JsonValue::String(name.to_string())),
            ("created_unix_ms", JsonValue::U64(created)),
            ("commit", JsonValue::String(commit.clone())),
            ("id", JsonValue::String(id.clone())),
            ("group", field("group")),
            ("elements", field("elements")),
            ("iters", field("iters")),
            ("p50_ns", quantile("p50")),
            ("p10_ns", quantile("p10")),
            ("p90_ns", quantile("p90")),
            ("throughput_elem_per_s", field("throughput_elem_per_s")),
        ]);
        rows.push((created, id, row));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::BenchReport;
    use crate::sample::BenchSample;

    fn sample(id: &str, p50: f64) -> BenchSample {
        BenchSample {
            id: id.to_string(),
            group: "g".to_string(),
            elements: 10,
            iters: 100,
            total_ns: 1000,
            mean_ns: p50,
            min_ns: p50,
            p10_ns: p50,
            p50_ns: p50,
            p90_ns: p50,
            max_ns: p50,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rapid-trajectory-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn missing_directory_is_an_empty_trajectory() {
        let doc = load(Path::new("/nonexistent/rapid-trajectory")).expect("empty ok");
        assert_eq!(doc.get("rows").and_then(JsonValue::as_array), Some(&[][..]));
    }

    #[test]
    fn flattens_sorts_and_skips_garbage() {
        let dir = tmp_dir("flatten");
        let mut newer = BenchReport::new(10, vec![sample("b", 2.0), sample("a", 1.0)]);
        newer.created_unix_ms = 2000;
        newer.commit = Some("feedc0de".to_string());
        let mut older = BenchReport::new(10, vec![sample("a", 3.0)]);
        older.created_unix_ms = 1000;
        older.commit = None;
        std::fs::write(dir.join(newer.file_name()), newer.to_json()).expect("write");
        std::fs::write(dir.join(older.file_name()), older.to_json()).expect("write");
        std::fs::write(dir.join("BENCH_notjson.json"), "{").expect("write");
        std::fs::write(dir.join("unrelated.txt"), "ignored").expect("write");

        let doc = load(&dir).expect("loads");
        let rows = doc.get("rows").and_then(JsonValue::as_array).expect("rows");
        assert_eq!(rows.len(), 3);
        let ids: Vec<&str> = rows
            .iter()
            .map(|r| r.get("id").and_then(JsonValue::as_str).expect("id"))
            .collect();
        // Sorted by (created_unix_ms, id): the 1000-ms doc first.
        assert_eq!(ids, vec!["a", "a", "b"]);
        assert_eq!(
            rows[0].get("commit").and_then(JsonValue::as_str),
            Some("-"),
            "absent commit renders as '-'"
        );
        assert_eq!(
            rows[1].get("commit").and_then(JsonValue::as_str),
            Some("feedc0de")
        );
        assert_eq!(
            doc.get("skipped")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn provider_closure_serves_the_directory() {
        let dir = tmp_dir("provider");
        let report = BenchReport::new(10, vec![sample("only", 5.0)]);
        std::fs::write(dir.join(report.file_name()), report.to_json()).expect("write");
        let p = provider(dir.clone());
        let doc = p().expect("loads");
        assert_eq!(
            doc.get("rows")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
