//! End-to-end tests of the BENCH_*.json trajectory: measure through the
//! real registry, serialise, reload, and gate — the exact path the CI
//! perf job exercises.

use std::time::Duration;

use rapid_bench::report::{gate, BenchReport};
use rapid_bench::sample::BudgetCfg;
use rapid_bench::{bench_registry, BenchSample};

fn tiny_budget() -> BudgetCfg {
    BudgetCfg {
        budget: Duration::from_millis(2),
        min_iters: 2,
    }
}

/// A cheap subset of the registry (skips whole-consensus runs so the
/// suite stays fast).
fn quick_samples() -> Vec<BenchSample> {
    bench_registry()
        .iter()
        .filter(|b| ["rng", "stats", "urn"].contains(&b.group()))
        .map(|b| b.run(&tiny_budget()))
        .collect()
}

#[test]
fn registry_measurements_round_trip_through_bench_json() {
    let samples = quick_samples();
    assert!(samples.len() >= 5);
    let report = BenchReport::new(2, samples);
    let doc = report.to_json();
    let parsed = BenchReport::from_json(&doc).expect("schema-valid document");
    assert_eq!(parsed, report);
    // The document carries the machine-checkable essentials.
    assert!(doc.contains("\"schema\": \"rapid-bench/1\""));
    assert!(doc.contains("\"throughput_elem_per_s\""));
    assert!(doc.contains("\"p50\""));
}

#[test]
fn self_gate_passes_and_saved_file_reloads() {
    let report = BenchReport::new(2, quick_samples());
    let verdict = gate(&report, &report, 100.0);
    assert!(verdict.passed(), "a run can never regress against itself");
    assert_eq!(verdict.entries.len(), report.samples.len());
    assert!(verdict.missing_in_baseline.is_empty());
    assert!(verdict.missing_in_current.is_empty());

    let dir = std::env::temp_dir().join("rapid-bench-trajectory-test");
    std::fs::remove_dir_all(&dir).ok();
    let path = report.save(&dir).expect("saved");
    assert!(path
        .file_name()
        .expect("file name")
        .to_string_lossy()
        .starts_with("BENCH_"));
    let reloaded = BenchReport::load(&path).expect("reloads");
    assert_eq!(reloaded, report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn doubled_medians_fail_a_100_percent_gate() {
    let baseline = BenchReport::new(2, quick_samples());
    let mut current = baseline.clone();
    for s in &mut current.samples {
        s.p50_ns = s.p50_ns * 2.0 + 10_000.0; // beyond ratio and floor
    }
    let verdict = gate(&current, &baseline, 100.0);
    assert!(!verdict.passed());
    assert_eq!(verdict.regressions().len(), current.samples.len());
    // The same slowdown passes a sufficiently generous gate.
    let generous = gate(&current, &baseline, 10_000.0);
    assert!(generous.passed());
}

#[test]
fn readme_performance_table_matches_the_committed_baseline() {
    // The README's hot-path table is generated from bench/baseline.json;
    // this keeps the two from drifting (refresh procedure: README
    // § Performance).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let baseline = BenchReport::load(&root.join("bench").join("baseline.json")).expect("parses");
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README exists");
    let table = readme
        .split("<!-- bench-baseline:begin -->")
        .nth(1)
        .and_then(|s| s.split("<!-- bench-baseline:end -->").next())
        .expect("README has the bench-baseline markers");
    for s in &baseline.samples {
        let row_prefix = format!("| `{}` | {} |", s.id, rapid_bench::cli::format_ns(s.p50_ns));
        assert!(
            table.contains(&row_prefix),
            "README row for {} out of sync with bench/baseline.json \
             (expected a row starting {row_prefix:?})",
            s.id
        );
    }
}

#[test]
fn committed_ci_baseline_stays_schema_valid_and_covers_the_registry() {
    // The CI perf job diffs against this file; a malformed or stale
    // baseline must fail here, at test time, not on a runner.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("bench")
        .join("baseline.json");
    let baseline = BenchReport::load(&path).expect("bench/baseline.json parses");
    for b in bench_registry() {
        assert!(
            baseline.sample(b.id()).is_some(),
            "bench {} missing from bench/baseline.json — refresh it \
             (see README § Performance)",
            b.id()
        );
    }
}
