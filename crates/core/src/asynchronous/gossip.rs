//! Plain asynchronous gossip: Voter, Two-Choices, 3-Majority.
//!
//! Each Poisson tick, the activated node samples neighbors per the
//! [`GossipRule`] and updates its color immediately (no snapshots — this is
//! the genuinely asynchronous dynamic).
//!
//! Asynchronous Two-Choices is both the natural baseline for the paper's
//! protocol and its **endgame** (part 2): Theorem 1.3's second stage runs
//! exactly this process from a `c_1 ≥ (1−ε)n` configuration. The optional
//! per-node tick budget ([`AsyncGossipSim::with_halt_after`]) models the
//! endgame's "finish line": nodes freeze after that many own ticks, and the
//! run succeeds only if unanimity arrives before the first freeze.

use rapid_graph::topology::Topology;
use rapid_sim::fault::{FaultPlan, FaultState};
use rapid_sim::node::NodeId;
use rapid_sim::rng::SimRng;
use rapid_sim::scheduler::{Activation, ActivationSource};
use rapid_sim::time::SimTime;

use crate::convergence::{AsyncOutcome, ConvergenceError};
use crate::opinion::Configuration;

/// The update rule applied on each tick.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GossipRule {
    /// Sample one neighbor, adopt its color.
    Voter,
    /// Sample two neighbors (with replacement); adopt iff they agree.
    TwoChoices,
    /// Sample three; adopt the majority, or the first sample if all differ.
    ThreeMajority,
}

impl GossipRule {
    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            GossipRule::Voter => "async-voter",
            GossipRule::TwoChoices => "async-two-choices",
            GossipRule::ThreeMajority => "async-3-majority",
        }
    }
}

impl std::fmt::Display for GossipRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An asynchronous gossip simulation.
///
/// Generic over the topology `G` and the activation source `S` (sequential,
/// event-queue, jittered, or a replayed trace).
///
/// # Example
///
/// ```
/// use rapid_core::prelude::*;
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
///
/// let out = Sim::builder()
///     .topology(Complete::new(500))
///     .counts(&[400, 100])
///     .gossip(GossipRule::TwoChoices)
///     .seed(Seed::new(1))
///     .stop(StopCondition::StepBudget(10_000_000))
///     .build()
///     .expect("valid experiment")
///     .run_to_consensus()
///     .expect("converges");
/// assert_eq!(out.winner, Some(Color::new(0)));
/// ```
#[derive(Clone, Debug)]
pub struct AsyncGossipSim<G, S> {
    topology: G,
    config: Configuration,
    rule: GossipRule,
    source: S,
    rng: SimRng,
    ticks: Vec<u64>,
    halt_after: Option<u64>,
    halted_count: usize,
    first_halt: Option<SimTime>,
    steps: u64,
    now: SimTime,
    faults: Option<FaultState>,
}

impl<G: Topology, S: ActivationSource> AsyncGossipSim<G, S> {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if topology, configuration and source disagree on `n`.
    pub fn new(
        topology: G,
        config: Configuration,
        rule: GossipRule,
        source: S,
        seed: rapid_sim::rng::Seed,
    ) -> Self {
        assert_eq!(
            topology.n(),
            config.n(),
            "topology/configuration n mismatch"
        );
        assert_eq!(source.n(), config.n(), "source/configuration n mismatch");
        let n = config.n();
        AsyncGossipSim {
            topology,
            config,
            rule,
            source,
            rng: SimRng::from_seed_value(seed),
            ticks: vec![0; n],
            halt_after: None,
            halted_count: 0,
            first_halt: None,
            steps: 0,
            now: SimTime::ZERO,
            faults: None,
        }
    }

    /// Installs a fault layer driven by `plan` (loss, churn, adversary;
    /// latency is realised one level down, by the activation source). A
    /// [neutral](FaultPlan::is_neutral) plan leaves the run bit-identical
    /// to one without a fault layer.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::check`] for this population.
    pub fn with_faults(mut self, plan: &FaultPlan, seed: rapid_sim::rng::Seed) -> Self {
        self.faults = Some(FaultState::new(plan, self.config.n(), seed));
        self
    }

    /// The fault layer, if one is installed.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Makes every node freeze its color after `ticks` of its own ticks
    /// (the endgame's part-2 finish line).
    ///
    /// # Panics
    ///
    /// Panics if `ticks == 0`.
    pub fn with_halt_after(mut self, ticks: u64) -> Self {
        assert!(ticks > 0, "halt budget must be positive");
        self.halt_after = Some(ticks);
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// The update rule.
    pub fn rule(&self) -> GossipRule {
        self.rule
    }

    /// Simulation time of the latest activation.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total activations executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Time at which the first node froze, if any.
    pub fn first_halt(&self) -> Option<SimTime> {
        self.first_halt
    }

    /// The per-node tick budget after which nodes freeze, if one is set.
    pub fn halt_budget(&self) -> Option<u64> {
        self.halt_after
    }

    /// How many nodes have frozen.
    pub fn halted_count(&self) -> usize {
        self.halted_count
    }

    /// Executes one activation; returns it.
    pub fn tick(&mut self) -> Activation {
        let a = self.source.next_activation();
        self.now = a.time;
        self.steps += 1;
        let u = a.node;
        let i = u.index();

        if self.faults.is_some() {
            crate::faults::pre_tick(&mut self.faults, &mut self.config, a.time);
            if self.faults.as_ref().is_some_and(|f| f.is_down(u)) {
                // Crashed: the clock tick is consumed, the state is frozen.
                return a;
            }
        }
        if let Some(budget) = self.halt_after {
            if self.ticks[i] >= budget {
                // Frozen: clock ticks, state does not change.
                return a;
            }
        }
        self.ticks[i] += 1;
        self.apply_rule(u);
        if let Some(budget) = self.halt_after {
            if self.ticks[i] >= budget {
                self.halted_count += 1;
                if self.first_halt.is_none() {
                    self.first_halt = Some(a.time);
                }
            }
        }
        a
    }

    /// Pulls one neighbor: the sample always comes from the main RNG
    /// stream (so fault-free runs are bit-identical to the pre-fault
    /// implementation), then the fault layer may void the response — the
    /// contacted node is down, or the message is lost.
    fn pull(&mut self, u: NodeId) -> Option<NodeId> {
        let v = self.topology.sample_neighbor(u, &mut self.rng);
        if let Some(f) = self.faults.as_mut() {
            if f.is_down(v) || f.message_lost() {
                return None;
            }
        }
        Some(v)
    }

    // An interaction aborts (the node keeps its color) unless every pulled
    // response arrives; all samples are drawn regardless, so the main RNG
    // stream does not depend on which responses were lost.
    fn apply_rule(&mut self, u: NodeId) {
        match self.rule {
            GossipRule::Voter => {
                if let Some(v) = self.pull(u) {
                    let c = self.config.color(v);
                    self.config.set_color(u, c);
                }
            }
            GossipRule::TwoChoices => {
                let v = self.pull(u);
                let w = self.pull(u);
                if let (Some(v), Some(w)) = (v, w) {
                    let cv = self.config.color(v);
                    if cv == self.config.color(w) {
                        self.config.set_color(u, cv);
                    }
                }
            }
            GossipRule::ThreeMajority => {
                let x = self.pull(u);
                let y = self.pull(u);
                let z = self.pull(u);
                if let (Some(x), Some(y), Some(z)) = (x, y, z) {
                    let a = self.config.color(x);
                    let b = self.config.color(y);
                    let c = self.config.color(z);
                    let winner = if a == b || a == c {
                        a
                    } else if b == c {
                        b
                    } else {
                        a
                    };
                    self.config.set_color(u, winner);
                }
            }
        }
    }

    /// Runs until unanimity, every node frozen, or `max_steps`.
    ///
    /// # Errors
    ///
    /// * [`ConvergenceError::BudgetExhausted`] after `max_steps`
    ///   activations without unanimity;
    /// * [`ConvergenceError::AllHaltedWithoutConsensus`] if a halt budget is
    ///   set and every node froze first.
    pub fn run_until_consensus(
        &mut self,
        max_steps: u64,
    ) -> Result<AsyncOutcome, ConvergenceError> {
        if let Some(winner) = self.config.unanimous() {
            return Ok(AsyncOutcome {
                winner,
                time: self.now,
                steps: self.steps,
            });
        }
        let n = self.config.n() as u64;
        for _ in 0..max_steps {
            let a = self.tick();
            // A non-unanimous configuration can only become unanimous by
            // the ticked node adopting the winning color, so one histogram
            // lookup on that node's (possibly new) color replaces the O(k)
            // full scan — same outcome, same RNG stream.
            let cu = self.config.color(a.node);
            if self.config.counts().count(cu) == n {
                return Ok(AsyncOutcome {
                    winner: cu,
                    time: self.now,
                    steps: self.steps,
                });
            }
            if self.halted_count == self.config.n() {
                return Err(ConvergenceError::AllHaltedWithoutConsensus);
            }
        }
        Err(ConvergenceError::BudgetExhausted { budget: max_steps })
    }

    /// Whether unanimity (if reached) arrived strictly before the first
    /// node froze — Theorem 1.3's endgame success event. `true` when no
    /// node has frozen.
    pub fn consensus_before_first_halt(&self, consensus_time: SimTime) -> bool {
        match self.first_halt {
            None => true,
            Some(t) => consensus_time < t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Color;
    use rapid_sim::rng::Seed;

    /// Async gossip on `K_n` under the sequential model, built through the
    /// façade (the same streams the removed `clique_gossip` shim derived).
    fn clique_gossip(
        counts: &[u64],
        rule: GossipRule,
        seed: Seed,
    ) -> AsyncGossipSim<crate::facade::BoxedTopology, crate::facade::BoxedSource> {
        let n: u64 = counts.iter().sum();
        crate::facade::Sim::builder()
            .topology(rapid_graph::complete::Complete::new(n as usize))
            .counts(counts)
            .gossip(rule)
            .seed(seed)
            .build()
            .expect("valid configuration")
            .into_gossip()
            .expect("gossip rule was selected")
    }

    #[test]
    fn two_choices_converges_to_strong_plurality() {
        let mut wins = 0;
        for seed in 0..10 {
            let mut sim = clique_gossip(&[400, 100], GossipRule::TwoChoices, Seed::new(seed));
            let out = sim.run_until_consensus(20_000_000).expect("converges");
            if out.winner == Color::new(0) {
                wins += 1;
            }
        }
        assert!(wins >= 9, "plurality won only {wins}/10");
    }

    #[test]
    fn endgame_finishes_before_first_halt_from_dominant_start() {
        // c1 = 0.95n: the paper's endgame precondition.
        let n = 2000u64;
        let c1 = (0.95 * n as f64) as u64;
        let mut sim =
            clique_gossip(&[c1, n - c1], GossipRule::TwoChoices, Seed::new(3)).with_halt_after(100); // ≈ 8 ln n ticks each
        let out = sim.run_until_consensus(50_000_000).expect("converges");
        assert_eq!(out.winner, Color::new(0));
        assert!(
            sim.consensus_before_first_halt(out.time),
            "consensus at {} vs first halt {:?}",
            out.time,
            sim.first_halt()
        );
    }

    #[test]
    fn all_halted_error_when_budget_is_tiny() {
        let mut sim = clique_gossip(&[50, 50], GossipRule::Voter, Seed::new(4)).with_halt_after(1);
        let err = sim
            .run_until_consensus(10_000_000)
            .expect_err("cannot finish");
        assert_eq!(err, ConvergenceError::AllHaltedWithoutConsensus);
        assert!(sim.first_halt().is_some());
    }

    #[test]
    fn voter_changes_color_every_tick() {
        let mut sim = clique_gossip(&[5, 5], GossipRule::Voter, Seed::new(5));
        let before = sim.config().counts().n();
        for _ in 0..100 {
            sim.tick();
        }
        assert_eq!(sim.config().counts().n(), before);
        assert_eq!(sim.steps(), 100);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn three_majority_converges() {
        let mut sim = clique_gossip(&[300, 100, 100], GossipRule::ThreeMajority, Seed::new(6));
        let out = sim.run_until_consensus(20_000_000).expect("converges");
        assert_eq!(out.winner, Color::new(0));
    }

    #[test]
    fn already_unanimous_returns_immediately() {
        let mut sim = clique_gossip(&[100, 0], GossipRule::TwoChoices, Seed::new(7));
        let out = sim.run_until_consensus(10).expect("already done");
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut sim = clique_gossip(&[50, 50], GossipRule::TwoChoices, Seed::new(8));
        let err = sim.run_until_consensus(10).expect_err("too few steps");
        assert_eq!(err, ConvergenceError::BudgetExhausted { budget: 10 });
    }

    #[test]
    fn rule_names_are_stable() {
        assert_eq!(GossipRule::Voter.to_string(), "async-voter");
        assert_eq!(GossipRule::TwoChoices.name(), "async-two-choices");
        assert_eq!(GossipRule::ThreeMajority.name(), "async-3-majority");
    }
}
