//! The asynchronous protocols (Section 3 of the paper).
//!
//! * [`AsyncGossipSim`] — plain asynchronous gossip under a [`GossipRule`]
//!   (Voter, Two-Choices, 3-Majority): each Poisson tick, the activated
//!   node samples and updates immediately. Async Two-Choices is both the
//!   natural baseline and the paper's *endgame* (part 2).
//! * [`RapidSim`] — the paper's full protocol: working-time-scheduled
//!   phases of Two-Choices, Bit-Propagation and Sync-Gadget sub-phases
//!   (part 1), followed by the Two-Choices endgame (part 2). Theorem 1.3:
//!   with multiplicative bias `c_1 ≥ (1+ε)c_i` and
//!   `k = O(exp(log n/log log n))`, consensus on the plurality is reached
//!   in `Θ(log n)` time w.h.p.
//!
//! * [`ShardedSim`] — the same two protocols advanced in deterministic
//!   τ-sized epochs across worker threads, with struct-of-arrays node
//!   state and per-(epoch, node) RNG streams: the scaling engine for
//!   `n = 10⁷` (see [`sharded`]).
//!
//! The working-time machinery lives in [`params`] (sub-phase lengths,
//! theory-guided defaults) and [`schedule`] (pure working-time → action
//! decoding, exhaustively unit-tested). The Sync Gadget — sample real
//! times, then *jump* the working time to their median — is implemented in
//! [`node`] and exercised by [`RapidSim`].

pub mod gossip;
pub mod node;
pub mod params;
pub mod rapid;
pub mod schedule;
pub mod sharded;

pub use gossip::{AsyncGossipSim, GossipRule};
pub use node::NodeState;
pub use params::Params;
pub use rapid::{RapidOutcome, RapidSim};
pub use schedule::{Action, Schedule};
pub use sharded::{ShardedProtocol, ShardedSim};
