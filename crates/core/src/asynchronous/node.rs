//! Per-node protocol state, including the Sync Gadget's bookkeeping.

use crate::opinion::Color;

/// Sentinel for "never jumped".
const NO_PHASE: u32 = u32::MAX;

/// The full asynchronous-protocol state of one node (besides its color,
/// which lives in the shared [`crate::opinion::Configuration`]).
///
/// Two clocks, as in the paper:
///
/// * **working time** — drives the schedule; incremented per tick, but can
///   be *jumped* by the Sync Gadget;
/// * **real time** — the total number of ticks performed; never rewritten.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeState {
    /// Working time (schedule position).
    pub working_time: u64,
    /// Real time (total ticks performed).
    pub real_time: u64,
    /// Two-Choices intermediate color, if the last sample pair agreed.
    pub intermediate: Option<Color>,
    /// The extra bit of the memory model.
    pub bit: bool,
    /// Sync Gadget samples: `(their_real_time, my_real_time_at_sampling)`.
    ///
    /// The paper increments every collected sample once per own tick until
    /// the jump; recording the local tick of collection and adding the
    /// elapsed ticks at jump time is arithmetically identical and O(1) per
    /// tick instead of O(samples).
    pub samples: Vec<(u64, u64)>,
    /// Phase in which this node last jumped (guards against double jumps
    /// after a backward jump re-enters the same phase).
    last_jump_phase: u32,
    /// Whether the node has finished part 2 and frozen its color.
    pub halted: bool,
}

impl NodeState {
    /// A fresh node at time zero.
    pub fn new() -> Self {
        NodeState {
            working_time: 0,
            real_time: 0,
            intermediate: None,
            bit: false,
            samples: Vec::new(),
            last_jump_phase: NO_PHASE,
            halted: false,
        }
    }

    /// Whether the node already jumped in `phase`.
    pub fn jumped_in(&self, phase: u32) -> bool {
        self.last_jump_phase == phase
    }

    /// Records that the node jumped in `phase`.
    pub fn mark_jumped(&mut self, phase: u32) {
        self.last_jump_phase = phase;
    }

    /// The gadget's median estimate of the population's real time, as of
    /// this node's current tick: each sample `(T_v, r_u)` is extrapolated
    /// to `T_v + (real_time − r_u)` (the sampled clock kept ticking at unit
    /// rate), then the median is taken.
    ///
    /// Returns `None` if no samples were collected.
    pub fn median_time_estimate(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut ests: Vec<u64> = self
            .samples
            .iter()
            .map(|&(t_v, r_u)| t_v + (self.real_time - r_u))
            .collect();
        ests.sort_unstable();
        Some(ests[ests.len() / 2])
    }

    /// Clears the phase-scoped state (entering a new Two-Choices step).
    pub fn reset_phase_state(&mut self) {
        self.intermediate = None;
        self.bit = false;
        self.samples.clear();
    }
}

impl Default for NodeState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_at_time_zero() {
        let s = NodeState::new();
        assert_eq!(s.working_time, 0);
        assert_eq!(s.real_time, 0);
        assert!(!s.bit && !s.halted);
        assert_eq!(s.intermediate, None);
        assert_eq!(s.median_time_estimate(), None);
        assert_eq!(NodeState::default(), s);
    }

    #[test]
    fn median_extrapolates_elapsed_ticks() {
        let mut s = NodeState::new();
        s.real_time = 10;
        // Sampled T_v = 100 when my clock read 4: estimate 100 + (10-4) = 106.
        s.samples.push((100, 4));
        assert_eq!(s.median_time_estimate(), Some(106));
    }

    #[test]
    fn median_of_odd_sample_count() {
        let mut s = NodeState::new();
        s.real_time = 0;
        for &t in &[30u64, 10, 20] {
            s.samples.push((t, 0));
        }
        assert_eq!(s.median_time_estimate(), Some(20));
    }

    #[test]
    fn jump_guard_tracks_phase() {
        let mut s = NodeState::new();
        assert!(!s.jumped_in(3));
        s.mark_jumped(3);
        assert!(s.jumped_in(3));
        assert!(!s.jumped_in(4));
    }

    #[test]
    fn reset_clears_phase_scoped_state_only() {
        let mut s = NodeState::new();
        s.bit = true;
        s.intermediate = Some(Color::new(1));
        s.samples.push((5, 1));
        s.working_time = 42;
        s.real_time = 40;
        s.reset_phase_state();
        assert!(!s.bit);
        assert_eq!(s.intermediate, None);
        assert!(s.samples.is_empty());
        assert_eq!(s.working_time, 42);
        assert_eq!(s.real_time, 40);
    }
}
