//! Protocol parameters and their theory-guided defaults.
//!
//! The asymptotic recipe of the paper, made concrete:
//!
//! * block length `Δ = Θ(log n / log log n)`;
//! * Two-Choices sub-phase: a landing buffer block (absorbs jump error),
//!   the Two-Choices step, a waiting block, the commit step;
//! * Bit-Propagation sub-phase: `Θ(log k + log log n)` ticks (bits double
//!   roughly once per time unit from an initial `≥ n/k` expected seeds);
//! * Sync-Gadget sub-phase: `⌈(ln ln n)³⌉` sampling ticks (odd), tactical
//!   waiting, then the jump step at the phase's last tick;
//! * `Θ(log log n)` phases: quadratic amplification turns a `(1+ε)` ratio
//!   into `n`-scale dominance after `log₂(ln n / ln(1+ε))` squarings;
//! * endgame: `Θ(log n)` ticks of plain Two-Choices.
//!
//! The hidden constants were chosen empirically (see EXPERIMENTS.md) and
//! are all overridable — the ablation experiment E8 flips
//! [`Params::gadget_enabled`], and the scaling experiments sweep `n` with
//! everything else derived.

/// Concrete parameters for the asynchronous rapid-consensus protocol.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Params {
    /// Block length `Δ` in ticks (working time).
    pub delta: u32,
    /// Blocks in the Two-Choices sub-phase (≥ 4: landing buffer, sample,
    /// wait, commit).
    pub tc_blocks: u32,
    /// Blocks in the Bit-Propagation sub-phase (≥ 1).
    pub bp_blocks: u32,
    /// Blocks in the Sync-Gadget sub-phase (≥ 2: sampling + waiting/jump).
    pub sync_blocks: u32,
    /// Number of part-1 phases.
    pub phases: u32,
    /// Sampling ticks in the Sync Gadget (forced odd; `≤ sync sub-phase`).
    pub sync_samples: u32,
    /// Endgame (part 2) length in ticks per node.
    pub endgame_ticks: u32,
    /// Whether the Sync Gadget actually jumps (false = ablation: the
    /// sub-phase becomes pure waiting).
    pub gadget_enabled: bool,
}

impl Params {
    /// Theory-guided defaults for an `n`-node network with `k` opinions,
    /// assuming multiplicative bias at least `1 + ε` with `ε ≥ 0.1`.
    ///
    /// Use [`Params::for_network_with_eps`] when the guaranteed bias is
    /// smaller or larger.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `k < 2`.
    pub fn for_network(n: usize, k: usize) -> Self {
        Self::for_network_with_eps(n, k, 0.1)
    }

    /// Defaults with an explicit bias floor `ε` (`c_1 ≥ (1+ε)c_i`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`, `k < 2`, or `eps` is not in `(0, 10]`.
    pub fn for_network_with_eps(n: usize, k: usize, eps: f64) -> Self {
        assert!(n >= 4, "network needs at least four nodes, got {n}");
        assert!(k >= 2, "need at least two opinions, got {k}");
        assert!(
            eps > 0.0 && eps <= 10.0,
            "bias floor must be in (0, 10], got {eps}"
        );
        let ln_n = (n as f64).ln();
        let lnln_n = ln_n.ln().max(1.0);

        // Δ = Θ(log n / log log n). The constant matters: with B blocks per
        // phase, per-phase Poisson drift is √(BΔ), so the fraction of nodes
        // drifting beyond the sample→commit separation 2Δ is
        // ≈ 2Φ(−2√(Δ/B)) — constant 3 keeps this in the low percent range
        // at laptop scales while preserving the Θ(log n/log log n) shape.
        let delta = (3.0 * ln_n / lnln_n).ceil().max(8.0) as u32;

        // Bit-Propagation needs ≈ log₂(n / E[#seeds]) ≤ log₂ k doubling
        // times plus concentration slack.
        let bp_ticks = 2.0 * ((k as f64).log2() + ln_n.log2().max(1.0)) + 6.0;
        let bp_blocks = ((bp_ticks / delta as f64).ceil() as u32).max(2);

        // Sync Gadget: (ln ln n)³ samples, odd.
        let mut sync_samples = (lnln_n.powi(3)).ceil() as u32;
        sync_samples = sync_samples.clamp(5, 4 * delta) | 1;
        let sync_blocks = (((sync_samples + delta) as f64 / delta as f64).ceil() as u32).max(2);

        // Quadratic amplification: (1+ε)^(2^p) ≥ n after
        // p ≥ log₂(ln n / ln(1+ε)); +2 phases of slack.
        let squarings = (ln_n / (1.0 + eps).ln()).log2().ceil().max(1.0) as u32;
        let phases = squarings + 2;

        // The endgame must outlast (a) the Two-Choices cleanup of the
        // remaining minority (≈ 2 ln n ticks) plus (b) the head start of the
        // fastest node — post-final-jump Poisson drift plus the jump's
        // median-estimate error, both Θ(√(log n)·polyloglog) with constants
        // that reach ~0.5·endgame at laptop scales. 16·ln n dominates both.
        let endgame_ticks = (16.0 * ln_n).ceil() as u32;

        Params {
            delta,
            tc_blocks: 4,
            bp_blocks,
            sync_blocks,
            phases,
            sync_samples,
            endgame_ticks,
            gadget_enabled: true,
        }
    }

    /// Disables the Sync Gadget (ablation switch for experiment E8).
    pub fn without_gadget(mut self) -> Self {
        self.gadget_enabled = false;
        self
    }

    /// Length of the Two-Choices sub-phase in ticks.
    pub fn tc_len(&self) -> u64 {
        self.tc_blocks as u64 * self.delta as u64
    }

    /// Length of the Bit-Propagation sub-phase in ticks.
    pub fn bp_len(&self) -> u64 {
        self.bp_blocks as u64 * self.delta as u64
    }

    /// Length of the Sync-Gadget sub-phase in ticks.
    pub fn sync_len(&self) -> u64 {
        self.sync_blocks as u64 * self.delta as u64
    }

    /// Length of one part-1 phase in ticks.
    pub fn phase_len(&self) -> u64 {
        self.tc_len() + self.bp_len() + self.sync_len()
    }

    /// Length of part 1 in ticks.
    pub fn part1_len(&self) -> u64 {
        self.phases as u64 * self.phase_len()
    }

    /// Total protocol length in ticks (part 1 + endgame).
    pub fn total_len(&self) -> u64 {
        self.part1_len() + self.endgame_ticks as u64
    }

    /// Checks internal consistency, reporting the first violated
    /// structural invariant (zero-length blocks, too few blocks for the
    /// schedule's fixed slots, sampling longer than its sub-phase).
    ///
    /// # Errors
    ///
    /// Returns a static description of the violated invariant.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.delta < 1 {
            return Err("block length must be positive");
        }
        if self.tc_blocks < 4 {
            return Err("Two-Choices sub-phase needs ≥ 4 blocks (buffer, sample, wait, commit)");
        }
        if self.bp_blocks < 1 {
            return Err("Bit-Propagation needs ≥ 1 block");
        }
        if self.sync_blocks < 2 {
            return Err("Sync sub-phase needs ≥ 2 blocks");
        }
        if self.phases < 1 {
            return Err("need at least one phase");
        }
        if (self.sync_samples as u64) >= self.sync_len() {
            return Err("sampling must fit within the sync sub-phase");
        }
        if self.sync_samples.is_multiple_of(2) {
            return Err("sample count must be odd");
        }
        if self.endgame_ticks < 1 {
            return Err("endgame must be non-empty");
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if [`Params::check`] fails.
    pub fn validate(&self) {
        if let Err(why) = self.check() {
            // lint: allow(panic-hygiene): documented panic — validate() exists to turn check() failures into a panic
            panic!("invalid Params: {why}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_across_scales() {
        for &n in &[16usize, 256, 1 << 10, 1 << 14, 1 << 20, 1 << 26] {
            for &k in &[2usize, 8, 64, 1024] {
                let p = Params::for_network(n, k);
                p.validate();
            }
        }
    }

    #[test]
    fn lengths_compose() {
        let p = Params::for_network(1 << 14, 8);
        assert_eq!(p.phase_len(), p.tc_len() + p.bp_len() + p.sync_len());
        assert_eq!(p.part1_len(), p.phases as u64 * p.phase_len());
        assert_eq!(p.total_len(), p.part1_len() + p.endgame_ticks as u64);
    }

    #[test]
    fn delta_grows_sublogarithmically() {
        let small = Params::for_network(1 << 10, 4);
        let large = Params::for_network(1 << 24, 4);
        assert!(large.delta > small.delta);
        // Δ/ln n shrinks: Δ = Θ(log n / log log n).
        let r_small = small.delta as f64 / (1024f64).ln();
        let r_large = large.delta as f64 / ((1 << 24) as f64).ln();
        assert!(r_large < r_small);
    }

    #[test]
    fn phases_scale_with_loglog_and_eps() {
        let easy = Params::for_network_with_eps(1 << 14, 8, 1.0);
        let hard = Params::for_network_with_eps(1 << 14, 8, 0.05);
        assert!(hard.phases > easy.phases);
        let small = Params::for_network(1 << 8, 4);
        let large = Params::for_network(1 << 24, 4);
        assert!(large.phases >= small.phases);
        // Θ(log log n): even a huge n needs few phases.
        assert!(large.phases < 16);
    }

    #[test]
    fn bp_length_scales_with_k() {
        let narrow = Params::for_network(1 << 14, 2);
        let wide = Params::for_network(1 << 14, 512);
        assert!(wide.bp_len() > narrow.bp_len());
    }

    #[test]
    fn sample_count_is_odd_and_fits() {
        for &n in &[16usize, 1 << 12, 1 << 22] {
            let p = Params::for_network(n, 4);
            assert_eq!(p.sync_samples % 2, 1);
            assert!((p.sync_samples as u64) < p.sync_len());
        }
    }

    #[test]
    fn without_gadget_flips_flag_only() {
        let p = Params::for_network(1 << 10, 4);
        let q = p.without_gadget();
        assert!(!q.gadget_enabled);
        assert_eq!(p.delta, q.delta);
        assert_eq!(p.phases, q.phases);
    }

    #[test]
    #[should_panic(expected = "at least two opinions")]
    fn k_one_rejected() {
        let _ = Params::for_network(100, 1);
    }

    #[test]
    #[should_panic(expected = "sampling must fit")]
    fn invalid_params_fail_validation() {
        let mut p = Params::for_network(1 << 10, 4);
        p.sync_samples = (p.sync_len() + 1) as u32;
        p.validate();
    }
}
