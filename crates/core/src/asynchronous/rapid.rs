//! The rapid asynchronous plurality-consensus protocol (Theorem 1.3).
//!
//! Part 1 runs [`Params::phases`] phases, each of three sub-phases decoded
//! from the node's *working time* by [`Schedule`]:
//!
//! 1. **Two-Choices** — sample two, remember the agreed color as the
//!    *intermediate* color; commit it (and set the bit) one block later.
//!    The separation between sample and commit is what makes the step
//!    effectively simultaneous for all well-synchronized nodes.
//! 2. **Bit-Propagation** — nodes without the bit pull once per tick;
//!    hitting a bit-set node copies its color and bit. The bit-set
//!    population's composition evolves as a Pólya urn (see `rapid-urn`),
//!    preserving the post-Two-Choices quadratic amplification while
//!    spreading it to everyone.
//! 3. **Sync Gadget** — sample real times, wait tactically, then *jump*
//!    the working time to the median estimate, resetting the accumulated
//!    Poisson drift so that all but `o(n)` nodes stay within `Δ` of each
//!    other (weak synchronicity).
//!
//! Part 2 (**endgame**) is plain asynchronous Two-Choices for
//! `Θ(log n)` ticks, after which the node halts. Theorem 1.3's success
//! event is unanimity on the plurality *before the first halt*.

use rapid_graph::topology::Topology;
use rapid_sim::fault::{FaultPlan, FaultState};
use rapid_sim::node::NodeId;
use rapid_sim::rng::{Seed, SimRng};
use rapid_sim::scheduler::{Activation, ActivationSource};
use rapid_sim::time::SimTime;

use crate::asynchronous::node::NodeState;
use crate::asynchronous::params::Params;
use crate::asynchronous::schedule::{Action, Schedule};
use crate::convergence::ConvergenceError;
use crate::opinion::{Color, Configuration};

/// Outcome of a full rapid-consensus run.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RapidOutcome {
    /// The color every node ended up with.
    pub winner: Color,
    /// Parallel time at unanimity.
    pub time: SimTime,
    /// Activations at unanimity.
    pub steps: u64,
    /// When the first node halted, if any had by consensus time.
    pub first_halt: Option<SimTime>,
    /// Theorem 1.3's success event: unanimity strictly before the first
    /// halt (vacuously true if no node had halted).
    pub before_first_halt: bool,
}

/// Distribution snapshot of the nodes' working times (weak-synchronicity
/// instrumentation for experiment E8).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WorkingTimeStats {
    /// Minimum working time.
    pub min: u64,
    /// Median working time.
    pub median: u64,
    /// Maximum working time.
    pub max: u64,
    /// Fraction of nodes farther than `tolerance` from the median.
    pub poorly_synced: f64,
    /// The tolerance used (ticks).
    pub tolerance: u64,
}

impl WorkingTimeStats {
    /// Computes the spread statistics of a set of working times (sorts
    /// `times` in place).
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty.
    pub fn from_times(times: &mut [u64], tolerance: u64) -> Self {
        assert!(!times.is_empty(), "need at least one working time");
        times.sort_unstable();
        let n = times.len();
        let median = times[n / 2];
        let poorly = times
            .iter()
            .filter(|&&w| w.abs_diff(median) > tolerance)
            .count();
        WorkingTimeStats {
            min: times[0],
            median,
            max: times[n - 1],
            poorly_synced: poorly as f64 / n as f64,
            tolerance,
        }
    }
}

/// The full asynchronous protocol simulation.
///
/// Generic over the topology `G` (the paper: `K_n`) and activation source
/// `S` (sequential model, event queue, jittered for response delays).
///
/// # Example
///
/// ```
/// use rapid_core::prelude::*;
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
///
/// // 512 nodes, 4 opinions, plurality 1.5x ahead of the rest.
/// let out = Sim::builder()
///     .topology(Complete::new(512))
///     .distribution(InitialDistribution::multiplicative_bias(4, 0.5))
///     .rapid(Params::for_network(512, 4))
///     .seed(Seed::new(42))
///     .build()
///     .expect("valid experiment")
///     .run_to_consensus()
///     .expect("Theorem 1.3 regime");
/// assert_eq!(out.winner, Some(Color::new(0)));
/// assert_eq!(out.before_first_halt, Some(true));
/// ```
#[derive(Clone, Debug)]
pub struct RapidSim<G, S> {
    topology: G,
    source: S,
    rng: SimRng,
    schedule: Schedule,
    config: Configuration,
    nodes: Vec<NodeState>,
    steps: u64,
    now: SimTime,
    halted_count: usize,
    first_halt: Option<SimTime>,
    jumps: u64,
    max_jump_displacement: u64,
    faults: Option<FaultState>,
    adversary_struck: bool,
}

impl<G: Topology, S: ActivationSource> RapidSim<G, S> {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if topology, configuration and source disagree on `n`, or if
    /// the parameters fail [`Params::validate`].
    pub fn new(topology: G, config: Configuration, params: Params, source: S, seed: Seed) -> Self {
        assert_eq!(
            topology.n(),
            config.n(),
            "topology/configuration n mismatch"
        );
        assert_eq!(source.n(), config.n(), "source/configuration n mismatch");
        let n = config.n();
        RapidSim {
            topology,
            source,
            rng: SimRng::from_seed_value(seed),
            schedule: Schedule::new(params),
            config,
            nodes: (0..n).map(|_| NodeState::new()).collect(),
            steps: 0,
            now: SimTime::ZERO,
            halted_count: 0,
            first_halt: None,
            jumps: 0,
            max_jump_displacement: 0,
            faults: None,
            adversary_struck: false,
        }
    }

    /// Installs a fault layer driven by `plan` (loss, churn, adversary;
    /// latency is realised one level down, by the activation source). A
    /// [neutral](FaultPlan::is_neutral) plan leaves the run bit-identical
    /// to one without a fault layer.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::check`] for this population.
    pub fn with_faults(mut self, plan: &FaultPlan, seed: Seed) -> Self {
        self.faults = Some(FaultState::new(plan, self.config.n(), seed));
        self
    }

    /// The fault layer, if one is installed.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Whether the latest [`tick`](Self::tick) applied at least one
    /// adversary corruption. Corruptions change colors outside any
    /// protocol action, so unanimity fast paths gated on
    /// [`Action::changes_color`] must also check after a strike.
    pub fn adversary_struck(&self) -> bool {
        self.adversary_struck
    }

    /// The current configuration.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Simulation time of the latest activation.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total activations executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// When the first node halted, if any has.
    pub fn first_halt(&self) -> Option<SimTime> {
        self.first_halt
    }

    /// How many nodes have halted.
    pub fn halted_count(&self) -> usize {
        self.halted_count
    }

    /// Total Sync-Gadget jumps executed so far.
    pub fn jump_count(&self) -> u64 {
        self.jumps
    }

    /// Largest |working-time displacement| any jump has caused.
    pub fn max_jump_displacement(&self) -> u64 {
        self.max_jump_displacement
    }

    /// Per-node working times (instrumentation).
    pub fn working_times(&self) -> Vec<u64> {
        self.nodes.iter().map(|s| s.working_time).collect()
    }

    /// Per-node real times (total ticks performed).
    pub fn real_times(&self) -> Vec<u64> {
        self.nodes.iter().map(|s| s.real_time).collect()
    }

    /// Working-time spread statistics with the given tolerance (typically
    /// `Δ`): the weak-synchronicity measurement of experiment E8.
    pub fn working_time_stats(&self, tolerance: u64) -> WorkingTimeStats {
        let mut wts = self.working_times();
        WorkingTimeStats::from_times(&mut wts, tolerance)
    }

    /// A conservative activation budget: three times the protocol length
    /// for every node.
    pub fn default_step_budget(&self) -> u64 {
        3 * self.config.n() as u64 * self.schedule.params().total_len()
    }

    /// The median working time across all nodes (instrumentation: where
    /// the bulk of the network currently is in the schedule).
    pub fn median_working_time(&self) -> u64 {
        let mut wts = self.working_times();
        wts.sort_unstable();
        wts[wts.len() / 2]
    }

    /// Color histogram over the **bit-set** nodes — the Pólya-urn
    /// population of the Bit-Propagation analysis (experiment E10).
    pub fn bit_composition(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.config.k()];
        for (i, state) in self.nodes.iter().enumerate() {
            if state.bit {
                counts[self.config.colors()[i].index()] += 1;
            }
        }
        counts
    }

    /// Pulls one neighbor: the sample always comes from the main RNG
    /// stream (so fault-free runs are bit-identical to the pre-fault
    /// implementation), then the fault layer may void the response — the
    /// contacted node is down, or the message is lost.
    fn pull(&mut self, u: NodeId) -> Option<NodeId> {
        let v = self.topology.sample_neighbor(u, &mut self.rng);
        if let Some(f) = self.faults.as_mut() {
            if f.is_down(v) || f.message_lost() {
                return None;
            }
        }
        Some(v)
    }

    /// Executes one activation; returns it with the action performed.
    ///
    /// With a fault layer installed, a crashed node's tick is consumed as
    /// [`Action::Wait`], and any step whose pulled responses are voided
    /// (loss, crashed neighbor) aborts: all samples are still drawn from
    /// the main stream, but the node's state does not change.
    pub fn tick(&mut self) -> (Activation, Action) {
        let a = self.source.next_activation();
        self.now = a.time;
        self.steps += 1;
        let u = a.node;
        let i = u.index();

        if self.faults.is_some() {
            let strikes = crate::faults::pre_tick(&mut self.faults, &mut self.config, a.time);
            self.adversary_struck = strikes > 0;
            if self.faults.as_ref().is_some_and(|f| f.is_down(u)) {
                // Crashed: the clock tick is consumed, the state (working
                // time included) is frozen until the node rejoins.
                return (a, Action::Wait);
            }
        }
        if self.nodes[i].halted {
            self.nodes[i].real_time += 1;
            return (a, Action::Halt);
        }

        let action = self.schedule.action_at(self.nodes[i].working_time);
        let mut jumped = false;
        match action {
            Action::Wait => {}
            Action::TwoChoicesSample => {
                self.nodes[i].reset_phase_state();
                let v = self.pull(u);
                let w = self.pull(u);
                if let (Some(v), Some(w)) = (v, w) {
                    let cv = self.config.color(v);
                    if cv == self.config.color(w) {
                        self.nodes[i].intermediate = Some(cv);
                    }
                }
            }
            Action::Commit => {
                if let Some(c) = self.nodes[i].intermediate.take() {
                    self.config.set_color(u, c);
                    self.nodes[i].bit = true;
                } else {
                    self.nodes[i].bit = false;
                }
            }
            Action::BitPropagation => {
                if !self.nodes[i].bit {
                    if let Some(v) = self.pull(u) {
                        if self.nodes[v.index()].bit {
                            let c = self.config.color(v);
                            self.config.set_color(u, c);
                            self.nodes[i].bit = true;
                        }
                    }
                }
            }
            Action::SyncSample => {
                if let Some(v) = self.pull(u) {
                    let t_v = self.nodes[v.index()].real_time;
                    let r_u = self.nodes[i].real_time;
                    self.nodes[i].samples.push((t_v, r_u));
                }
            }
            Action::Jump => {
                let phase = self.schedule.phase_of(self.nodes[i].working_time);
                if !self.nodes[i].jumped_in(phase) {
                    if let Some(target) = self.nodes[i].median_time_estimate() {
                        let from = self.nodes[i].working_time;
                        self.nodes[i].working_time = target;
                        self.nodes[i].mark_jumped(phase);
                        self.jumps += 1;
                        self.max_jump_displacement =
                            self.max_jump_displacement.max(from.abs_diff(target));
                        jumped = true;
                    }
                }
            }
            Action::Endgame => {
                let v = self.pull(u);
                let w = self.pull(u);
                if let (Some(v), Some(w)) = (v, w) {
                    let cv = self.config.color(v);
                    if cv == self.config.color(w) {
                        self.config.set_color(u, cv);
                    }
                }
            }
            Action::Halt => {
                self.nodes[i].halted = true;
                self.halted_count += 1;
                if self.first_halt.is_none() {
                    self.first_halt = Some(a.time);
                }
            }
        }

        if !jumped {
            self.nodes[i].working_time += 1;
        }
        self.nodes[i].real_time += 1;
        (a, action)
    }

    /// Runs until unanimity, all nodes halted, or `max_steps`.
    ///
    /// # Errors
    ///
    /// * [`ConvergenceError::BudgetExhausted`] after `max_steps`
    ///   activations without unanimity;
    /// * [`ConvergenceError::AllHaltedWithoutConsensus`] if every node
    ///   froze first.
    pub fn run_until_consensus(
        &mut self,
        max_steps: u64,
    ) -> Result<RapidOutcome, ConvergenceError> {
        let n = self.config.n() as u64;
        if let Some(winner) = self.config.unanimous() {
            return Ok(self.outcome(winner));
        }
        for _ in 0..max_steps {
            let (a, action) = self.tick();
            // Only color-changing actions — or an adversary strike, which
            // recolors outside any action — can create unanimity; check
            // the ticked node's color in O(1) (under unanimity every
            // node's color count is n, whoever changed).
            if action.changes_color() || self.adversary_struck {
                let cu = self.config.color(a.node);
                if self.config.counts().count(cu) == n {
                    return Ok(self.outcome(cu));
                }
            }
            if self.halted_count == self.config.n() {
                return Err(ConvergenceError::AllHaltedWithoutConsensus);
            }
        }
        Err(ConvergenceError::BudgetExhausted { budget: max_steps })
    }

    fn outcome(&self, winner: Color) -> RapidOutcome {
        RapidOutcome {
            winner,
            time: self.now,
            steps: self.steps,
            first_halt: self.first_halt,
            before_first_halt: match self.first_halt {
                None => true,
                Some(t) => self.now < t,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's setting — `K_n` under the sequential model — built
    /// through the façade (the same streams the removed `clique_rapid`
    /// shim derived).
    fn clique_rapid(
        counts: &[u64],
        params: Params,
        seed: Seed,
    ) -> RapidSim<crate::facade::BoxedTopology, crate::facade::BoxedSource> {
        let n: u64 = counts.iter().sum();
        crate::facade::Sim::builder()
            .topology(rapid_graph::complete::Complete::new(n as usize))
            .counts(counts)
            .rapid(params)
            .seed(seed)
            .build()
            .expect("valid configuration")
            .into_rapid()
            .expect("rapid protocol was selected")
    }

    fn biased_counts(n: u64, k: usize, eps: f64) -> Vec<u64> {
        // c_1 = (1+eps) * c, others equal: c*(k-1) + (1+eps)c = n.
        let c = (n as f64 / (k as f64 + eps)).floor() as u64;
        let mut counts = vec![c; k];
        counts[0] = n - c * (k as u64 - 1);
        counts
    }

    #[test]
    fn converges_to_plurality_before_first_halt() {
        let counts = biased_counts(1024, 4, 0.5);
        let params = Params::for_network(1024, 4);
        let mut sim = clique_rapid(&counts, params, Seed::new(1));
        let budget = sim.default_step_budget();
        let out = sim.run_until_consensus(budget).expect("converges");
        assert_eq!(out.winner, Color::new(0));
        assert!(out.before_first_halt, "must finish before any node halts");
    }

    #[test]
    fn multiple_seeds_all_pick_plurality() {
        let counts = biased_counts(512, 4, 0.6);
        let params = Params::for_network(512, 4);
        let mut wins = 0;
        for seed in 0..8 {
            let mut sim = clique_rapid(&counts, params, Seed::new(seed));
            let budget = sim.default_step_budget();
            if let Ok(out) = sim.run_until_consensus(budget) {
                if out.winner == Color::new(0) {
                    wins += 1;
                }
            }
        }
        assert!(wins >= 7, "plurality won only {wins}/8 runs");
    }

    #[test]
    fn sync_gadget_jumps_happen_and_are_bounded() {
        let counts = biased_counts(512, 2, 0.4);
        let params = Params::for_network(512, 2);
        let mut sim = clique_rapid(&counts, params, Seed::new(2));
        // Run roughly two phases' worth of activations.
        let two_phases = 2 * 512 * params.phase_len();
        for _ in 0..two_phases {
            sim.tick();
            if sim.config().unanimous().is_some() {
                break;
            }
        }
        assert!(sim.jump_count() > 0, "gadget should fire");
        // Jumps correct Poisson drift, which is ≪ a phase length here.
        assert!(
            sim.max_jump_displacement() < params.phase_len(),
            "displacement {} out of range",
            sim.max_jump_displacement()
        );
    }

    #[test]
    fn working_times_stay_weakly_synchronized() {
        let counts = biased_counts(1024, 2, 0.4);
        let params = Params::for_network(1024, 2);
        let mut sim = clique_rapid(&counts, params, Seed::new(3));
        let one_phase = 1024 * params.phase_len();
        let mut worst = 0.0f64;
        for _ in 0..4 {
            for _ in 0..one_phase {
                sim.tick();
            }
            // Tolerance 2Δ: the sample→commit separation, i.e. the drift a
            // node can absorb while still executing the critical steps in
            // lockstep with the bulk.
            let stats = sim.working_time_stats(2 * params.delta as u64);
            worst = worst.max(stats.poorly_synced);
        }
        assert!(
            worst < 0.15,
            "poorly synced fraction {worst} too large with the gadget on"
        );
    }

    #[test]
    fn without_gadget_no_jumps_occur() {
        let counts = biased_counts(256, 2, 0.4);
        let params = Params::for_network(256, 2).without_gadget();
        let mut sim = clique_rapid(&counts, params, Seed::new(4));
        for _ in 0..256 * params.phase_len() {
            sim.tick();
        }
        assert_eq!(sim.jump_count(), 0);
    }

    #[test]
    fn endgame_alone_finishes_from_dominant_state() {
        // Start unanimous except for a few nodes: part 1 keeps it, part 2
        // must finish it.
        let params = Params::for_network(256, 2);
        let counts = [250u64, 6];
        let mut sim = clique_rapid(&counts, params, Seed::new(5));
        let out = sim
            .run_until_consensus(sim.default_step_budget())
            .expect("converges");
        assert_eq!(out.winner, Color::new(0));
    }

    #[test]
    fn tick_reports_actions_and_advances_clocks() {
        let params = Params::for_network(64, 2);
        let mut sim = clique_rapid(&[40, 24], params, Seed::new(6));
        let mut seen_wait = false;
        for _ in 0..64 * 3 {
            let (_, action) = sim.tick();
            if action == Action::Wait {
                seen_wait = true;
            }
        }
        assert!(seen_wait, "landing buffer produces waits");
        assert_eq!(sim.steps(), 64 * 3);
        let rt = sim.real_times();
        assert_eq!(rt.iter().sum::<u64>(), 64 * 3);
    }

    #[test]
    fn unanimous_start_returns_instantly() {
        let params = Params::for_network(64, 2);
        let mut sim = clique_rapid(&[64, 0], params, Seed::new(7));
        let out = sim.run_until_consensus(1).expect("already unanimous");
        assert_eq!(out.steps, 0);
        assert_eq!(out.winner, Color::new(0));
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let params = Params::for_network(64, 2);
        let mut sim = clique_rapid(&[40, 24], params, Seed::new(8));
        let err = sim.run_until_consensus(5).expect_err("budget too small");
        assert_eq!(err, ConvergenceError::BudgetExhausted { budget: 5 });
    }
}
