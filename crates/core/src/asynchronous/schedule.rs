//! Pure decoding of working time into protocol actions.
//!
//! A node's behaviour at a tick is a **pure function of its working time**
//! `w` — that is what makes "jumping" the working time (the Sync Gadget)
//! meaningful. This module implements that function as data:
//!
//! ```text
//! phase p (length L):    [ Two-Choices ][ Bit-Propagation ][ Sync Gadget ]
//! Two-Choices sub-phase: [buffer Δ][sample @first tick|wait][wait Δ][commit @first tick|wait]
//! Bit-Propagation:       every tick: sample; adopt color+bit from bit-set nodes
//! Sync Gadget:           [s sampling ticks][wait …][jump @last tick of phase]
//! part 2 (endgame):      endgame_ticks of Two-Choices steps, then Halt
//! ```
//!
//! The landing *buffer* block at the start of each phase absorbs the jump's
//! sampling error so that a jumping node almost always lands in a
//! do-nothing region (the paper's "proper waiting time").

use crate::asynchronous::params::Params;

/// What a node does at a given working-time slot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Sample two nodes; set the intermediate color iff they agree. Also
    /// clears the bit, the intermediate color and the gadget samples (phase
    /// entry point).
    TwoChoicesSample,
    /// Do nothing (tactical waiting).
    Wait,
    /// Adopt the intermediate color if set; set the bit iff it was set.
    Commit,
    /// If the bit is unset: sample one node; adopt color+bit on success.
    BitPropagation,
    /// Sample one node and record its real time (Sync Gadget).
    SyncSample,
    /// Set working time to the median of the collected real-time estimates.
    Jump,
    /// Part 2: one asynchronous Two-Choices step.
    Endgame,
    /// The protocol is over; freeze the current color.
    Halt,
}

impl Action {
    /// Whether executing this action can change the acting node's color —
    /// the actions after which a unanimity check is worthwhile. Keep in
    /// sync with the `tick` implementation in `rapid.rs`.
    pub fn changes_color(self) -> bool {
        matches!(
            self,
            Action::Commit | Action::BitPropagation | Action::Endgame
        )
    }
}

/// A fully resolved working-time schedule.
///
/// # Example
///
/// ```
/// use rapid_core::asynchronous::{Params, Schedule, Action};
/// let params = Params::for_network(1 << 12, 4);
/// let schedule = Schedule::new(params);
/// assert_eq!(schedule.action_at(0), Action::Wait);          // landing buffer
/// assert_eq!(schedule.action_at(params.delta as u64), Action::TwoChoicesSample);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    params: Params,
}

impl Schedule {
    /// Builds a schedule, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if [`Params::validate`] fails.
    pub fn new(params: Params) -> Self {
        params.validate();
        Schedule { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The working-time slot of the Two-Choices sample within a phase.
    pub fn tc_sample_offset(&self) -> u64 {
        self.params.delta as u64
    }

    /// The working-time slot of the commit within a phase.
    pub fn commit_offset(&self) -> u64 {
        (self.params.tc_blocks as u64 - 1) * self.params.delta as u64
    }

    /// The phase index of a part-1 working time.
    ///
    /// # Panics
    ///
    /// Panics if `w` is in part 2.
    pub fn phase_of(&self, w: u64) -> u32 {
        assert!(w < self.params.part1_len(), "working time {w} is in part 2");
        (w / self.params.phase_len()) as u32
    }

    /// Decodes the action at working time `w`.
    pub fn action_at(&self, w: u64) -> Action {
        let p = &self.params;
        let part1 = p.part1_len();
        if w >= part1 {
            return if w - part1 < p.endgame_ticks as u64 {
                Action::Endgame
            } else {
                Action::Halt
            };
        }
        let o = w % p.phase_len();
        let delta = p.delta as u64;
        let tc_len = p.tc_len();
        let bp_end = tc_len + p.bp_len();

        if o < tc_len {
            if o == delta {
                Action::TwoChoicesSample
            } else if o == self.commit_offset() {
                Action::Commit
            } else {
                Action::Wait
            }
        } else if o < bp_end {
            Action::BitPropagation
        } else {
            let so = o - bp_end;
            if !p.gadget_enabled {
                Action::Wait
            } else if so < p.sync_samples as u64 {
                Action::SyncSample
            } else if o == p.phase_len() - 1 {
                Action::Jump
            } else {
                Action::Wait
            }
        }
    }

    /// Counts how many slots of each critical action occur in one phase
    /// (used by tests; `(two_choices, commits, bit_prop, sync_samples,
    /// jumps)`).
    pub fn phase_census(&self) -> (u64, u64, u64, u64, u64) {
        let mut tc = 0;
        let mut commit = 0;
        let mut bp = 0;
        let mut ss = 0;
        let mut jump = 0;
        for w in 0..self.params.phase_len() {
            match self.action_at(w) {
                Action::TwoChoicesSample => tc += 1,
                Action::Commit => commit += 1,
                Action::BitPropagation => bp += 1,
                Action::SyncSample => ss += 1,
                Action::Jump => jump += 1,
                _ => {}
            }
        }
        (tc, commit, bp, ss, jump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(n: usize, k: usize) -> Schedule {
        Schedule::new(Params::for_network(n, k))
    }

    #[test]
    fn each_phase_has_exactly_one_of_each_critical_slot() {
        for &(n, k) in &[(1usize << 10, 2usize), (1 << 14, 16), (1 << 20, 64)] {
            let s = schedule(n, k);
            let (tc, commit, bp, ss, jump) = s.phase_census();
            assert_eq!(tc, 1, "one Two-Choices sample per phase");
            assert_eq!(commit, 1, "one commit per phase");
            assert_eq!(bp, s.params().bp_len(), "every BP tick samples");
            assert_eq!(ss, s.params().sync_samples as u64);
            assert_eq!(jump, 1, "one jump per phase");
        }
    }

    #[test]
    fn sample_strictly_before_commit_with_waiting_between() {
        let s = schedule(1 << 12, 8);
        assert!(s.tc_sample_offset() < s.commit_offset());
        // At least one full block of waiting separates them.
        assert!(s.commit_offset() - s.tc_sample_offset() >= s.params().delta as u64);
    }

    #[test]
    fn phase_starts_with_landing_buffer() {
        let s = schedule(1 << 12, 8);
        for w in 0..s.params().delta as u64 {
            assert_eq!(s.action_at(w), Action::Wait, "slot {w} must be buffer");
        }
    }

    #[test]
    fn jump_is_last_slot_of_every_phase() {
        let s = schedule(1 << 12, 8);
        let l = s.params().phase_len();
        for p in 0..s.params().phases as u64 {
            assert_eq!(s.action_at(p * l + l - 1), Action::Jump);
        }
    }

    #[test]
    fn schedule_repeats_across_phases() {
        let s = schedule(1 << 12, 4);
        let l = s.params().phase_len();
        for w in 0..l {
            assert_eq!(s.action_at(w), s.action_at(w + l), "slot {w}");
            assert_eq!(s.action_at(w), s.action_at(w + 3 * l), "slot {w}");
        }
    }

    #[test]
    fn endgame_then_halt() {
        let s = schedule(1 << 12, 4);
        let part1 = s.params().part1_len();
        assert_eq!(s.action_at(part1), Action::Endgame);
        assert_eq!(
            s.action_at(part1 + s.params().endgame_ticks as u64 - 1),
            Action::Endgame
        );
        assert_eq!(
            s.action_at(part1 + s.params().endgame_ticks as u64),
            Action::Halt
        );
        assert_eq!(s.action_at(u64::MAX / 2), Action::Halt);
    }

    #[test]
    fn gadget_ablation_replaces_sync_with_waiting() {
        let p = Params::for_network(1 << 12, 4).without_gadget();
        let s = Schedule::new(p);
        let (tc, commit, bp, ss, jump) = s.phase_census();
        assert_eq!((tc, commit), (1, 1));
        assert_eq!(bp, s.params().bp_len());
        assert_eq!(ss, 0, "no sync samples when the gadget is disabled");
        assert_eq!(jump, 0, "no jump when the gadget is disabled");
    }

    #[test]
    fn phase_of_decodes_correctly() {
        let s = schedule(1 << 12, 4);
        let l = s.params().phase_len();
        assert_eq!(s.phase_of(0), 0);
        assert_eq!(s.phase_of(l - 1), 0);
        assert_eq!(s.phase_of(l), 1);
        assert_eq!(
            s.phase_of(s.params().part1_len() - 1),
            s.params().phases - 1
        );
    }

    #[test]
    #[should_panic(expected = "part 2")]
    fn phase_of_part2_panics() {
        let s = schedule(1 << 12, 4);
        let _ = s.phase_of(s.params().part1_len());
    }

    #[test]
    fn bit_propagation_occupies_its_whole_subphase() {
        let s = schedule(1 << 12, 4);
        let tc_len = s.params().tc_len();
        let bp_end = tc_len + s.params().bp_len();
        for o in tc_len..bp_end {
            assert_eq!(s.action_at(o), Action::BitPropagation);
        }
    }
}
