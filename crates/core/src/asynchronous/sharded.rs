//! The sharded epoch engine: one micro run split across worker threads.
//!
//! The sequential micro engines ([`AsyncGossipSim`], [`RapidSim`])
//! advance one activation at a time through a single RNG stream, which
//! caps practical sizes near `n = 10⁵–10⁶` on non-complete topologies.
//! This engine scales the *same protocols* to `n = 10⁷` by advancing
//! the global Poisson clock in deterministic τ-sized **epochs**:
//!
//! 1. **Snapshot** — the epoch freezes the externally visible state
//!    (colors; for the full protocol also the memory bit and real
//!    time) at the epoch start.
//! 2. **Shards** — nodes are partitioned into contiguous shards, one
//!    per worker. Each node draws its activation count for the epoch
//!    as `Poisson(rate · τ)` and its protocol randomness from a
//!    dedicated child stream `seed.child(7).child(epoch).child(node)`
//!    (stream 7 of the master seed; see the rapid-lint stream
//!    registry). Every *pull* resolves against the frozen snapshot;
//!    a node's own state evolves live inside its shard. On complete
//!    graphs a gossip pull never touches the O(n) snapshot array: a
//!    uniform neighbor's snapshot color is distributed exactly as the
//!    frozen histogram (minus the puller), so it is drawn from the
//!    k-bucket snapshot counts in O(k) — the memory traffic that
//!    dominates large-n runs disappears on the paper's main topology.
//! 3. **Merge** — workers return per-shard histogram deltas and
//!    counters; the merge commits them in shard order, checks
//!    unanimity, and advances `now` by τ.
//!
//! Because a node's epoch evolution depends only on the snapshot and
//! its private stream, the result is **bit-identical under any shard
//! count** (including 1) and any thread interleaving — sharding is a
//! pure throughput knob. The engine is *not* activation-for-activation
//! identical to the sequential engines: those interleave activations
//! through one global stream, while here neighbor state is at most one
//! epoch (τ time units) stale, exactly like a tau-leap discretisation
//! of the Poisson dynamics. That documented stream split is pinned by
//! `tests/sharding.rs`, and fidelity against the mean-field/macro
//! predictions is revalidated at `n = 10⁶` by experiment e25.
//!
//! Node state is kept as struct-of-arrays (opinion, schedule position,
//! bit, pending samples as parallel vectors) so per-epoch updates
//! stream through memory instead of hopping across an array of structs.
//!
//! [`AsyncGossipSim`]: crate::asynchronous::AsyncGossipSim
//! [`RapidSim`]: crate::asynchronous::RapidSim

use std::sync::Arc;

use rapid_graph::topology::Topology;
use rapid_obs::{Counter, Gauge, Obs, TraceEvent};
use rapid_sim::node::NodeId;
use rapid_sim::poisson::sample_poisson;
use rapid_sim::rng::{Seed, SimRng};
use rapid_sim::time::SimTime;

use crate::asynchronous::gossip::GossipRule;
use crate::asynchronous::schedule::{Action, Schedule};
use crate::opinion::{Color, Configuration};

/// Epoch length τ in simulation-time units.
///
/// One unit is the natural step: each node performs one expected
/// activation per epoch (at unit rate), matching the granularity at
/// which the paper's analysis discretises the Poisson clock.
pub const DEFAULT_TAU: f64 = 1.0;

/// Sentinel for "no intermediate color" in the SoA encoding of
/// [`crate::asynchronous::NodeState::intermediate`].
const NO_COLOR: u32 = u32::MAX;

/// Sentinel for "never jumped" (mirrors the sequential node state).
const NO_PHASE: u32 = u32::MAX;

/// Which protocol the epoch engine advances.
#[derive(Clone, Debug)]
pub enum ShardedProtocol {
    /// Plain asynchronous gossip under one rule.
    Gossip(GossipRule),
    /// The paper's full protocol, driven by a working-time schedule.
    Rapid(Schedule),
}

/// Struct-of-arrays node state for the full protocol (the SoA mirror of
/// [`crate::asynchronous::NodeState`]).
#[derive(Clone, Debug)]
struct RapidSoa {
    schedule: Schedule,
    working_time: Vec<u64>,
    real_time: Vec<u64>,
    /// `NO_COLOR` encodes `None`.
    intermediate: Vec<u32>,
    bit: Vec<bool>,
    /// `NO_PHASE` encodes "never jumped".
    last_jump_phase: Vec<u32>,
    halted: Vec<bool>,
    /// Sync-Gadget samples `(their_real_time, my_real_time)`.
    samples: Vec<Vec<(u64, u64)>>,
}

impl RapidSoa {
    fn new(schedule: Schedule, n: usize) -> Self {
        RapidSoa {
            schedule,
            working_time: vec![0; n],
            real_time: vec![0; n],
            intermediate: vec![NO_COLOR; n],
            bit: vec![false; n],
            last_jump_phase: vec![NO_PHASE; n],
            halted: vec![false; n],
            samples: vec![Vec::new(); n],
        }
    }
}

/// What one shard reports back at the epoch merge.
#[derive(Clone, Debug)]
struct EpochDelta {
    steps: u64,
    count_delta: Vec<i64>,
    newly_halted: usize,
    jumps: u64,
    max_jump_displacement: u64,
    /// Pulls answered by the O(k) clique histogram fast path. Counted
    /// locally and flushed at the merge so instrumentation costs the hot
    /// loop one register increment, never an atomic.
    clique_pulls: u64,
}

impl EpochDelta {
    fn new(k: usize) -> Self {
        EpochDelta {
            steps: 0,
            count_delta: vec![0; k],
            newly_halted: 0,
            jumps: 0,
            max_jump_displacement: 0,
            clique_pulls: 0,
        }
    }

    fn recolor(&mut self, slot: &mut Color, new: Color) {
        if new != *slot {
            self.count_delta[slot.index()] -= 1;
            self.count_delta[new.index()] += 1;
            *slot = new;
        }
    }
}

/// The per-node RNG for one epoch: `epoch_seed` is stream 7 of the
/// master seed split by epoch (`master.child(7).child(epoch)`, derived
/// once per epoch outside the node loop), split here by node — so a
/// node's draws are independent of the shard partition and of every
/// other node.
fn epoch_node_rng(epoch_seed: Seed, node: u64) -> SimRng {
    SimRng::from_seed_value(epoch_seed.child(node))
}

/// Contiguous shard sizes: `n` split into `workers` near-equal chunks
/// (the first `n % workers` shards get one extra node). Shard counts
/// that do not divide `n` are handled without bias — the partition only
/// decides which thread executes a node, never what the node draws.
fn shard_sizes(n: usize, workers: usize) -> Vec<usize> {
    let w = workers.clamp(1, n.max(1));
    let base = n / w;
    let extra = n % w;
    (0..w)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

/// Splits one SoA vector into per-shard mutable slices.
fn split_by_sizes<'a, T>(mut s: &'a mut [T], sizes: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(sizes.len());
    for &len in sizes {
        let (head, rest) = s.split_at_mut(len);
        out.push(head);
        s = rest;
    }
    out
}

/// The median real-time estimate of the Sync Gadget (mirrors
/// [`crate::asynchronous::NodeState::median_time_estimate`]).
fn median_estimate(samples: &[(u64, u64)], real_time: u64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut ests: Vec<u64> = samples
        .iter()
        .map(|&(t_v, r_u)| t_v + (real_time - r_u))
        .collect();
    ests.sort_unstable();
    Some(ests[ests.len() / 2])
}

/// One shard's mutable view of the rapid SoA state.
struct RapidShard<'a> {
    colors: &'a mut [Color],
    working_time: &'a mut [u64],
    real_time: &'a mut [u64],
    intermediate: &'a mut [u32],
    bit: &'a mut [bool],
    last_jump_phase: &'a mut [u32],
    halted: &'a mut [bool],
    samples: &'a mut [Vec<(u64, u64)>],
}

/// The frozen epoch-start state every pull resolves against.
#[derive(Clone, Copy)]
struct SnapView<'a> {
    colors: &'a [Color],
    bit: &'a [bool],
    real_time: &'a [u64],
}

/// A micro run advanced epoch-by-epoch across `workers` threads.
///
/// Build one through the facade
/// ([`crate::SimBuilder::parallelism`]) or directly with
/// [`ShardedSim::new`]; drive it with [`ShardedSim::run_epoch`].
pub struct ShardedSim {
    topology: Box<dyn Topology + Send + Sync>,
    proto: ShardedProtocol,
    config: Configuration,
    rapid: Option<RapidSoa>,
    snap_colors: Vec<Color>,
    snap_counts: Vec<u64>,
    snap_bit: Vec<bool>,
    snap_real_time: Vec<u64>,
    seed: Seed,
    tau: f64,
    /// Expected activations per node per epoch (= clock rate × τ).
    lambda: f64,
    workers: usize,
    epoch: u64,
    steps: u64,
    halted_count: usize,
    first_halt: Option<SimTime>,
    jumps: u64,
    max_jump_displacement: u64,
    obs: Option<ShardObs>,
}

/// Pre-registered metric handles for the epoch engine, created once at
/// [`ShardedSim::attach_obs`] so the per-epoch flush is a handful of
/// atomic ops with no registry lookups.
struct ShardObs {
    obs: Arc<Obs>,
    steps: Counter,
    epochs: Counter,
    clique_pulls: Counter,
    shard_steps_min: Gauge,
    shard_steps_max: Gauge,
}

impl std::fmt::Debug for ShardedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSim")
            .field("n", &self.config.n())
            .field("proto", &self.proto)
            .field("workers", &self.workers)
            .field("tau", &self.tau)
            .field("epoch", &self.epoch)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl ShardedSim {
    /// Assembles a sharded run.
    ///
    /// `rate` is each node's Poisson clock rate (activations per time
    /// unit); the epoch length is [`DEFAULT_TAU`]. `workers` is clamped
    /// to `[1, n]`.
    ///
    /// # Panics
    ///
    /// Panics if the topology size and configuration size disagree, or
    /// if `rate` is not finite and positive (the facade validates both).
    pub fn new(
        topology: Box<dyn Topology + Send + Sync>,
        config: Configuration,
        proto: ShardedProtocol,
        seed: Seed,
        rate: f64,
        workers: usize,
    ) -> Self {
        assert_eq!(topology.n(), config.n(), "topology/config size mismatch");
        assert!(
            rate.is_finite() && rate > 0.0,
            "clock rate must be finite and positive"
        );
        let n = config.n();
        let rapid = match &proto {
            ShardedProtocol::Gossip(_) => None,
            ShardedProtocol::Rapid(schedule) => Some(RapidSoa::new(*schedule, n)),
        };
        ShardedSim {
            topology,
            proto,
            config,
            rapid,
            snap_colors: Vec::with_capacity(n),
            snap_counts: Vec::new(),
            snap_bit: Vec::new(),
            snap_real_time: Vec::new(),
            seed,
            tau: DEFAULT_TAU,
            lambda: rate * DEFAULT_TAU,
            workers: workers.clamp(1, n.max(1)),
            epoch: 0,
            steps: 0,
            halted_count: 0,
            first_halt: None,
            jumps: 0,
            max_jump_displacement: 0,
            obs: None,
        }
    }

    /// Attaches an observability handle. Instrumentation is flushed once
    /// per epoch at the merge (trace events `epoch_merge`/`bias_sample`,
    /// the `sharded.*` counters and work-balance gauges); the sharded
    /// hot loops only bump plain per-shard integers, so an attached
    /// handle changes no RNG draw and no outcome byte (pinned by
    /// `tests/obs.rs` against the golden hashes in `tests/sharding.rs`).
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(ShardObs {
            steps: obs.registry.counter("sharded.steps"),
            epochs: obs.registry.counter("sharded.epochs"),
            clique_pulls: obs.registry.counter("sharded.clique_pulls"),
            shard_steps_min: obs.registry.gauge("sharded.shard_steps_min"),
            shard_steps_max: obs.registry.gauge("sharded.shard_steps_max"),
            obs,
        });
    }

    /// The current configuration.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Worker threads the engine was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The protocol being advanced.
    pub fn protocol(&self) -> &ShardedProtocol {
        &self.proto
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total activations executed (every node's per-epoch Poisson draw
    /// is counted, including ticks consumed by halted nodes).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulation time at the last epoch boundary (`epochs × τ`).
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.epoch as f64 * self.tau)
    }

    /// End of the epoch in which the first node halted, if any.
    ///
    /// The sequential engine records the halting activation's exact
    /// time; the epoch engine resolves time at epoch boundaries, so the
    /// value is the boundary that committed the halt (within τ of the
    /// sequential notion).
    pub fn first_halt(&self) -> Option<SimTime> {
        self.first_halt
    }

    /// How many nodes have halted (always 0 for gossip rules).
    pub fn halted_count(&self) -> usize {
        self.halted_count
    }

    /// Total Sync-Gadget jumps executed so far.
    pub fn jump_count(&self) -> u64 {
        self.jumps
    }

    /// Largest |working-time displacement| any jump has caused.
    pub fn max_jump_displacement(&self) -> u64 {
        self.max_jump_displacement
    }

    /// Per-node working times (full protocol only).
    pub fn working_times(&self) -> Option<Vec<u64>> {
        self.rapid.as_ref().map(|soa| soa.working_time.clone())
    }

    /// Color histogram over the bit-set nodes (full protocol only).
    pub fn bit_composition(&self) -> Option<Vec<u64>> {
        let soa = self.rapid.as_ref()?;
        let mut counts = vec![0u64; self.config.k()];
        for (i, &b) in soa.bit.iter().enumerate() {
            if b {
                counts[self.config.colors()[i].index()] += 1;
            }
        }
        Some(counts)
    }

    /// A conservative activation budget, matching the sequential
    /// engines: [`crate::asynchronous::RapidSim::default_step_budget`]'s
    /// formula for the full protocol, the facade's gossip default
    /// otherwise.
    pub fn default_step_budget(&self) -> u64 {
        let n = self.config.n() as u64;
        match (&self.proto, &self.rapid) {
            (ShardedProtocol::Rapid(_), Some(soa)) => 3 * n * soa.schedule.params().total_len(),
            _ => {
                let ln_n = (n.max(2) as f64).ln();
                ((n as f64) * (ln_n + 1.0)).ceil() as u64 * 200
            }
        }
    }

    /// Advances one τ-sized epoch: snapshot, sharded execution, merge.
    pub fn run_epoch(&mut self) {
        let n = self.config.n();
        let epoch = self.epoch;
        let sizes = shard_sizes(n, self.workers);

        // Snapshot the externally visible epoch-start state.
        self.snap_colors.clear();
        self.snap_colors.extend_from_slice(self.config.colors());
        self.snap_counts.clear();
        self.snap_counts
            .extend_from_slice(self.config.counts().as_slice());
        if let Some(soa) = &self.rapid {
            self.snap_bit.clear();
            self.snap_bit.extend_from_slice(&soa.bit);
            self.snap_real_time.clear();
            self.snap_real_time.extend_from_slice(&soa.real_time);
        }

        let topo: &(dyn Topology + Send + Sync) = &*self.topology;
        // Stream 7 split by epoch, hoisted: the per-node loop only pays
        // one further child derivation per node.
        let epoch_seed = self.seed.child(7).child(epoch);
        let lambda = self.lambda;
        let k = self.config.k();
        let (colors, counts) = self.config.split_mut();
        let color_shards = split_by_sizes(colors, &sizes);

        let deltas: Vec<EpochDelta> = match (&self.proto, &mut self.rapid) {
            (ShardedProtocol::Gossip(rule), _) => {
                let rule = *rule;
                let snap: &[Color] = &self.snap_colors;
                let snap_counts: &[u64] = &self.snap_counts;
                run_shards(color_shards, &sizes, self.workers, move |lo, shard| {
                    gossip_epoch_shard(rule, topo, snap, snap_counts, epoch_seed, lambda, lo, shard)
                })
            }
            (ShardedProtocol::Rapid(_), Some(soa)) => {
                let snap = SnapView {
                    colors: &self.snap_colors,
                    bit: &self.snap_bit,
                    real_time: &self.snap_real_time,
                };
                let schedule = &soa.schedule;
                let shards: Vec<RapidShard<'_>> = {
                    let wt = split_by_sizes(&mut soa.working_time, &sizes);
                    let rt = split_by_sizes(&mut soa.real_time, &sizes);
                    let inter = split_by_sizes(&mut soa.intermediate, &sizes);
                    let bit = split_by_sizes(&mut soa.bit, &sizes);
                    let ljp = split_by_sizes(&mut soa.last_jump_phase, &sizes);
                    let halted = split_by_sizes(&mut soa.halted, &sizes);
                    let samples = split_by_sizes(&mut soa.samples, &sizes);
                    color_shards
                        .into_iter()
                        .zip(wt)
                        .zip(rt)
                        .zip(inter)
                        .zip(bit)
                        .zip(ljp)
                        .zip(halted)
                        .zip(samples)
                        .map(
                            |(((((((colors, wt), rt), inter), bit), ljp), halted), samples)| {
                                RapidShard {
                                    colors,
                                    working_time: wt,
                                    real_time: rt,
                                    intermediate: inter,
                                    bit,
                                    last_jump_phase: ljp,
                                    halted,
                                    samples,
                                }
                            },
                        )
                        .collect()
                };
                run_shards(shards, &sizes, self.workers, move |lo, shard| {
                    rapid_epoch_shard(schedule, topo, snap, epoch_seed, lambda, k, lo, shard)
                })
            }
            // lint: allow(panic-hygiene): new() allocates SoA state iff the protocol is Rapid, in the same match
            (ShardedProtocol::Rapid(_), None) => unreachable!("rapid proto implies SoA state"),
        };

        // Merge in shard order: commutative aggregates, deterministic
        // under any worker count.
        for d in &deltas {
            counts.apply_delta(&d.count_delta);
            self.steps += d.steps;
            self.jumps += d.jumps;
            self.max_jump_displacement = self.max_jump_displacement.max(d.max_jump_displacement);
            self.halted_count += d.newly_halted;
        }
        self.epoch += 1;
        if self.first_halt.is_none() && deltas.iter().any(|d| d.newly_halted > 0) {
            self.first_halt = Some(self.now());
        }

        // Post-merge observability flush: a few atomics and two trace
        // records per epoch, outside every shard loop and after all
        // state is committed — no RNG stream is reachable from here.
        if let Some(cells) = &self.obs {
            let epoch_steps: u64 = deltas.iter().map(|d| d.steps).sum();
            let min = deltas.iter().map(|d| d.steps).min().unwrap_or(0);
            let max = deltas.iter().map(|d| d.steps).max().unwrap_or(0);
            cells.steps.add(epoch_steps);
            cells.epochs.inc();
            cells
                .clique_pulls
                .add(deltas.iter().map(|d| d.clique_pulls).sum());
            cells.shard_steps_min.set(min);
            cells.shard_steps_max.set(max);
            cells.obs.trace.emit(
                "sharded",
                TraceEvent::EpochMerge {
                    epoch,
                    steps: epoch_steps,
                    shards: deltas.len() as u64,
                    min_shard_steps: min,
                    max_shard_steps: max,
                },
            );
            let top = self.config.counts().top_two();
            cells.obs.trace.emit(
                "sharded",
                TraceEvent::BiasSample {
                    time: self.now().as_secs(),
                    leader: top.leader.index() as u64,
                    support: top.c1,
                    runner_up: top.c2,
                    total: self.config.counts().n(),
                },
            );
        }
    }

    /// Runs epochs until unanimity, all nodes halted, or `max_epochs`.
    /// Returns the winner on unanimity, `None` otherwise.
    pub fn run_until_consensus(&mut self, max_epochs: u64) -> Option<Color> {
        if let Some(w) = self.config.counts().unanimous() {
            return Some(w);
        }
        for _ in 0..max_epochs {
            self.run_epoch();
            if let Some(w) = self.config.counts().unanimous() {
                return Some(w);
            }
            if self.halted_count == self.config.n() {
                return None;
            }
        }
        None
    }
}

/// Executes one closure per shard, inline for one worker and on scoped
/// threads otherwise. Shard results come back in shard order.
fn run_shards<S, F>(shards: Vec<S>, sizes: &[usize], workers: usize, f: F) -> Vec<EpochDelta>
where
    S: Send,
    F: Fn(usize, S) -> EpochDelta + Sync,
{
    // Shard start offsets (prefix sums of the sizes).
    let mut starts = Vec::with_capacity(sizes.len());
    let mut acc = 0usize;
    for &len in sizes {
        starts.push(acc);
        acc += len;
    }
    if workers <= 1 || shards.len() <= 1 {
        return shards
            .into_iter()
            .zip(starts)
            .map(|(shard, lo)| f(lo, shard))
            .collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .zip(starts)
            .map(|(shard, lo)| scope.spawn(move || f(lo, shard)))
            .collect();
        handles
            .into_iter()
            // lint: allow(panic-hygiene): propagating a worker panic is the only sound response — the epoch is lost
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// The snapshot color of a uniform neighbor of a clique node whose own
/// snapshot color has index `self_snap`: a uniform draw over the other
/// `n − 1` nodes, answered from the frozen histogram in O(k) without
/// touching the O(n) snapshot array (the epoch engine's clique fast
/// path — at n = 10⁶ the array walk is a cache miss per pull, the
/// histogram walk stays in registers).
#[inline]
fn clique_snapshot_pull(
    snap_counts: &[u64],
    self_snap: usize,
    n: usize,
    rng: &mut SimRng,
) -> Color {
    let mut r = rng.bounded(n as u64 - 1);
    // The adjusted buckets sum to exactly n − 1, so the walk always
    // lands; the init value is only reachable through that last bucket.
    let mut pick = snap_counts.len() - 1;
    for (c, &count) in snap_counts.iter().enumerate() {
        let count = count - u64::from(c == self_snap);
        if r < count {
            pick = c;
            break;
        }
        r -= count;
    }
    Color::new(pick)
}

/// One gossip shard's epoch: every pull reads the frozen snapshot, own
/// colors evolve live (mirrors
/// [`crate::asynchronous::AsyncGossipSim`]'s per-tick rules). On
/// complete graphs pulls are answered by [`clique_snapshot_pull`].
#[allow(clippy::too_many_arguments)]
fn gossip_epoch_shard(
    rule: GossipRule,
    topology: &(dyn Topology + Send + Sync),
    snap_colors: &[Color],
    snap_counts: &[u64],
    epoch_seed: Seed,
    lambda: f64,
    lo: usize,
    colors: &mut [Color],
) -> EpochDelta {
    let k = snap_counts.len();
    let clique = topology.complete_n();
    let mut delta = EpochDelta::new(k);
    for (local, slot) in colors.iter_mut().enumerate() {
        let g = lo + local;
        let u = NodeId::new(g);
        let mut rng = epoch_node_rng(epoch_seed, g as u64);
        let activations = sample_poisson(&mut rng, lambda);
        if activations == 0 {
            continue;
        }
        let self_snap = snap_colors[g].index();
        for _ in 0..activations {
            delta.steps += 1;
            let pull = |rng: &mut SimRng, delta: &mut EpochDelta| match clique {
                Some(n) => {
                    delta.clique_pulls += 1;
                    clique_snapshot_pull(snap_counts, self_snap, n, rng)
                }
                None => snap_colors[topology.sample_neighbor(u, rng).index()],
            };
            let new = match rule {
                GossipRule::Voter => pull(&mut rng, &mut delta),
                GossipRule::TwoChoices => {
                    let a = pull(&mut rng, &mut delta);
                    let b = pull(&mut rng, &mut delta);
                    if a == b {
                        a
                    } else {
                        *slot
                    }
                }
                GossipRule::ThreeMajority => {
                    let a = pull(&mut rng, &mut delta);
                    let b = pull(&mut rng, &mut delta);
                    let c = pull(&mut rng, &mut delta);
                    if a == b || a == c {
                        a
                    } else if b == c {
                        b
                    } else {
                        a
                    }
                }
            };
            delta.recolor(slot, new);
        }
    }
    delta
}

/// One full-protocol shard's epoch (mirrors
/// [`crate::asynchronous::RapidSim::tick`] with pulls resolved against
/// the snapshot).
#[allow(clippy::too_many_arguments)]
fn rapid_epoch_shard(
    schedule: &Schedule,
    topology: &(dyn Topology + Send + Sync),
    snap: SnapView<'_>,
    epoch_seed: Seed,
    lambda: f64,
    k: usize,
    lo: usize,
    st: RapidShard<'_>,
) -> EpochDelta {
    let mut delta = EpochDelta::new(k);
    for local in 0..st.colors.len() {
        let g = lo + local;
        let u = NodeId::new(g);
        let mut rng = epoch_node_rng(epoch_seed, g as u64);
        let activations = sample_poisson(&mut rng, lambda);
        for _ in 0..activations {
            delta.steps += 1;
            if st.halted[local] {
                st.real_time[local] += 1;
                continue;
            }
            let action = schedule.action_at(st.working_time[local]);
            let mut jumped = false;
            match action {
                Action::Wait => {}
                Action::TwoChoicesSample => {
                    // reset_phase_state
                    st.intermediate[local] = NO_COLOR;
                    st.bit[local] = false;
                    st.samples[local].clear();
                    let v = topology.sample_neighbor(u, &mut rng);
                    let w = topology.sample_neighbor(u, &mut rng);
                    let cv = snap.colors[v.index()];
                    if cv == snap.colors[w.index()] {
                        st.intermediate[local] = cv.index() as u32;
                    }
                }
                Action::Commit => {
                    if st.intermediate[local] != NO_COLOR {
                        let c = Color::new(st.intermediate[local] as usize);
                        st.intermediate[local] = NO_COLOR;
                        delta.recolor(&mut st.colors[local], c);
                        st.bit[local] = true;
                    } else {
                        st.bit[local] = false;
                    }
                }
                Action::BitPropagation => {
                    if !st.bit[local] {
                        let v = topology.sample_neighbor(u, &mut rng);
                        if snap.bit[v.index()] {
                            delta.recolor(&mut st.colors[local], snap.colors[v.index()]);
                            st.bit[local] = true;
                        }
                    }
                }
                Action::SyncSample => {
                    let v = topology.sample_neighbor(u, &mut rng);
                    st.samples[local].push((snap.real_time[v.index()], st.real_time[local]));
                }
                Action::Jump => {
                    let phase = schedule.phase_of(st.working_time[local]);
                    if st.last_jump_phase[local] != phase {
                        if let Some(target) =
                            median_estimate(&st.samples[local], st.real_time[local])
                        {
                            let from = st.working_time[local];
                            st.working_time[local] = target;
                            st.last_jump_phase[local] = phase;
                            delta.jumps += 1;
                            delta.max_jump_displacement =
                                delta.max_jump_displacement.max(from.abs_diff(target));
                            jumped = true;
                        }
                    }
                }
                Action::Endgame => {
                    let v = topology.sample_neighbor(u, &mut rng);
                    let w = topology.sample_neighbor(u, &mut rng);
                    let cv = snap.colors[v.index()];
                    if cv == snap.colors[w.index()] {
                        delta.recolor(&mut st.colors[local], cv);
                    }
                }
                Action::Halt => {
                    st.halted[local] = true;
                    delta.newly_halted += 1;
                }
            }
            if !jumped {
                st.working_time[local] += 1;
            }
            st.real_time[local] += 1;
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asynchronous::params::Params;
    use rapid_graph::complete::Complete;

    fn gossip_sim(n: usize, workers: usize, seed: u64) -> ShardedSim {
        let topology = Box::new(Complete::new(n));
        let counts = vec![(n / 2 + n / 8) as u64, (n - n / 2 - n / 8) as u64];
        let config = Configuration::from_counts(&counts).expect("valid");
        ShardedSim::new(
            topology,
            config,
            ShardedProtocol::Gossip(GossipRule::TwoChoices),
            Seed::new(seed),
            1.0,
            workers,
        )
    }

    #[test]
    fn shard_sizes_cover_everything() {
        assert_eq!(shard_sizes(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(shard_sizes(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(shard_sizes(3, 8), vec![1, 1, 1]);
        assert_eq!(shard_sizes(5, 1), vec![5]);
        for (n, w) in [(1000, 8), (1024, 4), (7, 3)] {
            assert_eq!(shard_sizes(n, w).iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn gossip_converges_and_is_worker_independent() {
        let mut a = gossip_sim(512, 1, 42);
        let mut b = gossip_sim(512, 4, 42);
        let wa = a.run_until_consensus(10_000).expect("consensus");
        let wb = b.run_until_consensus(10_000).expect("consensus");
        assert_eq!(wa, wb);
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.config().colors(), b.config().colors());
    }

    #[test]
    fn rapid_run_reaches_consensus() {
        let n = 512;
        let params = Params::for_network(n, 2);
        let schedule = Schedule::new(params);
        let topology = Box::new(Complete::new(n));
        let config = Configuration::from_counts(&[320, 192]).expect("valid");
        let mut sim = ShardedSim::new(
            topology,
            config,
            ShardedProtocol::Rapid(schedule),
            Seed::new(7),
            1.0,
            2,
        );
        let winner = sim.run_until_consensus(100_000).expect("consensus");
        assert_eq!(winner, Color::new(0));
        assert!(sim.steps() > 0);
        assert!(sim.now().as_secs() > 0.0);
    }

    #[test]
    fn epoch_counters_are_monotone() {
        let mut sim = gossip_sim(100, 3, 9);
        sim.run_epoch();
        let s1 = sim.steps();
        sim.run_epoch();
        assert!(sim.steps() >= s1);
        assert_eq!(sim.epoch(), 2);
        assert!((sim.now().as_secs() - 2.0 * DEFAULT_TAU).abs() < 1e-12);
    }
}
