//! Convergence outcomes and errors shared by all protocol drivers.

use rapid_sim::time::SimTime;

use crate::opinion::Color;

/// Why a run failed to produce a consensus.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ConvergenceError {
    /// The budget (rounds or activations) ran out before unanimity.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// Every node halted (froze its color) without unanimity.
    AllHaltedWithoutConsensus,
    /// Topology and configuration disagree on the population size.
    SizeMismatch {
        /// `n` according to the topology.
        topology_n: usize,
        /// `n` according to the configuration.
        config_n: usize,
    },
}

impl std::fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvergenceError::BudgetExhausted { budget } => {
                write!(f, "no consensus within the budget of {budget}")
            }
            ConvergenceError::AllHaltedWithoutConsensus => {
                write!(f, "all nodes halted without reaching consensus")
            }
            ConvergenceError::SizeMismatch {
                topology_n,
                config_n,
            } => write!(
                f,
                "topology ({topology_n} nodes) and configuration ({config_n} nodes) disagree on n"
            ),
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Outcome of a synchronous run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SyncOutcome {
    /// The color every node ended up with.
    pub winner: Color,
    /// Rounds until unanimity.
    pub rounds: u64,
}

/// Outcome of an asynchronous run.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AsyncOutcome {
    /// The color every node ended up with.
    pub winner: Color,
    /// Parallel time until unanimity.
    pub time: SimTime,
    /// Total activations (sequential steps) until unanimity.
    pub steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = ConvergenceError::BudgetExhausted { budget: 100 };
        assert!(e.to_string().contains("100"));
        assert!(ConvergenceError::AllHaltedWithoutConsensus
            .to_string()
            .contains("halted"));
    }

    #[test]
    fn outcomes_are_comparable() {
        let a = SyncOutcome {
            winner: Color::new(0),
            rounds: 5,
        };
        assert_eq!(a, a);
    }
}
