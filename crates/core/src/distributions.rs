//! Initial opinion distributions (workload generators).
//!
//! Every generator returns counts sorted descending, so **color 0 is the
//! plurality** by construction (the workspace convention).

/// A recipe for the initial support counts `c_1 ≥ c_2 ≥ … ≥ c_k`.
#[derive(Clone, Debug, PartialEq)]
pub enum InitialDistribution {
    /// `c_1 = c_2 + gap`, all of `c_2 … c_k` equal (up to rounding).
    ///
    /// This is Theorem 1.1's regime with `gap = z·√(n log n)`.
    AdditiveBias {
        /// Number of opinions.
        k: usize,
        /// The additive gap `c_1 − c_2`.
        gap: u64,
    },
    /// `c_1 = (1+eps)·c`, `c_2 = … = c_k = c` (up to rounding) —
    /// Theorem 1.3's regime.
    MultiplicativeBias {
        /// Number of opinions.
        k: usize,
        /// The multiplicative lead `ε`.
        eps: f64,
    },
    /// All counts equal (no plurality; tie-heavy stress test).
    Uniform {
        /// Number of opinions.
        k: usize,
    },
    /// Zipf-distributed supports: `c_j ∝ j^{−s}`.
    Zipf {
        /// Number of opinions.
        k: usize,
        /// The Zipf exponent `s > 0`.
        s: f64,
    },
    /// Geometric supports: `c_j ∝ r^{j}` for `0 < r < 1`.
    Geometric {
        /// Number of opinions.
        k: usize,
        /// The decay ratio.
        r: f64,
    },
    /// Explicit counts (must already be sorted descending).
    Custom(Vec<u64>),
}

/// Error from materialising an [`InitialDistribution`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DistributionError {
    /// Fewer than two opinions requested.
    TooFewColors,
    /// The population is too small to realise the requested shape.
    PopulationTooSmall {
        /// Requested population.
        n: u64,
        /// Explanation.
        why: &'static str,
    },
    /// A shape parameter is out of range.
    BadParameter(&'static str),
}

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributionError::TooFewColors => write!(f, "at least two opinions are required"),
            DistributionError::PopulationTooSmall { n, why } => {
                write!(f, "population {n} too small: {why}")
            }
            DistributionError::BadParameter(p) => write!(f, "bad parameter: {p}"),
        }
    }
}

impl std::error::Error for DistributionError {}

impl InitialDistribution {
    /// Convenience constructor for [`InitialDistribution::AdditiveBias`]
    /// with the Theorem 1.1 gap `⌈z·√(n ln n)⌉` computed at materialisation
    /// time — see [`theorem_11_gap`].
    pub fn additive_bias(k: usize, gap: u64) -> Self {
        InitialDistribution::AdditiveBias { k, gap }
    }

    /// Convenience constructor for [`InitialDistribution::MultiplicativeBias`].
    pub fn multiplicative_bias(k: usize, eps: f64) -> Self {
        InitialDistribution::MultiplicativeBias { k, eps }
    }

    /// Number of opinions this distribution generates.
    pub fn k(&self) -> usize {
        match self {
            InitialDistribution::AdditiveBias { k, .. }
            | InitialDistribution::MultiplicativeBias { k, .. }
            | InitialDistribution::Uniform { k }
            | InitialDistribution::Zipf { k, .. }
            | InitialDistribution::Geometric { k, .. } => *k,
            InitialDistribution::Custom(c) => c.len(),
        }
    }

    /// Materialises the counts for a population of `n` nodes.
    ///
    /// The result always sums to exactly `n` and is sorted descending.
    ///
    /// # Errors
    ///
    /// See [`DistributionError`].
    pub fn counts(&self, n: u64) -> Result<Vec<u64>, DistributionError> {
        if self.k() < 2 {
            return Err(DistributionError::TooFewColors);
        }
        let k = self.k() as u64;
        let counts = match self {
            InitialDistribution::AdditiveBias { gap, .. } => {
                if *gap >= n {
                    return Err(DistributionError::PopulationTooSmall {
                        n,
                        why: "gap must be smaller than n",
                    });
                }
                let base = (n - gap) / k;
                if base == 0 {
                    return Err(DistributionError::PopulationTooSmall {
                        n,
                        why: "every opinion needs at least one supporter",
                    });
                }
                let mut counts = vec![base; k as usize];
                counts[0] = n - base * (k - 1);
                counts
            }
            InitialDistribution::MultiplicativeBias { eps, .. } => {
                if !(*eps > 0.0 && eps.is_finite()) {
                    return Err(DistributionError::BadParameter("eps must be positive"));
                }
                // c·(k−1) + (1+ε)c = n  →  c = n/(k+ε).
                let c = (n as f64 / (k as f64 + eps)).floor() as u64;
                if c == 0 {
                    return Err(DistributionError::PopulationTooSmall {
                        n,
                        why: "every opinion needs at least one supporter",
                    });
                }
                let mut counts = vec![c; k as usize];
                counts[0] = n - c * (k - 1);
                counts
            }
            InitialDistribution::Uniform { .. } => {
                let base = n / k;
                if base == 0 {
                    return Err(DistributionError::PopulationTooSmall {
                        n,
                        why: "every opinion needs at least one supporter",
                    });
                }
                let mut counts = vec![base; k as usize];
                counts[0] += n - base * k;
                counts
            }
            InitialDistribution::Zipf { s, .. } => {
                if !(*s > 0.0 && s.is_finite()) {
                    return Err(DistributionError::BadParameter("s must be positive"));
                }
                weights_to_counts(n, (1..=k).map(|j| (j as f64).powf(-s)).collect::<Vec<_>>())?
            }
            InitialDistribution::Geometric { r, .. } => {
                if !(*r > 0.0 && *r < 1.0) {
                    return Err(DistributionError::BadParameter("r must be in (0, 1)"));
                }
                weights_to_counts(n, (0..k).map(|j| r.powi(j as i32)).collect::<Vec<_>>())?
            }
            InitialDistribution::Custom(c) => {
                let total: u64 = c.iter().sum();
                if total != n {
                    return Err(DistributionError::PopulationTooSmall {
                        n,
                        why: "custom counts must sum to n",
                    });
                }
                if c.windows(2).any(|w| w[0] < w[1]) {
                    return Err(DistributionError::BadParameter(
                        "custom counts must be sorted descending",
                    ));
                }
                c.clone()
            }
        };
        debug_assert_eq!(counts.iter().sum::<u64>(), n);
        debug_assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        Ok(counts)
    }

    /// A short label for table rows.
    pub fn label(&self) -> String {
        match self {
            InitialDistribution::AdditiveBias { k, gap } => format!("additive(k={k}, gap={gap})"),
            InitialDistribution::MultiplicativeBias { k, eps } => {
                format!("multiplicative(k={k}, eps={eps})")
            }
            InitialDistribution::Uniform { k } => format!("uniform(k={k})"),
            InitialDistribution::Zipf { k, s } => format!("zipf(k={k}, s={s})"),
            InitialDistribution::Geometric { k, r } => format!("geometric(k={k}, r={r})"),
            InitialDistribution::Custom(c) => format!("custom(k={})", c.len()),
        }
    }
}

/// Largest-remainder apportionment of `n` over positive weights, then
/// sorted descending.
fn weights_to_counts(n: u64, weights: Vec<f64>) -> Result<Vec<u64>, DistributionError> {
    let total: f64 = weights.iter().sum();
    let mut counts: Vec<u64> = weights
        .iter()
        .map(|w| (w / total * n as f64).floor() as u64)
        .collect();
    let mut assigned: u64 = counts.iter().sum();
    // Distribute the remainder by largest fractional part.
    let mut frac: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| (i, w / total * n as f64 - counts[i] as f64))
        .collect();
    frac.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut idx = 0;
    while assigned < n {
        counts[frac[idx % frac.len()].0] += 1;
        assigned += 1;
        idx += 1;
    }
    if counts.contains(&0) {
        return Err(DistributionError::PopulationTooSmall {
            n,
            why: "every opinion needs at least one supporter",
        });
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    Ok(counts)
}

/// Theorem 1.1's critical gap `⌈z·√(n ln n)⌉`.
pub fn theorem_11_gap(n: u64, z: f64) -> u64 {
    (z * ((n as f64) * (n as f64).ln()).sqrt()).ceil() as u64
}

/// Theorem 1.2's critical gap `⌈z·√n·(ln n)^{3/2}⌉`.
pub fn theorem_12_gap(n: u64, z: f64) -> u64 {
    (z * (n as f64).sqrt() * (n as f64).ln().powf(1.5)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_bias_has_requested_gap() {
        let d = InitialDistribution::additive_bias(4, 100);
        let c = d.counts(10_000).expect("valid");
        assert_eq!(c.iter().sum::<u64>(), 10_000);
        assert!(c[0] - c[1] >= 100);
        assert!(c[0] - c[1] < 100 + 4);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[2], c[3]);
    }

    #[test]
    fn multiplicative_bias_has_requested_ratio() {
        let d = InitialDistribution::multiplicative_bias(8, 0.25);
        let c = d.counts(100_000).expect("valid");
        assert_eq!(c.iter().sum::<u64>(), 100_000);
        let ratio = c[0] as f64 / c[1] as f64;
        assert!((ratio - 1.25).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn uniform_is_balanced() {
        let d = InitialDistribution::Uniform { k: 3 };
        let c = d.counts(10).expect("valid");
        assert_eq!(c, vec![4, 3, 3]);
    }

    #[test]
    fn zipf_is_skewed_and_sums() {
        let d = InitialDistribution::Zipf { k: 5, s: 1.0 };
        let c = d.counts(1_000).expect("valid");
        assert_eq!(c.iter().sum::<u64>(), 1_000);
        assert!(c[0] > c[4] * 3, "zipf head {} tail {}", c[0], c[4]);
    }

    #[test]
    fn geometric_decays() {
        let d = InitialDistribution::Geometric { k: 4, r: 0.5 };
        let c = d.counts(1_500).expect("valid");
        assert_eq!(c.iter().sum::<u64>(), 1_500);
        assert!(c[0] > c[1] && c[1] > c[2]);
    }

    #[test]
    fn custom_is_validated() {
        assert!(InitialDistribution::Custom(vec![5, 3, 2])
            .counts(10)
            .is_ok());
        assert!(InitialDistribution::Custom(vec![3, 5]).counts(8).is_err());
        assert!(InitialDistribution::Custom(vec![5, 3]).counts(9).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            InitialDistribution::Uniform { k: 1 }
                .counts(10)
                .unwrap_err(),
            DistributionError::TooFewColors
        );
        assert!(matches!(
            InitialDistribution::Uniform { k: 20 }
                .counts(10)
                .unwrap_err(),
            DistributionError::PopulationTooSmall { .. }
        ));
        assert!(matches!(
            InitialDistribution::Zipf { k: 3, s: -1.0 }
                .counts(10)
                .unwrap_err(),
            DistributionError::BadParameter(_)
        ));
        let msg = DistributionError::TooFewColors.to_string();
        assert!(msg.contains("two"));
    }

    #[test]
    fn theorem_gaps_grow_superlinearly_in_sqrt_n() {
        let g1 = theorem_11_gap(10_000, 1.0);
        let g2 = theorem_11_gap(40_000, 1.0);
        // √(n ln n) slightly more than doubles when n quadruples.
        assert!(g2 > 2 * g1);
        assert!(theorem_12_gap(10_000, 1.0) > g1);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            InitialDistribution::additive_bias(2, 5).label(),
            InitialDistribution::multiplicative_bias(2, 0.1).label(),
            InitialDistribution::Uniform { k: 2 }.label(),
            InitialDistribution::Zipf { k: 2, s: 1.0 }.label(),
            InitialDistribution::Geometric { k: 2, r: 0.5 }.label(),
            InitialDistribution::Custom(vec![1, 1]).label(),
        ]
        .to_vec();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
