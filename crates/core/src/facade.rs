//! The unified simulation façade: one entry point for synchronous rounds,
//! asynchronous gossip, and the paper's full rapid protocol.
//!
//! The paper's landscape is a grid of **protocol × topology × clock
//! model × workload**, and the related literature (positive-aging
//! protocols, gossip-model plurality consensus) varies exactly these axes.
//! [`Sim::builder`] makes every cell of that grid one expression:
//!
//! ```
//! use rapid_core::facade::{Sim, StopCondition};
//! use rapid_core::prelude::*;
//! use rapid_graph::prelude::*;
//! use rapid_sim::prelude::*;
//!
//! // Synchronous Two-Choices on K_200 until unanimity.
//! let outcome = Sim::builder()
//!     .topology(Complete::new(200))
//!     .counts(&[150, 50])
//!     .protocol(TwoChoices::new())
//!     .seed(Seed::new(1))
//!     .stop(StopCondition::RoundBudget(10_000))
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert_eq!(outcome.winner, Some(Color::new(0)));
//!
//! // The paper's asynchronous protocol under an event-queue clock.
//! let outcome = Sim::builder()
//!     .topology(Complete::new(256))
//!     .distribution(InitialDistribution::multiplicative_bias(2, 0.5))
//!     .rapid(Params::for_network_with_eps(256, 2, 0.5))
//!     .clock(Clock::EventQueue { rate: 1.0 })
//!     .seed(Seed::new(2))
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert!(outcome.converged());
//! ```
//!
//! Every knob the original drivers hard-wired is an explicit, composable
//! axis:
//!
//! * **topology** — any [`Topology`];
//! * **initial state** — explicit counts, a full [`Configuration`], or an
//!   [`InitialDistribution`] recipe materialised against the topology;
//! * **protocol** — any [`SyncProtocol`], a [`GossipRule`], or the full
//!   rapid protocol via [`Params`] (one [`Protocol`] selector);
//! * **clock** — the sequential model, per-node Poisson clocks, skewed
//!   clock rates, optionally wrapped in exponential response delays
//!   ([`SimBuilder::jitter`]);
//! * **faults** — a [`FaultPlan`] composing message loss, per-edge
//!   latency distributions, churn schedules, and budgeted
//!   opinion-corrupting adversaries ([`SimBuilder::faults`]; asynchronous
//!   protocols only);
//! * **stopping** — composable [`StopCondition`]s on top of the implicit
//!   unanimity check;
//! * **observation** — [`Observer`] hooks with a per-round /
//!   per-time-unit cadence ([`RoundTrace`] and [`SpreadTrace`] are
//!   ready-made observers).
//!
//! `build()` validates the assembly and returns a typed [`BuildError`]
//! instead of panicking; every run produces the same serialisable
//! [`Outcome`].

use std::sync::Arc;

use rapid_graph::topology::Topology;
use rapid_obs::{Obs, TraceEvent};
use rapid_sim::fault::{FaultError, FaultPlan, LatencyScheduler};
use rapid_sim::parallelism::Parallelism;
use rapid_sim::rng::{Seed, SimRng};
use rapid_sim::scheduler::{
    ActivationSource, EventQueueScheduler, HeterogeneousScheduler, JitteredScheduler,
    SequentialScheduler, TimeMode,
};
use rapid_sim::time::SimTime;

use crate::asynchronous::gossip::{AsyncGossipSim, GossipRule};
use crate::asynchronous::params::Params;
use crate::asynchronous::rapid::{RapidOutcome, RapidSim, WorkingTimeStats};
use crate::asynchronous::schedule::Schedule;
use crate::asynchronous::sharded::{ShardedProtocol, ShardedSim};
use crate::convergence::{AsyncOutcome, ConvergenceError, SyncOutcome};
use crate::distributions::{DistributionError, InitialDistribution};
use crate::opinion::{Color, ConfigError, Configuration};
use crate::sync::engine::{RoundTrace, SyncProtocol};

/// A boxed topology, as stored by the façade.
pub type BoxedTopology = Box<dyn Topology + Send + Sync>;
/// A boxed activation source, as stored by the façade.
pub type BoxedSource = Box<dyn ActivationSource + Send>;

/// The protocol axis: every consensus dynamic in this crate behind one
/// selector.
pub enum Protocol {
    /// A synchronous-round protocol (Two-Choices, Voter, 3-Majority,
    /// OneExtraBit, or anything implementing [`SyncProtocol`]).
    Sync(Box<dyn SyncProtocol + Send>),
    /// Plain asynchronous gossip under one update rule.
    Gossip(GossipRule),
    /// The paper's full working-time-scheduled protocol (Theorem 1.3).
    Rapid(Params),
}

impl Protocol {
    /// Short human-readable name for tables and logs.
    pub fn name(&self) -> String {
        match self {
            Protocol::Sync(p) => p.name().to_string(),
            Protocol::Gossip(rule) => rule.name().to_string(),
            Protocol::Rapid(_) => "rapid".to_string(),
        }
    }
}

impl std::fmt::Debug for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Protocol({})", self.name())
    }
}

/// The engine axis: at what resolution the dynamics are simulated.
///
/// * [`EngineKind::Micro`] — one struct per node (every engine that
///   existed before the macro subsystem). The only kind [`SimBuilder::build`]
///   accepts; exact, but state is `O(n)`.
/// * [`EngineKind::Macro`] — population-level stochastic simulation:
///   occupancy counts per (opinion, protocol-state) bucket, advanced by
///   τ-leaped multinomial batches with an exact single-event fallback.
///   State is `O(k · levels)`, so `n = 10⁸–10⁹` is practical. Built via
///   [`SimBuilder::build_spec`] and executed by the `rapid-macro`
///   crate.
/// * [`EngineKind::MeanField`] — the deterministic `n → ∞` limit: RK4
///   over the expected-drift equations (no randomness, no seed
///   dependence). Also executed by `rapid-macro`.
/// * [`EngineKind::Net`] — not a simulator at all: real per-node state
///   machines exchanging serialized messages over a transport. Built via
///   [`SimBuilder::build_spec`] and executed by the `rapid-net`
///   crate, with the micro engine as statistical oracle.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Per-node simulation (the default).
    #[default]
    Micro,
    /// Count-based population dynamics (τ-leap + exact fallback).
    Macro,
    /// Deterministic mean-field ODE integration.
    MeanField,
    /// Real message-passing runtime (`rapid-net`).
    Net,
}

impl EngineKind {
    /// Stable lower-case label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Micro => "micro",
            EngineKind::Macro => "macro",
            EngineKind::MeanField => "mean-field",
            EngineKind::Net => "net",
        }
    }
}

/// The protocol selection of a macro-engine run: the subset of
/// [`Protocol`] whose dynamics are exchangeable (identical update rule for
/// every node), which is what a count-based engine can represent.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum MacroProtocol {
    /// Plain asynchronous gossip under one update rule.
    Gossip(GossipRule),
    /// The paper's full working-time-scheduled protocol.
    Rapid(Params),
}

impl MacroProtocol {
    /// Short human-readable name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            MacroProtocol::Gossip(rule) => rule.name(),
            MacroProtocol::Rapid(_) => "rapid",
        }
    }
}

/// A fully validated description of a population-level run: everything a
/// macro engine needs, with **no per-node state** — building one at
/// `n = 10⁹` allocates `O(k)`, not `O(n)`.
///
/// Produced by [`SimBuilder::build_spec`]; executed by
/// `rapid_macro::MacroSim` ([`EngineKind::Macro`]) or
/// `rapid_macro::MeanFieldSim` ([`EngineKind::MeanField`]). The spec is
/// pure data so the builder (validation) and the engines (execution) can
/// live on opposite sides of the crate graph.
#[derive(Clone, Debug, PartialEq)]
pub struct MacroSpec {
    /// Which macro engine was selected ([`EngineKind::Macro`] or
    /// [`EngineKind::MeanField`], never [`EngineKind::Micro`]).
    pub kind: EngineKind,
    /// Population size.
    pub n: u64,
    /// Per-color initial support counts (color 0 first, sums to `n`).
    pub counts: Vec<u64>,
    /// The protocol to run.
    pub protocol: MacroProtocol,
    /// Poisson clock rate (ticks per node per time unit). The macro
    /// engine simulates the embedded activation chain, so the rate only
    /// scales reported times.
    pub rate: f64,
    /// Per-message loss probability (`0.0` when no fault plan was set —
    /// the only fault knob whose semantics survive aggregation).
    pub loss: f64,
    /// Master seed (ignored by the deterministic mean-field engine).
    pub seed: Seed,
    /// Stop conditions, checked on top of the implicit unanimity check.
    pub stops: Vec<StopCondition>,
}

impl MacroSpec {
    /// Number of opinions.
    pub fn k(&self) -> usize {
        self.counts.len()
    }
}

/// A fully validated description of a real message-passing deployment:
/// everything the `rapid-net` cluster orchestrator needs to boot `n`
/// node state machines, with execution (transports, event loops) kept
/// entirely on the other side of the crate graph.
///
/// Produced by [`SimBuilder::build_spec`]; executed by
/// `rapid_net::Cluster` ([`EngineKind::Net`]). Unlike [`MacroSpec`] the
/// spec carries the full per-node initial assignment — a deployment has
/// per-node state by definition, and on structured topologies the
/// placement of opinions matters.
pub struct NetSpec {
    /// The topology nodes sample their pull targets from.
    pub topology: BoxedTopology,
    /// Per-node initial opinions (shuffled already if requested).
    pub config: Configuration,
    /// The protocol every node runs (the same exchangeable subset the
    /// macro engine accepts: asynchronous gossip or rapid).
    pub protocol: MacroProtocol,
    /// Local Poisson clock rate (activations per node per time unit).
    pub rate: f64,
    /// Master seed (per-node RNG streams are derived from it).
    pub seed: Seed,
    /// Stop conditions, checked on top of the beacon-based termination.
    pub stops: Vec<StopCondition>,
}

impl NetSpec {
    /// Population size.
    pub fn n(&self) -> usize {
        self.config.n()
    }

    /// Number of opinions.
    pub fn k(&self) -> usize {
        self.config.k()
    }
}

impl std::fmt::Debug for NetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSpec")
            .field("n", &self.n())
            .field("k", &self.k())
            .field("protocol", &self.protocol)
            .field("rate", &self.rate)
            .field("seed", &self.seed)
            .field("stops", &self.stops)
            .finish_non_exhaustive()
    }
}

/// A validated assembly, finalised for the engine the builder selected.
///
/// Returned by [`SimBuilder::build_spec`], the engine-dispatching build
/// entry point. Each variant carries the artifact its runner executes:
/// [`Sim`] runs in this crate; [`MacroSpec`] is executed by the
/// `rapid-macro` crate (stochastic buckets for [`Spec::Macro`], the
/// deterministic ODE limit for [`Spec::MeanField`]); [`NetSpec`] is
/// executed by the `rapid-net` crate.
#[derive(Debug)]
pub enum Spec {
    /// A ready-to-run micro simulation ([`EngineKind::Micro`]).
    Micro(Sim),
    /// A population-level spec for the stochastic macro engine
    /// ([`EngineKind::Macro`]).
    Macro(MacroSpec),
    /// A population-level spec for the deterministic mean-field engine
    /// ([`EngineKind::MeanField`]).
    MeanField(MacroSpec),
    /// A deployment spec for the message-passing runtime
    /// ([`EngineKind::Net`]).
    Net(NetSpec),
}

impl Spec {
    /// The engine kind this spec was finalised for.
    pub fn kind(&self) -> EngineKind {
        match self {
            Spec::Micro(_) => EngineKind::Micro,
            Spec::Macro(_) => EngineKind::Macro,
            Spec::MeanField(_) => EngineKind::MeanField,
            Spec::Net(_) => EngineKind::Net,
        }
    }

    /// The micro simulation, if that is what was built.
    pub fn into_micro(self) -> Option<Sim> {
        match self {
            Spec::Micro(sim) => Some(sim),
            _ => None,
        }
    }

    /// The population-level spec, if that is what was built. Covers both
    /// [`Spec::Macro`] and [`Spec::MeanField`] — the returned
    /// [`MacroSpec`] records which via [`MacroSpec::kind`].
    pub fn into_macro(self) -> Option<MacroSpec> {
        match self {
            Spec::Macro(spec) | Spec::MeanField(spec) => Some(spec),
            _ => None,
        }
    }

    /// The deployment spec, if that is what was built.
    pub fn into_net(self) -> Option<NetSpec> {
        match self {
            Spec::Net(spec) => Some(spec),
            _ => None,
        }
    }
}

/// The clock axis: how asynchronous activations are generated.
///
/// Ignored by synchronous protocols, which run in lockstep rounds.
#[derive(Clone, Debug, PartialEq)]
pub enum Clock {
    /// The sequential model: each step activates a uniformly random node.
    Sequential(TimeMode),
    /// Per-node Poisson clocks at a common `rate`, via an event queue.
    EventQueue {
        /// Ticks per node per time unit.
        rate: f64,
    },
    /// Per-node rates drawn uniformly from `[1 − skew, 1 + skew]`.
    UniformSkew {
        /// Half-width of the rate interval; must lie in `[0, 1)`.
        skew: f64,
    },
    /// Explicit per-node clock rates (`rates[i]` for node `i`).
    Rates(Vec<f64>),
}

impl Default for Clock {
    fn default() -> Self {
        Clock::Sequential(TimeMode::Expected)
    }
}

/// A composable stopping rule, checked after every engine step on top of
/// the implicit unanimity check.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum StopCondition {
    /// Stop once simulation time reaches the horizon (absolute — measured
    /// from the simulation's birth, not from the current `run` call). For
    /// synchronous protocols one round counts as one time unit.
    TimeHorizon(SimTime),
    /// Stop after this many engine steps executed by the current run
    /// (activations for asynchronous engines, rounds for synchronous
    /// ones); steps taken by earlier [`Sim::step`] calls don't count.
    StepBudget(u64),
    /// Stop after this many protocol rounds executed by the current run:
    /// rounds for synchronous engines, `n`-activation blocks (≈ time
    /// units) for asynchronous ones.
    RoundBudget(u64),
    /// Stop as soon as any node halts (freezes its color).
    FirstHalt,
}

/// Why a run ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every node holds the same opinion — the success event.
    Unanimity,
    /// A [`StopCondition::TimeHorizon`] fired.
    TimeHorizon,
    /// A [`StopCondition::StepBudget`] fired.
    StepBudget,
    /// A [`StopCondition::RoundBudget`] fired.
    RoundBudget,
    /// A [`StopCondition::FirstHalt`] fired.
    FirstHalt,
    /// Every node halted without consensus.
    AllHalted,
    /// No explicit budget was configured and the engine's generous
    /// default budget ran out (see [`Sim::default_budget`]).
    DefaultBudget,
}

impl StopReason {
    /// Stable lower-case label (used in the JSON serialisation).
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Unanimity => "unanimity",
            StopReason::TimeHorizon => "time-horizon",
            StopReason::StepBudget => "step-budget",
            StopReason::RoundBudget => "round-budget",
            StopReason::FirstHalt => "first-halt",
            StopReason::AllHalted => "all-halted",
            StopReason::DefaultBudget => "default-budget",
        }
    }
}

/// Why [`SimBuilder::build`] rejected an assembly.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// No topology was supplied.
    MissingTopology,
    /// No initial state (counts, configuration, or distribution) was
    /// supplied.
    MissingInitialState,
    /// No protocol was selected.
    MissingProtocol,
    /// Topology and initial state disagree on the population size.
    SizeMismatch {
        /// `n` according to the topology.
        topology_n: usize,
        /// `n` according to the initial state.
        config_n: usize,
    },
    /// The initial counts or assignment are structurally invalid.
    Config(ConfigError),
    /// The distribution cannot be materialised for this population.
    Distribution(DistributionError),
    /// The rapid protocol's parameters are inconsistent.
    InvalidParams(&'static str),
    /// A clock rate is not strictly positive and finite, or the skew is
    /// outside `[0, 1)`.
    InvalidClock(&'static str),
    /// Explicit per-node rates have the wrong length.
    RatesLength {
        /// Expected number of rates (= `n`).
        expected: usize,
        /// Number of rates supplied.
        got: usize,
    },
    /// The jitter delay rate is not strictly positive and finite.
    InvalidJitter(f64),
    /// `halt_after` requires an asynchronous gossip protocol (the rapid
    /// protocol halts by its own schedule), and must be positive.
    InvalidHaltBudget,
    /// The fault plan is invalid (bad loss probability, latency
    /// parameters, churn schedule, or adversary interval).
    Faults(FaultError),
    /// A non-neutral fault plan was combined with a synchronous protocol;
    /// the fault layer models the asynchronous setting (crashes, lost
    /// pulls, late adversaries) and only the asynchronous engines consult
    /// it.
    FaultsRequireAsync,
    /// The macro / mean-field engines require the complete graph: a
    /// count-based state assumes every node samples uniformly from the
    /// whole population (exchangeability).
    MacroRequiresComplete,
    /// The selected axis combination has no population-level semantics;
    /// the payload names the axis (synchronous protocols, per-node halt
    /// budgets, jitter, non-exchangeable clocks, per-node fault knobs).
    MacroUnsupported(&'static str),
    /// The selected axis combination has no meaning for a real
    /// message-passing deployment; the payload names the axis
    /// (synchronous protocols, injected faults, modeled jitter, skewed
    /// clocks, simulator-only stop conditions).
    NetUnsupported(&'static str),
    /// The wrong build entry point was called for the selected
    /// [`EngineKind`]: `build()` constructs micro engines only; every
    /// other kind goes through `build_spec()`. The payload names the
    /// method to call instead.
    EngineMismatch(&'static str),
    /// The selected axis combination is not supported by the sharded
    /// epoch engine ([`SimBuilder::parallelism`]); the payload names the
    /// axis (synchronous protocols, jitter, fault plans, per-node halt
    /// budgets, heterogeneous clocks).
    ShardedUnsupported(&'static str),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingTopology => write!(f, "no topology was supplied"),
            BuildError::MissingInitialState => {
                write!(
                    f,
                    "no initial state (counts, configuration, or distribution)"
                )
            }
            BuildError::MissingProtocol => write!(f, "no protocol was selected"),
            BuildError::SizeMismatch {
                topology_n,
                config_n,
            } => write!(
                f,
                "topology has {topology_n} nodes but the initial state has {config_n}"
            ),
            BuildError::Config(e) => write!(f, "invalid initial state: {e}"),
            BuildError::Distribution(e) => write!(f, "invalid distribution: {e}"),
            BuildError::InvalidParams(why) => write!(f, "invalid rapid parameters: {why}"),
            BuildError::InvalidClock(why) => write!(f, "invalid clock: {why}"),
            BuildError::RatesLength { expected, got } => {
                write!(f, "expected {expected} clock rates, got {got}")
            }
            BuildError::InvalidJitter(rate) => {
                write!(
                    f,
                    "jitter delay rate must be positive and finite, got {rate}"
                )
            }
            BuildError::InvalidHaltBudget => write!(
                f,
                "halt_after requires an asynchronous gossip protocol and a positive budget"
            ),
            BuildError::Faults(e) => write!(f, "invalid fault plan: {e}"),
            BuildError::FaultsRequireAsync => write!(
                f,
                "a non-neutral fault plan requires an asynchronous protocol (gossip or rapid)"
            ),
            BuildError::MacroRequiresComplete => write!(
                f,
                "the macro and mean-field engines require the complete graph \
                 (count-based state assumes exchangeable sampling)"
            ),
            BuildError::MacroUnsupported(what) => {
                write!(f, "the macro and mean-field engines do not support {what}")
            }
            BuildError::NetUnsupported(what) => {
                write!(f, "the message-passing runtime does not support {what}")
            }
            BuildError::EngineMismatch(instead) => {
                write!(
                    f,
                    "wrong build entry point for this engine kind; use {instead}"
                )
            }
            BuildError::ShardedUnsupported(what) => {
                write!(f, "the sharded epoch engine does not support {what}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<FaultError> for BuildError {
    fn from(e: FaultError) -> Self {
        BuildError::Faults(e)
    }
}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

impl From<DistributionError> for BuildError {
    fn from(e: DistributionError) -> Self {
        BuildError::Distribution(e)
    }
}

/// The unified result of any run: one type subsuming the legacy
/// [`SyncOutcome`], [`AsyncOutcome`] and [`RapidOutcome`].
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// Why the run ended.
    pub stop: StopReason,
    /// The unanimous color, if the run converged.
    pub winner: Option<Color>,
    /// Engine steps executed (rounds for synchronous protocols,
    /// activations for asynchronous ones).
    pub steps: u64,
    /// Synchronous rounds, when the protocol runs in rounds.
    pub rounds: Option<u64>,
    /// Simulation time at the end, for asynchronous engines.
    pub time: Option<SimTime>,
    /// When the first node halted, if the dynamic halts at all.
    pub first_halt: Option<SimTime>,
    /// Theorem 1.3's success event — unanimity strictly before the first
    /// halt — for engines that halt (`None` otherwise).
    pub before_first_halt: Option<bool>,
    /// The final support histogram.
    pub final_counts: Vec<u64>,
}

impl Outcome {
    /// Whether the run reached unanimity.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Unanimity
    }

    /// The legacy synchronous view, for round-based runs that converged.
    pub fn as_sync(&self) -> Option<SyncOutcome> {
        match (self.winner, self.rounds) {
            (Some(winner), Some(rounds)) if self.converged() => {
                Some(SyncOutcome { winner, rounds })
            }
            _ => None,
        }
    }

    /// The legacy asynchronous view, for activation-based runs that
    /// converged.
    pub fn as_async(&self) -> Option<AsyncOutcome> {
        match (self.winner, self.time) {
            (Some(winner), Some(time)) if self.converged() => Some(AsyncOutcome {
                winner,
                time,
                steps: self.steps,
            }),
            _ => None,
        }
    }

    /// The legacy rapid-protocol view, for halting asynchronous runs that
    /// converged.
    pub fn as_rapid(&self) -> Option<RapidOutcome> {
        match (self.winner, self.time, self.before_first_halt) {
            (Some(winner), Some(time), Some(before_first_halt)) if self.converged() => {
                Some(RapidOutcome {
                    winner,
                    time,
                    steps: self.steps,
                    first_halt: self.first_halt,
                    before_first_halt,
                })
            }
            _ => None,
        }
    }

    /// Serialises the outcome as a single-line JSON object.
    ///
    /// All fields are numbers, booleans or fixed enum labels, so no
    /// string escaping is required.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(160);
        let _ = write!(out, "{{\"stop\": \"{}\"", self.stop.label());
        match self.winner {
            Some(w) => {
                let _ = write!(out, ", \"winner\": {}", w.index());
            }
            None => out.push_str(", \"winner\": null"),
        }
        let _ = write!(out, ", \"steps\": {}", self.steps);
        match self.rounds {
            Some(r) => {
                let _ = write!(out, ", \"rounds\": {r}");
            }
            None => out.push_str(", \"rounds\": null"),
        }
        match self.time {
            Some(t) => {
                let _ = write!(out, ", \"time\": {}", t.as_secs());
            }
            None => out.push_str(", \"time\": null"),
        }
        match self.first_halt {
            Some(t) => {
                let _ = write!(out, ", \"first_halt\": {}", t.as_secs());
            }
            None => out.push_str(", \"first_halt\": null"),
        }
        match self.before_first_halt {
            Some(b) => {
                let _ = write!(out, ", \"before_first_halt\": {b}");
            }
            None => out.push_str(", \"before_first_halt\": null"),
        }
        out.push_str(", \"final_counts\": [");
        for (i, c) in self.final_counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("]}");
        out
    }
}

/// A progress snapshot handed to [`Observer`]s: once per round for
/// synchronous protocols, once per `n` activations (≈ one time unit) for
/// asynchronous ones.
pub struct Progress<'a> {
    /// Engine steps so far.
    pub steps: u64,
    /// Rounds so far (synchronous engines only).
    pub rounds: Option<u64>,
    /// Simulation time (asynchronous engines only).
    pub time: Option<SimTime>,
    /// The current configuration.
    pub config: &'a Configuration,
    /// Per-node working times (rapid protocol only).
    pub working_times: Option<&'a [u64]>,
}

/// A hook observing a run at a fixed cadence (see [`Progress`]).
pub trait Observer {
    /// Receives one progress snapshot.
    fn observe(&mut self, progress: &Progress<'_>);
}

impl Observer for RoundTrace {
    fn observe(&mut self, progress: &Progress<'_>) {
        self.record(progress.config);
    }
}

/// An observer recording the working-time spread of the rapid protocol —
/// the weak-synchronicity instrumentation, as a reusable hook.
#[derive(Clone, Debug)]
pub struct SpreadTrace {
    /// Tolerance (ticks) for the poorly-synced fraction, typically `2Δ`.
    pub tolerance: u64,
    /// One snapshot per observation.
    pub snapshots: Vec<WorkingTimeStats>,
}

impl SpreadTrace {
    /// Creates a trace with the given tolerance.
    pub fn new(tolerance: u64) -> Self {
        SpreadTrace {
            tolerance,
            snapshots: Vec::new(),
        }
    }
}

impl Observer for SpreadTrace {
    fn observe(&mut self, progress: &Progress<'_>) {
        if let Some(wts) = progress.working_times {
            let mut wts = wts.to_vec();
            self.snapshots
                .push(WorkingTimeStats::from_times(&mut wts, self.tolerance));
        }
    }
}

/// The obs layer's standard `Sim` hook: a phase-resolved trace observer.
///
/// At every progress snapshot it emits a
/// [`TraceEvent::BiasSample`] with the histogram's top two entries,
/// a full [`TraceEvent::OccupancySample`] when `k` is at most
/// [`ObsObserver::occupancy_limit`], and — when built
/// [`ObsObserver::with_schedule`] — a [`TraceEvent::PhaseEnter`] whenever
/// the population's *median* working time crosses a rapid phase boundary
/// (`phase == phases` marks part 2, the endgame).
///
/// The observer reads [`Progress`] and nothing else: it has no path to
/// the run's RNG streams, so attaching it never changes an outcome.
/// `crates/core/tests/obs.rs` pins that bit-for-bit against the sharded
/// golden hashes.
pub struct ObsObserver {
    obs: Arc<Obs>,
    stream: String,
    schedule: Option<Schedule>,
    /// Emit [`TraceEvent::OccupancySample`] only while `k` is at most
    /// this (full occupancy vectors at large `k` would swamp the ring).
    pub occupancy_limit: usize,
    last_phase: Option<u64>,
}

impl ObsObserver {
    /// An observer emitting on trace stream `stream`.
    pub fn new(obs: Arc<Obs>, stream: impl Into<String>) -> Self {
        ObsObserver {
            obs,
            stream: stream.into(),
            schedule: None,
            occupancy_limit: 32,
            last_phase: None,
        }
    }

    /// Enables phase decoding against a rapid [`Schedule`].
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// The phase the median working time `w` sits in: a part-1 phase
    /// index, or `phases` once the median node reaches part 2.
    fn phase_of_median(schedule: &Schedule, w: u64) -> u64 {
        let params = schedule.params();
        if w < params.part1_len() {
            u64::from(schedule.phase_of(w))
        } else {
            u64::from(params.phases)
        }
    }
}

impl Observer for ObsObserver {
    fn observe(&mut self, progress: &Progress<'_>) {
        let time = progress
            .time
            .map(|t| t.as_secs())
            .or_else(|| progress.rounds.map(|r| r as f64))
            .unwrap_or(progress.steps as f64);
        if let (Some(schedule), Some(wts)) = (&self.schedule, progress.working_times) {
            if !wts.is_empty() {
                let mut wts = wts.to_vec();
                let mid = wts.len() / 2;
                let (_, &mut median, _) = wts.select_nth_unstable(mid);
                let phase = Self::phase_of_median(schedule, median);
                if self.last_phase != Some(phase) {
                    self.last_phase = Some(phase);
                    self.obs
                        .trace
                        .emit(&self.stream, TraceEvent::PhaseEnter { phase, time });
                }
            }
        }
        let counts = progress.config.counts();
        let top = counts.top_two();
        self.obs.trace.emit(
            &self.stream,
            TraceEvent::BiasSample {
                time,
                leader: top.leader.index() as u64,
                support: top.c1,
                runner_up: top.c2,
                total: counts.n(),
            },
        );
        if counts.k() <= self.occupancy_limit {
            self.obs.trace.emit(
                &self.stream,
                TraceEvent::OccupancySample {
                    time,
                    counts: counts.as_slice().to_vec(),
                },
            );
        }
    }
}

enum Init {
    Counts(Vec<u64>),
    Assignment(Configuration),
    Distribution(InitialDistribution),
}

/// Builder for a [`Sim`]. Created by [`Sim::builder`].
pub struct SimBuilder {
    topology: Option<BoxedTopology>,
    init: Option<Init>,
    protocol: Option<Protocol>,
    engine: EngineKind,
    clock: Clock,
    jitter: Option<f64>,
    faults: Option<FaultPlan>,
    seed: Seed,
    stops: Vec<StopCondition>,
    shuffle: bool,
    halt_after: Option<u64>,
    parallelism: Option<Parallelism>,
    obs: Option<Arc<Obs>>,
}

impl SimBuilder {
    fn new() -> Self {
        SimBuilder {
            topology: None,
            init: None,
            protocol: None,
            engine: EngineKind::default(),
            clock: Clock::default(),
            jitter: None,
            faults: None,
            seed: Seed::default(),
            stops: Vec::new(),
            shuffle: false,
            halt_after: None,
            parallelism: None,
            obs: None,
        }
    }

    /// Sets the communication topology.
    pub fn topology(mut self, topology: impl Topology + Send + Sync + 'static) -> Self {
        self.topology = Some(Box::new(topology));
        self
    }

    /// Sets an already boxed topology (for dynamically chosen graphs).
    pub fn boxed_topology(mut self, topology: BoxedTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the initial state from per-color support counts (color 0
    /// first).
    pub fn counts(mut self, counts: &[u64]) -> Self {
        self.init = Some(Init::Counts(counts.to_vec()));
        self
    }

    /// Sets the initial state from a full per-node assignment.
    pub fn configuration(mut self, config: Configuration) -> Self {
        self.init = Some(Init::Assignment(config));
        self
    }

    /// Sets the initial state from a workload recipe, materialised against
    /// the topology's population at build time.
    pub fn distribution(mut self, dist: InitialDistribution) -> Self {
        self.init = Some(Init::Distribution(dist));
        self
    }

    /// Selects a synchronous-round protocol.
    pub fn protocol(mut self, proto: impl SyncProtocol + Send + 'static) -> Self {
        self.protocol = Some(Protocol::Sync(Box::new(proto)));
        self
    }

    /// Selects plain asynchronous gossip under `rule`.
    pub fn gossip(mut self, rule: GossipRule) -> Self {
        self.protocol = Some(Protocol::Gossip(rule));
        self
    }

    /// Selects the paper's full rapid protocol with `params`.
    pub fn rapid(mut self, params: Params) -> Self {
        self.protocol = Some(Protocol::Rapid(params));
        self
    }

    /// Selects a pre-built [`Protocol`] (useful when the protocol is
    /// chosen dynamically, e.g. across a comparison sweep).
    pub fn select(mut self, protocol: Protocol) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// Selects the simulation engine (default: [`EngineKind::Micro`]).
    ///
    /// [`SimBuilder::build_spec`] finalises the assembly for whichever
    /// kind was selected. The one kind-specific entry point,
    /// [`SimBuilder::build`] for [`EngineKind::Micro`], rejects a
    /// mismatched kind with [`BuildError::EngineMismatch`].
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// The engine kind this builder is currently set to (what
    /// [`SimBuilder::build_spec`] will dispatch on).
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// Sets the clock model for asynchronous protocols.
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Wraps the clock in exponential response delays at `delay_rate`
    /// (the discussion-section extension).
    pub fn jitter(mut self, delay_rate: f64) -> Self {
        self.jitter = Some(delay_rate);
        self
    }

    /// Sets the fault & adversary plan (asynchronous protocols only):
    /// per-message loss, per-edge latency distributions, node crash /
    /// rejoin schedules, and a budgeted opinion-corrupting adversary. A
    /// [neutral](FaultPlan::is_neutral) plan is equivalent — bit for bit —
    /// to not calling this at all.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the master seed. Every internal stream (scheduler, protocol,
    /// shuffle) derives from it, so one seed pins the whole run.
    pub fn seed(mut self, seed: Seed) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a stop condition (checked alongside the implicit unanimity
    /// check; conditions compose — the first to fire ends the run).
    pub fn stop(mut self, condition: StopCondition) -> Self {
        self.stops.push(condition);
        self
    }

    /// Randomly permutes the node–color assignment before the run
    /// (irrelevant on the complete graph; essential on structured ones).
    pub fn shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Makes every node freeze its color after this many of its own ticks
    /// (asynchronous gossip only — the endgame's finish line).
    pub fn halt_after(mut self, ticks: u64) -> Self {
        self.halt_after = Some(ticks);
        self
    }

    /// Selects the sharded epoch engine
    /// ([`crate::asynchronous::ShardedSim`]) for this micro run, with
    /// the shard worker count taken from `parallelism.shard_workers`.
    ///
    /// Setting this axis — even with one shard worker — switches the
    /// run from the sequential activation-at-a-time engines to the
    /// epoch engine, whose randomness comes from per-(epoch, node)
    /// child streams (`seed.child(7)`): results are bit-identical under
    /// any worker count, but *not* activation-for-activation identical
    /// to the unsharded engines (a documented, tested stream split; see
    /// the module docs of [`crate::asynchronous::sharded`]).
    ///
    /// The epoch engine supports asynchronous gossip and the rapid
    /// protocol on any topology, with [`Clock::Sequential`] or
    /// [`Clock::EventQueue`]; jitter, fault plans, per-node halt
    /// budgets and heterogeneous clocks are rejected at build time with
    /// [`BuildError::ShardedUnsupported`].
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Attaches an observability handle to the built engine.
    ///
    /// Engines with internal instrumentation (currently the sharded
    /// epoch engine) emit per-epoch [`TraceEvent`]s and update
    /// work-balance gauges through it; instrumentation is batched at
    /// epoch granularity and never samples RNG streams, so outcomes are
    /// bit-identical with and without a handle. Pair with an
    /// [`ObsObserver`] passed to [`Sim::run_with`] for the per-time-unit
    /// bias/phase trajectory.
    pub fn obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Validates the assembly and constructs the simulation.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the first inconsistency: a missing
    /// axis, an `n` mismatch, invalid parameters, or an unusable clock.
    pub fn build(self) -> Result<Sim, BuildError> {
        if self.engine != EngineKind::Micro {
            return Err(BuildError::EngineMismatch(
                "SimBuilder::build_spec (run via rapid_macro / rapid_net) for non-micro engines",
            ));
        }
        let topology = self.topology.ok_or(BuildError::MissingTopology)?;
        let n = topology.n();
        let init = self.init.ok_or(BuildError::MissingInitialState)?;
        let protocol = self.protocol.ok_or(BuildError::MissingProtocol)?;

        let mut config = match init {
            Init::Counts(counts) => {
                let config = Configuration::from_counts(&counts)?;
                if config.n() != n {
                    return Err(BuildError::SizeMismatch {
                        topology_n: n,
                        config_n: config.n(),
                    });
                }
                config
            }
            Init::Assignment(config) => {
                if config.n() != n {
                    return Err(BuildError::SizeMismatch {
                        topology_n: n,
                        config_n: config.n(),
                    });
                }
                config
            }
            Init::Distribution(dist) => Configuration::from_counts(&dist.counts(n as u64)?)?,
        };

        if let Protocol::Rapid(params) = &protocol {
            params.check().map_err(BuildError::InvalidParams)?;
        }
        match self.halt_after {
            None => {}
            Some(0) => return Err(BuildError::InvalidHaltBudget),
            Some(_) if !matches!(protocol, Protocol::Gossip(_)) => {
                return Err(BuildError::InvalidHaltBudget)
            }
            Some(_) => {}
        }
        if let Some(rate) = self.jitter {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(BuildError::InvalidJitter(rate));
            }
        }
        // Checked for every protocol — a misconfigured clock in a
        // sync-vs-async sweep should fail on the sync entrants too, not
        // only when the protocol axis flips to asynchronous.
        check_clock(&self.clock, n)?;
        // Fault plans are validated unconditionally, then a neutral plan
        // is dropped so the zero-fault path stays bit-identical to a
        // build without the axis.
        let faults = match self.faults {
            None => None,
            Some(plan) => {
                plan.check(n)?;
                if plan.is_neutral() {
                    None
                } else if matches!(protocol, Protocol::Sync(_)) {
                    return Err(BuildError::FaultsRequireAsync);
                } else {
                    Some(plan)
                }
            }
        };

        if self.shuffle {
            config.shuffle(&mut SimRng::from_seed_value(self.seed.child(2)));
        }

        // An explicit parallelism axis selects the sharded epoch engine
        // (even at one shard worker): same protocols, different —
        // documented and registry-declared — stream layout.
        if let Some(par) = self.parallelism {
            let proto = match protocol {
                Protocol::Gossip(rule) => ShardedProtocol::Gossip(rule),
                Protocol::Rapid(params) => {
                    ShardedProtocol::Rapid(crate::asynchronous::Schedule::new(params))
                }
                Protocol::Sync(_) => {
                    return Err(BuildError::ShardedUnsupported(
                        "synchronous protocols (epochs discretise the Poisson clock)",
                    ))
                }
            };
            if self.halt_after.is_some() {
                return Err(BuildError::ShardedUnsupported(
                    "per-node halt budgets (epoch merges carry no per-node tick counts)",
                ));
            }
            if self.jitter.is_some() {
                return Err(BuildError::ShardedUnsupported(
                    "jitter (response delays reorder activations across the epoch boundary)",
                ));
            }
            if faults.is_some() {
                return Err(BuildError::ShardedUnsupported(
                    "fault plans (crash/loss bookkeeping is per-activation, not per-epoch)",
                ));
            }
            let rate = match self.clock {
                Clock::Sequential(_) => 1.0,
                Clock::EventQueue { rate } => rate,
                Clock::UniformSkew { .. } | Clock::Rates(_) => {
                    return Err(BuildError::ShardedUnsupported(
                        "heterogeneous clock rates (every node draws one Poisson(rate·τ) count)",
                    ))
                }
            };
            let workers = par.shard_workers.resolve(n);
            let mut sim = ShardedSim::new(topology, config, proto, self.seed, rate, workers);
            if let Some(obs) = self.obs {
                sim.attach_obs(obs);
            }
            return Ok(Sim {
                engine: Engine::Sharded(Box::new(sim)),
                stops: self.stops,
            });
        }

        let engine = match protocol {
            Protocol::Sync(mut proto) => Engine::Sync {
                proto: {
                    proto.reset();
                    proto
                },
                topology,
                config,
                // Matches the stream a legacy caller gets from
                // `SimRng::from_seed_value(seed)`.
                rng: SimRng::from_seed_value(self.seed),
                rounds: 0,
            },
            Protocol::Gossip(rule) => {
                let source = build_source(&self.clock, self.jitter, faults.as_ref(), n, self.seed);
                let mut sim =
                    AsyncGossipSim::new(topology, config, rule, source, self.seed.child(1));
                if let Some(ticks) = self.halt_after {
                    sim = sim.with_halt_after(ticks);
                }
                if let Some(plan) = &faults {
                    sim = sim.with_faults(plan, self.seed.child(4));
                }
                Engine::Gossip(Box::new(sim))
            }
            Protocol::Rapid(params) => {
                let source = build_source(&self.clock, self.jitter, faults.as_ref(), n, self.seed);
                let mut sim = RapidSim::new(topology, config, params, source, self.seed.child(1));
                if let Some(plan) = &faults {
                    sim = sim.with_faults(plan, self.seed.child(4));
                }
                Engine::Rapid(Box::new(sim))
            }
        };

        Ok(Sim {
            engine,
            stops: self.stops,
        })
    }

    /// Validates the assembly and finalises it for whichever engine the
    /// builder selected, dispatching on [`SimBuilder::engine`].
    ///
    /// This is the single build entry point: it returns a [`Spec`] whose
    /// variant matches the engine kind — a ready-to-run [`Sim`] for
    /// [`EngineKind::Micro`], a pure-data [`MacroSpec`] for
    /// [`EngineKind::Macro`] / [`EngineKind::MeanField`] (executed by the
    /// `rapid-macro` crate), and a [`NetSpec`] for [`EngineKind::Net`]
    /// (executed by the `rapid-net` crate). The micro-only entry point
    /// [`SimBuilder::build`] applies exactly the same validation;
    /// `build_spec` merely removes the caller's obligation to pick the
    /// matching method.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the first inconsistency, exactly
    /// as the kind-specific builders do. [`BuildError::EngineMismatch`]
    /// can no longer arise from this method itself — the dispatch is the
    /// point — only from downstream consumers that received the wrong
    /// variant.
    pub fn build_spec(self) -> Result<Spec, BuildError> {
        match self.engine {
            EngineKind::Micro => self.build().map(Spec::Micro),
            EngineKind::Macro => self.finish_macro_spec().map(Spec::Macro),
            EngineKind::MeanField => self.finish_macro_spec().map(Spec::MeanField),
            EngineKind::Net => self.finish_net_spec().map(Spec::Net),
        }
    }

    /// Validates the assembly for a population-level engine
    /// ([`EngineKind::Macro`] or [`EngineKind::MeanField`]) and returns
    /// the pure-data [`MacroSpec`] the `rapid-macro` crate executes.
    ///
    /// Unlike [`SimBuilder::build`], no per-node state is materialised:
    /// the spec is `O(k)`, so `n = 10⁹` builds instantly. Macro semantics
    /// constrain the axes:
    ///
    /// * the topology must be the complete graph
    ///   ([`BuildError::MacroRequiresComplete`]);
    /// * the protocol must be asynchronous gossip or rapid, without a
    ///   per-node halt budget;
    /// * the clock must be exchangeable — [`Clock::Sequential`] or
    ///   [`Clock::EventQueue`]; skewed or per-node rates have no
    ///   count-level representation;
    /// * of the fault axis only per-message **loss** composes (it scales
    ///   every interaction identically); latency, churn and adversaries
    ///   are per-node / per-edge and are rejected
    ///   ([`BuildError::MacroUnsupported`]).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the first inconsistency.
    ///
    /// Engine-kind dispatch has already happened by the time this runs —
    /// [`SimBuilder::build_spec`] is the only caller.
    fn finish_macro_spec(self) -> Result<MacroSpec, BuildError> {
        let kind = self.engine;
        let topology = self.topology.ok_or(BuildError::MissingTopology)?;
        if !topology.is_complete() {
            return Err(BuildError::MacroRequiresComplete);
        }
        let n = topology.n() as u64;
        let init = self.init.ok_or(BuildError::MissingInitialState)?;
        let protocol = match self.protocol.ok_or(BuildError::MissingProtocol)? {
            Protocol::Gossip(rule) => MacroProtocol::Gossip(rule),
            Protocol::Rapid(params) => {
                params.check().map_err(BuildError::InvalidParams)?;
                MacroProtocol::Rapid(params)
            }
            Protocol::Sync(_) => {
                return Err(BuildError::MacroUnsupported(
                    "synchronous protocols (population dynamics model the Poisson-clock chain)",
                ))
            }
        };

        // Counts only — never a per-node assignment. (A caller-supplied
        // Configuration is accepted and reduced to its histogram: on the
        // complete graph the assignment carries no extra information.)
        let counts = match init {
            Init::Counts(counts) => {
                // Reuse the histogram validation without the O(n) colors vec.
                let c = crate::opinion::ColorCounts::from_counts(&counts)
                    .map_err(BuildError::Config)?;
                if c.n() != n {
                    return Err(BuildError::SizeMismatch {
                        topology_n: n as usize,
                        config_n: c.n() as usize,
                    });
                }
                counts
            }
            Init::Assignment(config) => {
                if config.n() as u64 != n {
                    return Err(BuildError::SizeMismatch {
                        topology_n: n as usize,
                        config_n: config.n(),
                    });
                }
                config.counts().as_slice().to_vec()
            }
            Init::Distribution(dist) => dist.counts(n)?,
        };

        if self.halt_after.is_some() {
            return Err(BuildError::MacroUnsupported(
                "per-node halt budgets (bucket state carries no per-node tick counts)",
            ));
        }
        if let Some(rate) = self.jitter {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(BuildError::InvalidJitter(rate));
            }
            return Err(BuildError::MacroUnsupported(
                "jitter (response delays reorder individual activations)",
            ));
        }
        check_clock(&self.clock, n as usize)?;
        let rate = match self.clock {
            Clock::Sequential(_) => 1.0,
            Clock::EventQueue { rate } => rate,
            Clock::UniformSkew { .. } | Clock::Rates(_) => {
                return Err(BuildError::MacroUnsupported(
                    "heterogeneous clock rates (buckets assume exchangeable nodes)",
                ))
            }
        };
        // Faults: validate the full plan, then keep only what composes.
        let loss = match self.faults {
            None => 0.0,
            Some(plan) => {
                plan.check(n as usize)?;
                if !plan.latency.is_none() {
                    return Err(BuildError::MacroUnsupported(
                        "latency models (per-edge delays reorder individual activations)",
                    ));
                }
                if !plan.churn.is_empty() {
                    return Err(BuildError::MacroUnsupported(
                        "churn (crash/rejoin schedules name individual nodes)",
                    ));
                }
                if plan.adversary.is_some_and(|a| a.budget > 0) {
                    return Err(BuildError::MacroUnsupported(
                        "adversaries (corruptions target individual nodes)",
                    ));
                }
                plan.loss
            }
        };

        // `shuffle` permutes the node–color assignment, which a histogram
        // cannot see: accept it silently, exactly like micro runs on the
        // complete graph where it is equally irrelevant.
        Ok(MacroSpec {
            kind,
            n,
            counts,
            protocol,
            rate,
            loss,
            seed: self.seed,
            stops: self.stops,
        })
    }

    /// Validates the assembly for the real message-passing runtime
    /// ([`EngineKind::Net`]) and returns the pure-data [`NetSpec`] the
    /// `rapid-net` crate executes.
    ///
    /// The runtime runs the same exchangeable protocol subset as the
    /// macro engine (asynchronous gossip or rapid), but on *any*
    /// topology and with the full per-node initial assignment. Axes that
    /// are simulator artifacts are rejected with
    /// [`BuildError::NetUnsupported`]:
    ///
    /// * synchronous protocols (a deployment has no round barrier);
    /// * `halt_after` budgets (termination is the gossiped beacon's job);
    /// * jitter and fault plans (a real transport's delays and losses
    ///   are observed, not injected);
    /// * skewed or per-node clock rates (each node runs one local
    ///   Poisson clock at the common rate);
    /// * [`StopCondition::FirstHalt`] and
    ///   [`StopCondition::RoundBudget`] (a deployment observes halts
    ///   only through messages, and has no rounds).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the first inconsistency.
    ///
    /// Engine-kind dispatch has already happened by the time this runs —
    /// [`SimBuilder::build_spec`] is the only caller.
    fn finish_net_spec(self) -> Result<NetSpec, BuildError> {
        let topology = self.topology.ok_or(BuildError::MissingTopology)?;
        let n = topology.n();
        let init = self.init.ok_or(BuildError::MissingInitialState)?;
        let protocol = match self.protocol.ok_or(BuildError::MissingProtocol)? {
            Protocol::Gossip(rule) => MacroProtocol::Gossip(rule),
            Protocol::Rapid(params) => {
                params.check().map_err(BuildError::InvalidParams)?;
                MacroProtocol::Rapid(params)
            }
            Protocol::Sync(_) => {
                return Err(BuildError::NetUnsupported(
                    "synchronous protocols (a deployment has no global round barrier)",
                ))
            }
        };

        let mut config = match init {
            Init::Counts(counts) => {
                let config = Configuration::from_counts(&counts)?;
                if config.n() != n {
                    return Err(BuildError::SizeMismatch {
                        topology_n: n,
                        config_n: config.n(),
                    });
                }
                config
            }
            Init::Assignment(config) => {
                if config.n() != n {
                    return Err(BuildError::SizeMismatch {
                        topology_n: n,
                        config_n: config.n(),
                    });
                }
                config
            }
            Init::Distribution(dist) => Configuration::from_counts(&dist.counts(n as u64)?)?,
        };

        if self.halt_after.is_some() {
            return Err(BuildError::NetUnsupported(
                "per-node halt budgets (termination is detected by the gossiped beacon)",
            ));
        }
        if let Some(rate) = self.jitter {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(BuildError::InvalidJitter(rate));
            }
            return Err(BuildError::NetUnsupported(
                "jitter (a real transport's response delays are observed, not modeled)",
            ));
        }
        check_clock(&self.clock, n)?;
        let rate = match self.clock {
            Clock::Sequential(_) => 1.0,
            Clock::EventQueue { rate } => rate,
            Clock::UniformSkew { .. } | Clock::Rates(_) => {
                return Err(BuildError::NetUnsupported(
                    "heterogeneous clock rates (every node runs one local Poisson clock)",
                ))
            }
        };
        if let Some(plan) = self.faults {
            plan.check(n)?;
            if !plan.is_neutral() {
                return Err(BuildError::NetUnsupported(
                    "fault plans (a deployment's losses and delays are real, not injected)",
                ));
            }
        }
        for stop in &self.stops {
            match stop {
                StopCondition::FirstHalt => {
                    return Err(BuildError::NetUnsupported(
                        "the first-halt stop (a deployment observes halts only via messages)",
                    ))
                }
                StopCondition::RoundBudget(_) => {
                    return Err(BuildError::NetUnsupported(
                        "round budgets (a deployment has no synchronous rounds)",
                    ))
                }
                StopCondition::TimeHorizon(_) | StopCondition::StepBudget(_) => {}
            }
        }

        if self.shuffle {
            config.shuffle(&mut SimRng::from_seed_value(self.seed.child(2)));
        }

        Ok(NetSpec {
            topology,
            config,
            protocol,
            rate,
            seed: self.seed,
            stops: self.stops,
        })
    }
}

/// Validates a clock configuration against the population size.
fn check_clock(clock: &Clock, n: usize) -> Result<(), BuildError> {
    match clock {
        Clock::Sequential(_) => {}
        Clock::EventQueue { rate } => {
            if !(rate.is_finite() && *rate > 0.0) {
                return Err(BuildError::InvalidClock(
                    "event-queue rate must be positive and finite",
                ));
            }
        }
        Clock::UniformSkew { skew } => {
            if !(0.0..1.0).contains(skew) {
                return Err(BuildError::InvalidClock("skew must lie in [0, 1)"));
            }
        }
        Clock::Rates(rates) => {
            if rates.len() != n {
                return Err(BuildError::RatesLength {
                    expected: n,
                    got: rates.len(),
                });
            }
            if rates.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
                return Err(BuildError::InvalidClock(
                    "every clock rate must be positive and finite",
                ));
            }
        }
    }
    Ok(())
}

/// Builds an activation source from a clock already vetted by
/// [`check_clock`] (and a fault plan already vetted by
/// [`FaultPlan::check`]).
///
/// Stream derivation is pinned: the scheduler uses `seed.child(0)`, the
/// jitter delay stream `seed.child(3)`, the fault layer `seed.child(4)`
/// and the fault latency stream `seed.child(5)` — so a builder run with
/// the default clock and no (or a neutral) fault plan reproduces the
/// historical streams byte for byte.
fn build_source(
    clock: &Clock,
    jitter: Option<f64>,
    faults: Option<&FaultPlan>,
    n: usize,
    seed: Seed,
) -> BoxedSource {
    let inner: BoxedSource = match clock {
        Clock::Sequential(mode) => {
            Box::new(SequentialScheduler::with_mode(n, seed.child(0), *mode))
        }
        Clock::EventQueue { rate } => Box::new(EventQueueScheduler::new(n, seed.child(0), *rate)),
        Clock::UniformSkew { skew } => Box::new(HeterogeneousScheduler::with_uniform_skew(
            n,
            *skew,
            seed.child(0),
        )),
        Clock::Rates(rates) => Box::new(HeterogeneousScheduler::new(rates.clone(), seed.child(0))),
    };
    let inner = match jitter {
        Some(rate) => Box::new(JitteredScheduler::new(inner, seed.child(3), rate)) as BoxedSource,
        None => inner,
    };
    match faults.map(|f| f.latency) {
        Some(model) if !model.is_none() => {
            Box::new(LatencyScheduler::new(inner, seed.child(5), model))
        }
        _ => inner,
    }
}

enum Engine {
    Sync {
        proto: Box<dyn SyncProtocol + Send>,
        topology: BoxedTopology,
        config: Configuration,
        rng: SimRng,
        rounds: u64,
    },
    Gossip(Box<AsyncGossipSim<BoxedTopology, BoxedSource>>),
    Rapid(Box<RapidSim<BoxedTopology, BoxedSource>>),
    Sharded(Box<ShardedSim>),
}

/// A fully assembled simulation, ready to run or single-step.
///
/// Construct with [`Sim::builder`]. The instrumentation accessors return
/// `None` when the underlying engine does not track that quantity (e.g.
/// working times exist only for the rapid protocol).
pub struct Sim {
    engine: Engine,
    stops: Vec<StopCondition>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let engine = match &self.engine {
            Engine::Sync { proto, .. } => proto.name(),
            Engine::Gossip(sim) => sim.rule().name(),
            Engine::Rapid(_) => "rapid",
            Engine::Sharded(sim) => match sim.protocol() {
                ShardedProtocol::Gossip(_) => "sharded-gossip",
                ShardedProtocol::Rapid(_) => "sharded-rapid",
            },
        };
        f.debug_struct("Sim")
            .field("engine", &engine)
            .field("n", &self.n())
            .field("steps", &self.steps())
            .field("stops", &self.stops)
            .finish()
    }
}

impl Sim {
    /// Starts assembling a simulation.
    pub fn builder() -> SimBuilder {
        SimBuilder::new()
    }

    /// Unwraps the underlying rapid-protocol engine, if that protocol was
    /// selected (for callers that want to drive it tick by tick).
    pub fn into_rapid(self) -> Option<RapidSim<BoxedTopology, BoxedSource>> {
        match self.engine {
            Engine::Rapid(sim) => Some(*sim),
            _ => None,
        }
    }

    /// Unwraps the underlying gossip engine, if a gossip rule was
    /// selected (for callers that want to drive it tick by tick).
    pub fn into_gossip(self) -> Option<AsyncGossipSim<BoxedTopology, BoxedSource>> {
        match self.engine {
            Engine::Gossip(sim) => Some(*sim),
            _ => None,
        }
    }

    /// The current configuration.
    pub fn config(&self) -> &Configuration {
        match &self.engine {
            Engine::Sync { config, .. } => config,
            Engine::Gossip(sim) => sim.config(),
            Engine::Rapid(sim) => sim.config(),
            Engine::Sharded(sim) => sim.config(),
        }
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.config().n()
    }

    /// Engine steps so far (rounds for synchronous protocols, activations
    /// for asynchronous ones).
    pub fn steps(&self) -> u64 {
        match &self.engine {
            Engine::Sync { rounds, .. } => *rounds,
            Engine::Gossip(sim) => sim.steps(),
            Engine::Rapid(sim) => sim.steps(),
            Engine::Sharded(sim) => sim.steps(),
        }
    }

    /// Rounds so far, for synchronous protocols.
    pub fn rounds(&self) -> Option<u64> {
        match &self.engine {
            Engine::Sync { rounds, .. } => Some(*rounds),
            _ => None,
        }
    }

    /// Simulation time, for asynchronous engines.
    pub fn now(&self) -> Option<SimTime> {
        match &self.engine {
            Engine::Sync { .. } => None,
            Engine::Gossip(sim) => Some(sim.now()),
            Engine::Rapid(sim) => Some(sim.now()),
            Engine::Sharded(sim) => Some(sim.now()),
        }
    }

    /// When the first node halted, if the dynamic halts.
    pub fn first_halt(&self) -> Option<SimTime> {
        match &self.engine {
            Engine::Sync { .. } => None,
            Engine::Gossip(sim) => sim.first_halt(),
            Engine::Rapid(sim) => sim.first_halt(),
            Engine::Sharded(sim) => sim.first_halt(),
        }
    }

    /// How many nodes have halted, for dynamics that halt.
    pub fn halted_count(&self) -> Option<usize> {
        match &self.engine {
            Engine::Sync { .. } => None,
            Engine::Gossip(sim) => Some(sim.halted_count()),
            Engine::Rapid(sim) => Some(sim.halted_count()),
            Engine::Sharded(sim) => Some(sim.halted_count()),
        }
    }

    /// Per-node working times (rapid protocol only).
    pub fn working_times(&self) -> Option<Vec<u64>> {
        match &self.engine {
            Engine::Rapid(sim) => Some(sim.working_times()),
            Engine::Sharded(sim) => sim.working_times(),
            _ => None,
        }
    }

    /// Working-time spread statistics (rapid protocol only).
    pub fn working_time_stats(&self, tolerance: u64) -> Option<WorkingTimeStats> {
        match &self.engine {
            Engine::Rapid(sim) => Some(sim.working_time_stats(tolerance)),
            Engine::Sharded(sim) => {
                let mut wts = sim.working_times()?;
                Some(WorkingTimeStats::from_times(&mut wts, tolerance))
            }
            _ => None,
        }
    }

    /// Median working time (rapid protocol only).
    pub fn median_working_time(&self) -> Option<u64> {
        match &self.engine {
            Engine::Rapid(sim) => Some(sim.median_working_time()),
            Engine::Sharded(sim) => {
                let mut wts = sim.working_times()?;
                wts.sort_unstable();
                Some(wts[wts.len() / 2])
            }
            _ => None,
        }
    }

    /// Color histogram over the bit-set nodes (rapid protocol only).
    pub fn bit_composition(&self) -> Option<Vec<u64>> {
        match &self.engine {
            Engine::Rapid(sim) => Some(sim.bit_composition()),
            Engine::Sharded(sim) => sim.bit_composition(),
            _ => None,
        }
    }

    /// Sync-Gadget jumps so far (rapid protocol only).
    pub fn jump_count(&self) -> Option<u64> {
        match &self.engine {
            Engine::Rapid(sim) => Some(sim.jump_count()),
            Engine::Sharded(sim) if matches!(sim.protocol(), ShardedProtocol::Rapid(_)) => {
                Some(sim.jump_count())
            }
            _ => None,
        }
    }

    /// Largest working-time displacement any jump caused (rapid protocol
    /// only).
    pub fn max_jump_displacement(&self) -> Option<u64> {
        match &self.engine {
            Engine::Rapid(sim) => Some(sim.max_jump_displacement()),
            Engine::Sharded(sim) if matches!(sim.protocol(), ShardedProtocol::Rapid(_)) => {
                Some(sim.max_jump_displacement())
            }
            _ => None,
        }
    }

    /// The generous fallback budget used when no explicit stop condition
    /// is configured: the rapid protocol's schedule-derived budget, or a
    /// population-scaled cap for open-ended dynamics.
    pub fn default_budget(&self) -> u64 {
        match &self.engine {
            Engine::Sync { config, .. } => (config.n() as u64 * 64).max(100_000),
            Engine::Gossip(sim) => {
                let n = sim.config().n() as u64;
                let ln_n = (n.max(2) as f64).ln();
                (n as f64 * (ln_n + 1.0) * 200.0) as u64
            }
            Engine::Rapid(sim) => sim.default_step_budget(),
            Engine::Sharded(sim) => sim.default_step_budget(),
        }
    }

    /// Executes one engine step: one full round for synchronous
    /// protocols, one activation for asynchronous ones.
    pub fn step(&mut self) {
        match &mut self.engine {
            Engine::Sync {
                proto,
                topology,
                config,
                rng,
                rounds,
            } => {
                proto.round(&**topology, config, rng);
                *rounds += 1;
            }
            Engine::Gossip(sim) => {
                sim.tick();
            }
            Engine::Rapid(sim) => {
                sim.tick();
            }
            // One "step" of the epoch engine is one τ-sized epoch (≈ one
            // expected activation per node), not a single activation.
            Engine::Sharded(sim) => {
                sim.run_epoch();
            }
        }
    }

    /// Runs to completion without observers. See [`Sim::run_observed`].
    pub fn run(&mut self) -> Outcome {
        self.run_with(&mut [])
    }

    /// Runs to completion, delivering [`Progress`] snapshots to one
    /// observer (after the initial state and after every round / time
    /// unit).
    pub fn run_observed(&mut self, observer: &mut dyn Observer) -> Outcome {
        let mut observers: [&mut dyn Observer; 1] = [observer];
        self.run_with(&mut observers)
    }

    /// Executes one engine step and reports the unanimous color if that
    /// step produced unanimity, using each engine's cheapest check: the
    /// rapid protocol only tests the ticked node's (possibly new) color —
    /// the legacy O(1) fast path — while round/tick engines scan the
    /// histogram exactly as their legacy drivers did.
    fn step_checked(&mut self) -> Option<Color> {
        match &mut self.engine {
            Engine::Sync {
                proto,
                topology,
                config,
                rng,
                rounds,
            } => {
                proto.round(&**topology, config, rng);
                *rounds += 1;
                config.unanimous()
            }
            Engine::Gossip(sim) => {
                sim.tick();
                sim.config().unanimous()
            }
            // Epoch granularity: the O(k) histogram scan once per epoch
            // is far cheaper than any per-activation check.
            Engine::Sharded(sim) => {
                sim.run_epoch();
                sim.config().counts().unanimous()
            }
            Engine::Rapid(sim) => {
                let (a, action) = sim.tick();
                // Only color-changing actions — or an adversary strike,
                // which recolors outside any action — can create
                // unanimity.
                if action.changes_color() || sim.adversary_struck() {
                    let cu = sim.config().color(a.node);
                    if sim.config().counts().count(cu) == sim.config().n() as u64 {
                        return Some(cu);
                    }
                }
                None
            }
        }
    }

    /// Runs to completion with any number of observers.
    pub fn run_with(&mut self, observers: &mut [&mut dyn Observer]) -> Outcome {
        let n = self.n() as u64;
        let cadence = match self.engine {
            Engine::Sync { .. } => 1,
            _ => n,
        };
        // Only budget-like stops replace the fallback budget; FirstHalt can
        // never fire on some assemblies (sync engines, gossip without a
        // halt budget) and must not remove the safety net.
        let explicit = self.stops.iter().any(|s| {
            matches!(
                s,
                StopCondition::TimeHorizon(_)
                    | StopCondition::StepBudget(_)
                    | StopCondition::RoundBudget(_)
            )
        });
        let default_budget = self.default_budget();
        let start_steps = self.steps();
        let mut last_notified = start_steps;

        self.notify(observers);
        let reason = loop {
            if self.steps() == start_steps {
                // A run may start unanimous; steps never ran.
                if let Some(winner) = self.config().unanimous() {
                    break (StopReason::Unanimity, Some(winner));
                }
            }
            if let Some(reason) = self.stop_reason(start_steps) {
                break (reason, None);
            }
            if !explicit && self.steps() - start_steps >= default_budget {
                break (StopReason::DefaultBudget, None);
            }
            let winner = self.step_checked();
            if (self.steps() - start_steps).is_multiple_of(cadence) {
                self.notify(observers);
                last_notified = self.steps();
            }
            if let Some(winner) = winner {
                break (StopReason::Unanimity, Some(winner));
            }
        };
        // Observers always see the terminal state, even when the run ends
        // off the cadence (async runs rarely finish on a multiple of n).
        if !observers.is_empty() && last_notified != self.steps() {
            self.notify(observers);
        }
        self.outcome(reason.0, reason.1)
    }

    /// Runs to completion, demanding unanimity.
    ///
    /// # Errors
    ///
    /// * [`ConvergenceError::AllHaltedWithoutConsensus`] if every node
    ///   froze first;
    /// * [`ConvergenceError::BudgetExhausted`] if any other stop fired
    ///   before unanimity.
    pub fn run_to_consensus(&mut self) -> Result<Outcome, ConvergenceError> {
        let outcome = self.run();
        match outcome.stop {
            StopReason::Unanimity => Ok(outcome),
            StopReason::AllHalted => Err(ConvergenceError::AllHaltedWithoutConsensus),
            _ => Err(ConvergenceError::BudgetExhausted {
                budget: outcome.steps,
            }),
        }
    }

    fn notify(&self, observers: &mut [&mut dyn Observer]) {
        if observers.is_empty() {
            return;
        }
        let working_times = match &self.engine {
            Engine::Rapid(sim) => Some(sim.working_times()),
            Engine::Sharded(sim) => sim.working_times(),
            _ => None,
        };
        let progress = Progress {
            steps: self.steps(),
            rounds: self.rounds(),
            time: self.now(),
            config: self.config(),
            working_times: working_times.as_deref(),
        };
        for observer in observers.iter_mut() {
            observer.observe(&progress);
        }
    }

    /// Checks the configured stop conditions (and the halted population).
    /// Budget-style conditions count steps executed since `start_steps`,
    /// so a manually pre-stepped simulation still gets its full budget.
    fn stop_reason(&self, start_steps: u64) -> Option<StopReason> {
        let n = self.n();
        let all_halted = match &self.engine {
            Engine::Sync { .. } => false,
            Engine::Gossip(sim) => sim.halted_count() == n,
            Engine::Rapid(sim) => sim.halted_count() == n,
            Engine::Sharded(sim) => sim.halted_count() == n,
        };
        if all_halted {
            return Some(StopReason::AllHalted);
        }
        let steps_run = self.steps() - start_steps;
        for stop in &self.stops {
            let fired = match *stop {
                StopCondition::TimeHorizon(horizon) => match self.now() {
                    Some(now) => now >= horizon,
                    // Synchronous protocols: one round = one time unit.
                    None => SimTime::from_secs(self.steps() as f64) >= horizon,
                },
                StopCondition::StepBudget(budget) => steps_run >= budget,
                // Sync engines: one step = one round.
                StopCondition::RoundBudget(budget) => match self.rounds() {
                    Some(_) => steps_run >= budget,
                    None => steps_run >= budget.saturating_mul(n as u64),
                },
                StopCondition::FirstHalt => self.first_halt().is_some(),
            };
            if fired {
                return Some(match *stop {
                    StopCondition::TimeHorizon(_) => StopReason::TimeHorizon,
                    StopCondition::StepBudget(_) => StopReason::StepBudget,
                    StopCondition::RoundBudget(_) => StopReason::RoundBudget,
                    StopCondition::FirstHalt => StopReason::FirstHalt,
                });
            }
        }
        None
    }

    fn outcome(&self, stop: StopReason, winner: Option<Color>) -> Outcome {
        // Theorem 1.3's success event: unanimity strictly before the first
        // halt. Defined only for engines that halt, and false whenever the
        // run ended without unanimity.
        let success = stop == StopReason::Unanimity
            && match self.first_halt() {
                None => true,
                // lint: allow(panic-hygiene): first_halt is only set by halting engines, which always carry virtual time
                Some(halt) => self.now().expect("halting engines are asynchronous") < halt,
            };
        let before_first_halt = match &self.engine {
            Engine::Sync { .. } => None,
            Engine::Gossip(sim) => sim.halt_budget().map(|_| success),
            Engine::Rapid(_) => Some(success),
            // Sharded gossip has no halt budget; sharded rapid halts by
            // schedule, exactly like the sequential engine.
            Engine::Sharded(sim) => match sim.protocol() {
                ShardedProtocol::Gossip(_) => None,
                ShardedProtocol::Rapid(_) => Some(success),
            },
        };
        Outcome {
            stop,
            winner,
            steps: self.steps(),
            rounds: self.rounds(),
            time: self.now(),
            first_halt: self.first_halt(),
            before_first_halt,
            final_counts: self.config().counts().as_slice().to_vec(),
        }
    }
}
