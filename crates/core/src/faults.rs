//! Opinion-level fault hooks shared by both asynchronous engines.
//!
//! The mechanics of the fault layer (loss draws, churn transitions,
//! strike scheduling) live in [`rapid_sim::fault`]; this module supplies
//! the one piece that needs to see opinions: turning an adversary strike
//! into a concrete corruption of the [`Configuration`].

use rapid_sim::fault::{AdversaryKind, FaultState};
use rapid_sim::node::NodeId;
use rapid_sim::time::SimTime;

use crate::opinion::{Color, Configuration};

/// Advances the fault layer to `now` and applies any adversary strikes
/// that came due, returning how many were applied. Called by the engines
/// at the top of every tick; a `None` fault layer is a no-op. The strike
/// count matters to the engines' unanimity fast paths: a corruption can
/// create unanimity outside any color-changing protocol action.
pub(crate) fn pre_tick(
    faults: &mut Option<FaultState>,
    config: &mut Configuration,
    now: SimTime,
) -> u64 {
    let Some(f) = faults.as_mut() else { return 0 };
    f.advance_to(now);
    let strikes = f.adversary_due(now);
    for _ in 0..strikes {
        corrupt_one(config, f);
    }
    strikes
}

/// Performs one adversary corruption, drawing any randomness from the
/// fault layer's dedicated stream.
fn corrupt_one(config: &mut Configuration, f: &mut FaultState) {
    // lint: allow(panic-hygiene): strikes are only scheduled when the plan configures an adversary
    match f.adversary_kind().expect("a strike implies an adversary") {
        AdversaryKind::Oblivious => {
            // Blind: random node, random color, no peek at the state.
            let node = NodeId::new(f.rng_mut().bounded_usize(config.n()));
            let color = Color::new(f.rng_mut().bounded_usize(config.k()));
            config.set_color(node, color);
        }
        AdversaryKind::Adaptive => {
            // Late adversary: flip a node holding the current plurality
            // color to the current runner-up. Scan from a random start so
            // repeated strikes don't always hit the same node.
            let top = config.counts().top_two();
            let n = config.n();
            let start = f.rng_mut().bounded_usize(n);
            for off in 0..n {
                let u = NodeId::new((start + off) % n);
                if config.color(u) == top.leader {
                    config.set_color(u, top.runner_up);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::fault::{AdversaryPlan, FaultPlan};
    use rapid_sim::rng::Seed;

    fn state(kind: AdversaryKind, budget: u64) -> FaultState {
        let plan = FaultPlan::none().with_adversary(AdversaryPlan {
            kind,
            budget,
            start: SimTime::ZERO,
            interval: 1.0,
        });
        FaultState::new(&plan, 10, Seed::new(1))
    }

    #[test]
    fn oblivious_corruption_keeps_population_size() {
        let mut config = Configuration::from_counts(&[6, 4]).expect("valid");
        let mut f = state(AdversaryKind::Oblivious, 8);
        for _ in 0..8 {
            corrupt_one(&mut config, &mut f);
        }
        assert_eq!(config.counts().n(), 10);
    }

    #[test]
    fn adaptive_corruption_moves_leader_support_to_the_runner_up() {
        let mut config = Configuration::from_counts(&[7, 3]).expect("valid");
        let mut f = state(AdversaryKind::Adaptive, 2);
        corrupt_one(&mut config, &mut f);
        corrupt_one(&mut config, &mut f);
        assert_eq!(config.counts().count(Color::new(0)), 5);
        assert_eq!(config.counts().count(Color::new(1)), 5);
    }

    #[test]
    fn pre_tick_without_faults_is_a_no_op() {
        let mut config = Configuration::from_counts(&[6, 4]).expect("valid");
        let before = config.clone();
        pre_tick(&mut None, &mut config, SimTime::from_secs(10.0));
        assert_eq!(config, before);
    }

    #[test]
    fn pre_tick_applies_due_strikes() {
        let mut config = Configuration::from_counts(&[8, 2]).expect("valid");
        let mut faults = Some(state(AdversaryKind::Adaptive, 3));
        pre_tick(&mut faults, &mut config, SimTime::from_secs(2.5));
        // Strikes at 0, 1, 2 have fired; the budget is spent.
        assert_eq!(config.counts().count(Color::new(0)), 5);
        assert_eq!(faults.as_ref().expect("set").adversary_budget_left(), 0);
    }
}
