//! # Rapid Asynchronous Plurality Consensus
//!
//! A faithful implementation of the protocols in:
//!
//! > Robert Elsässer, Tom Friedetzky, Dominik Kaaser, Frederik
//! > Mallmann-Trenn, Horst Trinker. *Brief Announcement: Rapid Asynchronous
//! > Plurality Consensus.* PODC 2017. DOI 10.1145/3087801.3087860.
//!
//! **Setting.** `n` nodes on the complete graph hold one of `k` opinions
//! with supports `c_1 ≥ c_2 ≥ … ≥ c_k`; the goal is for every node to adopt
//! the plurality opinion `C_1`, with high probability, by gossiping with
//! uniformly sampled nodes.
//!
//! **What's here.**
//!
//! * [`sync`] — the synchronous protocols: [`sync::TwoChoices`]
//!   (Theorem 1.1: `O(n/c_1 · log n)` rounds, but `Ω(k)` in general),
//!   [`sync::OneExtraBit`] (Theorem 1.2: polylogarithmic via an extra bit
//!   and Bit-Propagation), and the [`sync::Voter`] / [`sync::ThreeMajority`]
//!   baselines.
//! * [`asynchronous`] — the paper's headline contribution
//!   ([`asynchronous::RapidSim`]): nodes driven by Poisson clocks schedule
//!   Two-Choices, Bit-Propagation and Sync-Gadget sub-phases by *working
//!   time*, achieving consensus in `Θ(log n)` time (Theorem 1.3) despite
//!   asynchrony; plus plain asynchronous gossip
//!   ([`asynchronous::AsyncGossipSim`]) as baseline and endgame.
//! * [`opinion`] — colors, histograms, configurations.
//! * [`convergence`] — outcome and error types.
//!
//! * [`facade`] — the unified [`Sim`] builder: one entry
//!   point composing any topology, initial state, protocol, clock model,
//!   fault plan and stop conditions into a run with one serialisable
//!   [`Outcome`]. The fault axis
//!   ([`rapid_sim::fault::FaultPlan`]) adds message loss, edge latency,
//!   churn and budgeted adversaries to both asynchronous engines.
//!
//! # Quickstart
//!
//! ```
//! use rapid_core::prelude::*;
//! use rapid_graph::prelude::*;
//! use rapid_sim::prelude::*;
//!
//! // 1024 nodes, 4 opinions; the plurality leads by a (1+ε) factor.
//! let counts = [340u64, 228, 228, 228];
//! let out = Sim::builder()
//!     .topology(Complete::new(1024))
//!     .counts(&counts)
//!     .rapid(Params::for_network(1024, 4))
//!     .seed(Seed::new(7))
//!     .build()
//!     .expect("valid experiment")
//!     .run_to_consensus()
//!     .expect("converges");
//! assert_eq!(out.winner, Some(Color::new(0))); // plurality wins
//! assert_eq!(out.before_first_halt, Some(true)); // …before anyone halts
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod asynchronous;
pub mod convergence;
pub mod distributions;
pub mod facade;
mod faults;
pub mod opinion;
pub mod sync;

pub use asynchronous::{
    Action, AsyncGossipSim, GossipRule, NodeState, Params, RapidOutcome, RapidSim, Schedule,
    ShardedProtocol, ShardedSim,
};
pub use convergence::{AsyncOutcome, ConvergenceError, SyncOutcome};
pub use distributions::{theorem_11_gap, theorem_12_gap, DistributionError, InitialDistribution};
pub use facade::{
    BuildError, Clock, EngineKind, MacroProtocol, MacroSpec, NetSpec, ObsObserver, Observer,
    Outcome, Progress, Protocol, Sim, SimBuilder, Spec, SpreadTrace, StopCondition, StopReason,
};
pub use opinion::{Color, ColorCounts, ConfigError, Configuration, TopTwo};
pub use sync::{OneExtraBit, OneExtraBitParams, SyncProtocol, ThreeMajority, TwoChoices, Voter};

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::asynchronous::gossip::{AsyncGossipSim, GossipRule};
    pub use crate::asynchronous::params::Params;
    pub use crate::asynchronous::rapid::{RapidOutcome, RapidSim};
    pub use crate::asynchronous::schedule::{Action, Schedule};
    pub use crate::convergence::{AsyncOutcome, ConvergenceError, SyncOutcome};
    pub use crate::distributions::{DistributionError, InitialDistribution};
    pub use crate::facade::{
        BuildError, Clock, EngineKind, MacroProtocol, MacroSpec, NetSpec, ObsObserver, Observer,
        Outcome, Progress, Protocol, Sim, SimBuilder, Spec, SpreadTrace, StopCondition, StopReason,
    };
    pub use crate::opinion::{Color, ColorCounts, Configuration, TopTwo};
    pub use crate::sync::engine::{run_sync_traced, RoundTrace, SyncProtocol};
    pub use crate::sync::one_extra_bit::{OneExtraBit, OneExtraBitParams};
    pub use crate::sync::three_majority::ThreeMajority;
    pub use crate::sync::two_choices::TwoChoices;
    pub use crate::sync::voter::Voter;
}
