//! Opinions (colors) and population configurations.
//!
//! The paper's setting: `n` nodes, `k` opinions `C_1 … C_k` with support
//! counts `c_1 ≥ c_2 ≥ … ≥ c_k`. [`Color`] identifies an opinion,
//! [`ColorCounts`] is the support histogram, and [`Configuration`] is the
//! full per-node assignment with incrementally maintained counts.

use rapid_sim::node::NodeId;
use rapid_sim::rng::SimRng;

/// An opinion ("color") `C_j`, identified by a dense index `0..k`.
///
/// By convention throughout this workspace, **color 0 is the initial
/// plurality opinion `C_1`** (workload generators order counts descending).
///
/// # Example
///
/// ```
/// use rapid_core::opinion::Color;
/// let c = Color::new(2);
/// assert_eq!(c.index(), 2);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Color(u32);

impl Color {
    /// Creates a color from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 32 bits.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "color index out of range");
        Color(index as u32)
    }

    /// Returns the dense index of this color.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Color {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // 1-based in display to match the paper's C_1 … C_k.
        write!(f, "C{}", self.0 + 1)
    }
}

/// The support histogram: how many nodes hold each color.
///
/// # Example
///
/// ```
/// use rapid_core::opinion::{Color, ColorCounts};
/// let counts = ColorCounts::from_counts(&[50, 30, 20]).expect("non-empty");
/// assert_eq!(counts.n(), 100);
/// assert_eq!(counts.count(Color::new(0)), 50);
/// let top = counts.top_two();
/// assert_eq!(top.leader, Color::new(0));
/// assert_eq!(top.gap(), 20);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColorCounts {
    counts: Vec<u64>,
    n: u64,
}

/// The two most supported colors and their counts.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TopTwo {
    /// The most supported color (ties broken by smallest index).
    pub leader: Color,
    /// Support of the leader (`c_1`).
    pub c1: u64,
    /// The second most supported color.
    pub runner_up: Color,
    /// Support of the runner-up (`c_2`).
    pub c2: u64,
}

impl TopTwo {
    /// The additive bias `c_1 − c_2`.
    pub fn gap(&self) -> u64 {
        self.c1 - self.c2
    }

    /// The multiplicative bias `c_1 / c_2` (∞ if `c_2 = 0`).
    pub fn ratio(&self) -> f64 {
        if self.c2 == 0 {
            f64::INFINITY
        } else {
            self.c1 as f64 / self.c2 as f64
        }
    }

    /// Whether the plurality is strict (`c_1 > c_2`).
    pub fn is_strict(&self) -> bool {
        self.c1 > self.c2
    }
}

/// Error constructing a [`ColorCounts`] or [`Configuration`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The population must be non-empty.
    EmptyPopulation,
    /// At least two colors are required.
    TooFewColors,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyPopulation => write!(f, "population must be non-empty"),
            ConfigError::TooFewColors => write!(f, "at least two colors are required"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ColorCounts {
    /// Creates a histogram from per-color counts.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TooFewColors`] for fewer than two colors and
    /// [`ConfigError::EmptyPopulation`] if all counts are zero.
    pub fn from_counts(counts: &[u64]) -> Result<Self, ConfigError> {
        if counts.len() < 2 {
            return Err(ConfigError::TooFewColors);
        }
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return Err(ConfigError::EmptyPopulation);
        }
        Ok(ColorCounts {
            counts: counts.to_vec(),
            n,
        })
    }

    /// Number of colors `k` (including colors with zero support).
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// Population size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Support of one color.
    ///
    /// # Panics
    ///
    /// Panics if the color is out of range.
    pub fn count(&self, c: Color) -> u64 {
        self.counts[c.index()]
    }

    /// All per-color counts.
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }

    /// Support fraction of one color.
    ///
    /// # Panics
    ///
    /// Panics if the color is out of range.
    pub fn fraction(&self, c: Color) -> f64 {
        self.counts[c.index()] as f64 / self.n as f64
    }

    /// The two most supported colors (ties broken by smallest index).
    pub fn top_two(&self) -> TopTwo {
        debug_assert!(self.counts.len() >= 2);
        let (mut i1, mut c1) = (0usize, self.counts[0]);
        let (mut i2, mut c2) = (usize::MAX, 0u64);
        for (i, &c) in self.counts.iter().enumerate().skip(1) {
            if c > c1 {
                i2 = i1;
                c2 = c1;
                i1 = i;
                c1 = c;
            } else if i2 == usize::MAX || c > c2 {
                i2 = i;
                c2 = c;
            }
        }
        TopTwo {
            leader: Color::new(i1),
            c1,
            runner_up: Color::new(i2),
            c2,
        }
    }

    /// The color held by every node, if the configuration is unanimous.
    pub fn unanimous(&self) -> Option<Color> {
        self.counts
            .iter()
            .position(|&c| c == self.n)
            .map(Color::new)
    }

    /// Number of colors with non-zero support.
    pub fn support_size(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Applies a signed per-color delta in one batch.
    ///
    /// This is the sharded engine's epoch merge: workers accumulate
    /// `(-1, +1)` transfers locally and the merge commits them here, so
    /// the histogram stays exact without per-activation synchronisation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via the overflow check) if a delta would
    /// drive a count negative — that would mean a worker recorded a
    /// transfer from a color its nodes never held.
    pub(crate) fn apply_delta(&mut self, delta: &[i64]) {
        debug_assert_eq!(delta.len(), self.counts.len(), "delta arity");
        for (c, &d) in self.counts.iter_mut().zip(delta) {
            *c = c
                .checked_add_signed(d)
                // lint: allow(panic-hygiene): a negative count means a shard recorded an impossible transfer -- state is corrupt
                .expect("epoch merge drove a color count negative");
        }
    }

    fn transfer(&mut self, from: Color, to: Color) {
        if from == to {
            return;
        }
        debug_assert!(self.counts[from.index()] > 0);
        self.counts[from.index()] -= 1;
        self.counts[to.index()] += 1;
    }
}

/// A full population configuration: each node's color, plus the histogram.
///
/// Color changes go through [`Configuration::set_color`], which keeps the
/// histogram consistent in O(1).
///
/// # Example
///
/// ```
/// use rapid_core::opinion::{Color, Configuration};
/// use rapid_sim::prelude::*;
///
/// let mut config = Configuration::from_counts(&[3, 2]).expect("valid");
/// assert_eq!(config.n(), 5);
/// assert_eq!(config.color(NodeId::new(0)), Color::new(0));
/// config.set_color(NodeId::new(0), Color::new(1));
/// assert_eq!(config.counts().count(Color::new(1)), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Configuration {
    colors: Vec<Color>,
    counts: ColorCounts,
}

impl Configuration {
    /// Builds a configuration where the first `counts[0]` nodes hold color
    /// 0, the next `counts[1]` hold color 1, and so on.
    ///
    /// On the complete graph the arrangement is irrelevant; for other
    /// topologies call [`Configuration::shuffle`] afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from [`ColorCounts::from_counts`].
    pub fn from_counts(counts: &[u64]) -> Result<Self, ConfigError> {
        let histogram = ColorCounts::from_counts(counts)?;
        let mut colors = Vec::with_capacity(histogram.n() as usize);
        for (j, &c) in counts.iter().enumerate() {
            colors.extend(std::iter::repeat_n(Color::new(j), c as usize));
        }
        Ok(Configuration {
            colors,
            counts: histogram,
        })
    }

    /// Builds a configuration from an explicit per-node assignment.
    ///
    /// `k` fixes the number of colors (assignments must be `< k`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyPopulation`] for an empty assignment or
    /// [`ConfigError::TooFewColors`] for `k < 2`.
    ///
    /// # Panics
    ///
    /// Panics if any assigned color is `≥ k`.
    pub fn from_assignment(colors: Vec<Color>, k: usize) -> Result<Self, ConfigError> {
        if colors.is_empty() {
            return Err(ConfigError::EmptyPopulation);
        }
        if k < 2 {
            return Err(ConfigError::TooFewColors);
        }
        let mut counts = vec![0u64; k];
        for &c in &colors {
            assert!(c.index() < k, "color {c} out of range for k={k}");
            counts[c.index()] += 1;
        }
        Ok(Configuration {
            colors,
            counts: ColorCounts {
                counts,
                n: 0, // fixed below
            },
        })
        .map(|mut cfg| {
            cfg.counts.n = cfg.colors.len() as u64;
            cfg
        })
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        self.colors.len()
    }

    /// Number of colors `k`.
    pub fn k(&self) -> usize {
        self.counts.k()
    }

    /// The color of one node.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn color(&self, u: NodeId) -> Color {
        self.colors[u.index()]
    }

    /// All per-node colors.
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// The support histogram.
    pub fn counts(&self) -> &ColorCounts {
        &self.counts
    }

    /// Sets the color of `u`, maintaining the histogram.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `c` is out of range.
    #[inline]
    pub fn set_color(&mut self, u: NodeId, c: Color) {
        assert!(c.index() < self.k(), "color {c} out of range");
        let old = self.colors[u.index()];
        self.counts.transfer(old, c);
        self.colors[u.index()] = c;
    }

    /// Splits the configuration into independent mutable borrows of the
    /// per-node colors and the histogram.
    ///
    /// Only the sharded epoch engine uses this: workers write disjoint
    /// slices of the color vector while the histogram is updated once
    /// per epoch from the merged count deltas ([`ColorCounts::apply_delta`]).
    /// Callers are responsible for keeping the two halves consistent.
    pub(crate) fn split_mut(&mut self) -> (&mut [Color], &mut ColorCounts) {
        (&mut self.colors, &mut self.counts)
    }

    /// Randomly permutes the node–color assignment (Fisher–Yates).
    pub fn shuffle(&mut self, rng: &mut SimRng) {
        for i in (1..self.colors.len()).rev() {
            let j = rng.bounded_usize(i + 1);
            self.colors.swap(i, j);
        }
    }

    /// Replaces every node's color from a snapshot vector, rebuilding the
    /// histogram (used by synchronous engines after a simultaneous update).
    ///
    /// # Panics
    ///
    /// Panics if `new_colors` has the wrong length or contains an
    /// out-of-range color.
    pub fn replace_all(&mut self, new_colors: &[Color]) {
        assert_eq!(new_colors.len(), self.colors.len(), "length mismatch");
        let k = self.k();
        let mut counts = vec![0u64; k];
        for &c in new_colors {
            assert!(c.index() < k, "color {c} out of range");
            counts[c.index()] += 1;
        }
        self.colors.copy_from_slice(new_colors);
        self.counts = ColorCounts {
            counts,
            n: self.colors.len() as u64,
        };
    }

    /// Whether all nodes hold the same color (and which).
    pub fn unanimous(&self) -> Option<Color> {
        self.counts.unanimous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::rng::Seed;

    #[test]
    fn color_display_is_one_based() {
        assert_eq!(Color::new(0).to_string(), "C1");
        assert_eq!(Color::new(4).to_string(), "C5");
    }

    #[test]
    fn counts_accessors() {
        let c = ColorCounts::from_counts(&[5, 3, 2]).expect("valid");
        assert_eq!(c.n(), 10);
        assert_eq!(c.k(), 3);
        assert_eq!(c.count(Color::new(1)), 3);
        assert!((c.fraction(Color::new(0)) - 0.5).abs() < 1e-12);
        assert_eq!(c.support_size(), 3);
        assert_eq!(c.as_slice(), &[5, 3, 2]);
    }

    #[test]
    fn top_two_finds_leader_and_runner_up() {
        let c = ColorCounts::from_counts(&[2, 9, 5, 9]).expect("valid");
        let t = c.top_two();
        assert_eq!(t.leader, Color::new(1), "ties break to smaller index");
        assert_eq!(t.c1, 9);
        assert_eq!(t.runner_up, Color::new(3));
        assert_eq!(t.c2, 9);
        assert_eq!(t.gap(), 0);
        assert!(!t.is_strict());
        assert_eq!(t.ratio(), 1.0);
    }

    #[test]
    fn top_two_with_zero_runner_up() {
        let c = ColorCounts::from_counts(&[10, 0]).expect("valid");
        let t = c.top_two();
        assert_eq!(t.c2, 0);
        assert!(t.ratio().is_infinite());
        assert_eq!(c.unanimous(), Some(Color::new(0)));
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            ColorCounts::from_counts(&[1]).unwrap_err(),
            ConfigError::TooFewColors
        );
        assert_eq!(
            ColorCounts::from_counts(&[0, 0]).unwrap_err(),
            ConfigError::EmptyPopulation
        );
        assert!(ConfigError::EmptyPopulation
            .to_string()
            .contains("non-empty"));
    }

    #[test]
    fn configuration_from_counts_lays_out_blocks() {
        let cfg = Configuration::from_counts(&[2, 3]).expect("valid");
        assert_eq!(cfg.color(NodeId::new(0)), Color::new(0));
        assert_eq!(cfg.color(NodeId::new(1)), Color::new(0));
        assert_eq!(cfg.color(NodeId::new(4)), Color::new(1));
        assert_eq!(cfg.n(), 5);
        assert_eq!(cfg.k(), 2);
    }

    #[test]
    fn set_color_maintains_histogram() {
        let mut cfg = Configuration::from_counts(&[3, 3]).expect("valid");
        cfg.set_color(NodeId::new(0), Color::new(1));
        assert_eq!(cfg.counts().count(Color::new(0)), 2);
        assert_eq!(cfg.counts().count(Color::new(1)), 4);
        // Setting the same color is a no-op on the histogram.
        cfg.set_color(NodeId::new(0), Color::new(1));
        assert_eq!(cfg.counts().count(Color::new(1)), 4);
        assert_eq!(cfg.counts().n(), 6);
    }

    #[test]
    fn shuffle_preserves_counts() {
        let mut cfg = Configuration::from_counts(&[10, 20, 30]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(1));
        cfg.shuffle(&mut rng);
        assert_eq!(cfg.counts().as_slice(), &[10, 20, 30]);
        // Extremely unlikely to still be the block layout.
        let block = Configuration::from_counts(&[10, 20, 30]).expect("valid");
        assert_ne!(cfg.colors(), block.colors());
    }

    #[test]
    fn replace_all_rebuilds_histogram() {
        let mut cfg = Configuration::from_counts(&[2, 2]).expect("valid");
        cfg.replace_all(&[Color::new(1), Color::new(1), Color::new(1), Color::new(0)]);
        assert_eq!(cfg.counts().as_slice(), &[1, 3]);
    }

    #[test]
    fn from_assignment_counts_correctly() {
        let cfg =
            Configuration::from_assignment(vec![Color::new(0), Color::new(2), Color::new(2)], 3)
                .expect("valid");
        assert_eq!(cfg.counts().as_slice(), &[1, 0, 2]);
        assert_eq!(cfg.counts().n(), 3);
    }

    #[test]
    fn unanimity_detection() {
        let mut cfg = Configuration::from_counts(&[2, 1]).expect("valid");
        assert_eq!(cfg.unanimous(), None);
        cfg.set_color(NodeId::new(2), Color::new(0));
        assert_eq!(cfg.unanimous(), Some(Color::new(0)));
    }
}
