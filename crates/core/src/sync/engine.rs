//! The synchronous round engine.

use rapid_graph::topology::Topology;
use rapid_sim::node::NodeId;
use rapid_sim::rng::SimRng;

use crate::convergence::{ConvergenceError, SyncOutcome};
use crate::opinion::{Color, Configuration};

/// A synchronous gossip protocol executed in discrete rounds.
///
/// `round` must implement **snapshot semantics**: all nodes observe the
/// configuration as it was when the round began and update simultaneously.
/// Stateless color-only protocols can delegate to
/// [`simultaneous_color_update`]; protocols with per-node auxiliary state
/// (like [`crate::sync::OneExtraBit`]) manage their own buffers.
pub trait SyncProtocol {
    /// Executes one synchronous round.
    fn round(&mut self, g: &dyn Topology, config: &mut Configuration, rng: &mut SimRng);

    /// Human-readable protocol name for tables and logs.
    fn name(&self) -> &'static str;

    /// Resets any per-run internal state (phase counters, bit vectors).
    ///
    /// Called by drivers before a fresh run; the default is a no-op for
    /// stateless protocols.
    fn reset(&mut self) {}
}

/// Applies a per-node color rule simultaneously: every node computes its
/// next color from the *snapshot* of current colors, then all updates land
/// at once.
///
/// This is the shared skeleton of [`crate::sync::TwoChoices`],
/// [`crate::sync::Voter`] and [`crate::sync::ThreeMajority`].
pub fn simultaneous_color_update(
    g: &dyn Topology,
    config: &mut Configuration,
    rng: &mut SimRng,
    mut rule: impl FnMut(NodeId, &[Color], &dyn Topology, &mut SimRng) -> Color,
) {
    let snapshot: Vec<Color> = config.colors().to_vec();
    let mut next = snapshot.clone();
    for (i, slot) in next.iter_mut().enumerate() {
        *slot = rule(NodeId::new(i), &snapshot, g, rng);
    }
    config.replace_all(&next);
}

/// Per-round measurements collected by [`run_sync_traced`] (and, through
/// the [`crate::facade::Observer`] impl, by the `Sim` façade).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundTrace {
    /// `c_1` (support of the current leader) after each round.
    pub c1: Vec<u64>,
    /// `c_2` (support of the runner-up) after each round.
    pub c2: Vec<u64>,
    /// Number of colors still alive after each round.
    pub support: Vec<usize>,
}

impl RoundTrace {
    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.c1.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.c1.is_empty()
    }

    pub(crate) fn record(&mut self, config: &Configuration) {
        let t = config.counts().top_two();
        self.c1.push(t.c1);
        self.c2.push(t.c2);
        self.support.push(config.counts().support_size());
    }
}

/// Runs `proto` on `config` until unanimity or `max_rounds`, optionally
/// recording a [`RoundTrace`]. The protocol is
/// [`reset`](SyncProtocol::reset) first, so a protocol value can be
/// reused across runs. (Most callers want the `Sim` builder instead —
/// `Sim::builder().topology(g).counts(…).protocol(proto)` — which drives
/// this engine with stop conditions and observers on top.)
///
/// # Errors
///
/// [`ConvergenceError::BudgetExhausted`] if `max_rounds` rounds pass
/// without unanimity.
pub fn run_sync_traced(
    proto: &mut dyn SyncProtocol,
    g: &dyn Topology,
    config: &mut Configuration,
    rng: &mut SimRng,
    max_rounds: u64,
    mut trace: Option<&mut RoundTrace>,
) -> Result<(SyncOutcome, u64), ConvergenceError> {
    if g.n() != config.n() {
        return Err(ConvergenceError::SizeMismatch {
            topology_n: g.n(),
            config_n: config.n(),
        });
    }
    proto.reset();
    if let Some(t) = trace.as_deref_mut() {
        t.record(config);
    }
    if let Some(winner) = config.unanimous() {
        return Ok((SyncOutcome { winner, rounds: 0 }, 0));
    }
    for round in 1..=max_rounds {
        proto.round(g, config, rng);
        if let Some(t) = trace.as_deref_mut() {
            t.record(config);
        }
        if let Some(winner) = config.unanimous() {
            return Ok((
                SyncOutcome {
                    winner,
                    rounds: round,
                },
                round,
            ));
        }
    }
    Err(ConvergenceError::BudgetExhausted { budget: max_rounds })
}

/// Test-only untraced driver, shared by the protocol unit tests (the
/// behaviour of the removed `run_sync_to_consensus` shim).
#[cfg(test)]
pub(crate) fn run_sync_to_consensus(
    proto: &mut dyn SyncProtocol,
    g: &dyn Topology,
    config: &mut Configuration,
    rng: &mut SimRng,
    max_rounds: u64,
) -> Result<SyncOutcome, ConvergenceError> {
    run_sync_traced(proto, g, config, rng, max_rounds, None).map(|(o, _)| o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_graph::complete::Complete;
    use rapid_sim::rng::Seed;

    /// A protocol where everyone adopts color 0 immediately.
    struct Dictator;
    impl SyncProtocol for Dictator {
        fn round(&mut self, g: &dyn Topology, config: &mut Configuration, rng: &mut SimRng) {
            simultaneous_color_update(g, config, rng, |_, _, _, _| Color::new(0));
        }
        fn name(&self) -> &'static str {
            "dictator"
        }
    }

    /// A protocol that never changes anything.
    struct Frozen;
    impl SyncProtocol for Frozen {
        fn round(&mut self, _: &dyn Topology, _: &mut Configuration, _: &mut SimRng) {}
        fn name(&self) -> &'static str {
            "frozen"
        }
    }

    #[test]
    fn dictator_converges_in_one_round() {
        let g = Complete::new(10);
        let mut config = Configuration::from_counts(&[5, 5]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(1));
        let out =
            run_sync_to_consensus(&mut Dictator, &g, &mut config, &mut rng, 10).expect("converges");
        assert_eq!(out.rounds, 1);
        assert_eq!(out.winner, Color::new(0));
    }

    #[test]
    fn frozen_exhausts_budget() {
        let g = Complete::new(4);
        let mut config = Configuration::from_counts(&[2, 2]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(2));
        let err = run_sync_to_consensus(&mut Frozen, &g, &mut config, &mut rng, 7)
            .expect_err("cannot converge");
        assert_eq!(err, ConvergenceError::BudgetExhausted { budget: 7 });
    }

    #[test]
    fn already_unanimous_returns_zero_rounds() {
        let g = Complete::new(4);
        let mut config = Configuration::from_counts(&[4, 0]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(3));
        let out = run_sync_to_consensus(&mut Frozen, &g, &mut config, &mut rng, 10)
            .expect("already done");
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn trace_records_initial_state_plus_each_round() {
        let g = Complete::new(10);
        let mut config = Configuration::from_counts(&[6, 4]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(4));
        let mut trace = RoundTrace::default();
        let (out, rounds) = run_sync_traced(
            &mut Dictator,
            &g,
            &mut config,
            &mut rng,
            10,
            Some(&mut trace),
        )
        .expect("converges");
        assert_eq!(out.rounds, rounds);
        assert_eq!(trace.len(), rounds as usize + 1);
        assert_eq!(trace.c1[0], 6);
        assert_eq!(*trace.c1.last().expect("non-empty"), 10);
        assert!(!trace.is_empty());
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let g = Complete::new(5);
        let mut config = Configuration::from_counts(&[2, 2]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(5));
        let err = run_sync_to_consensus(&mut Frozen, &g, &mut config, &mut rng, 1)
            .expect_err("size mismatch must be reported, not panic");
        assert_eq!(
            err,
            ConvergenceError::SizeMismatch {
                topology_n: 5,
                config_n: 4
            }
        );
        assert!(err.to_string().contains("disagree on n"));
    }

    #[test]
    fn simultaneous_update_uses_snapshot() {
        // Rule: adopt the color of node (i+1) mod n. With snapshot
        // semantics this is a cyclic shift; with in-place updates node 0's
        // new color would leak into node n−1's view.
        let g = Complete::new(3);
        let mut config =
            Configuration::from_assignment(vec![Color::new(0), Color::new(1), Color::new(2)], 3)
                .expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(6));
        simultaneous_color_update(&g, &mut config, &mut rng, |u, snapshot, _, _| {
            snapshot[(u.index() + 1) % snapshot.len()]
        });
        assert_eq!(
            config.colors(),
            &[Color::new(1), Color::new(2), Color::new(0)]
        );
    }
}
