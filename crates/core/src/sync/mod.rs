//! Synchronous protocols (Section 2 of the paper) and baselines.
//!
//! * [`TwoChoices`] — the classic protocol of Cooper, Elsässer & Radzik:
//!   sample two, adopt on agreement (Theorem 1.1).
//! * [`OneExtraBit`] — the paper's memory-model protocol: a Two-Choices
//!   round followed by Bit-Propagation rounds, repeated in phases
//!   (Theorem 1.2).
//! * [`Voter`] and [`ThreeMajority`] — standard baselines from the
//!   plurality-consensus literature, used by the comparison experiment.
//!
//! All protocols implement [`SyncProtocol`] and run with snapshot
//! semantics: within one round all nodes observe the configuration as it
//! was at the start of the round. Drive them through the
//! [`Sim`](crate::facade::Sim) builder, or directly via
//! [`engine::run_sync_traced`].

pub mod engine;
pub mod one_extra_bit;
pub mod three_majority;
pub mod two_choices;
pub mod voter;

pub use engine::{simultaneous_color_update, RoundTrace, SyncProtocol};
pub use one_extra_bit::{OneExtraBit, OneExtraBitParams};
pub use three_majority::ThreeMajority;
pub use two_choices::TwoChoices;
pub use voter::Voter;
