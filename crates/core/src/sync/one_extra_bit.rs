//! OneExtraBit: Two-Choices + Bit-Propagation phases (Theorem 1.2).
//!
//! The memory model allows each node to transmit one extra bit. A phase is:
//!
//! 1. **Two-Choices round** — every node samples two nodes (with
//!    replacement); if the samples' colors coincide the node adopts that
//!    color and sets its bit. The bit is set **iff the two samples
//!    coincided** (see DESIGN.md: this is the reading under which the
//!    paper's `E[#{bit-set, C_j}] = c_j²/n` concentration holds).
//! 2. **Bit-Propagation rounds** — a node whose bit is unset samples one
//!    node per round; upon hitting a bit-set node it copies that node's
//!    color and sets its own bit. Bit-set nodes keep answering.
//!
//! Per phase the support ratio amplifies quadratically,
//! `c'_1/c'_j ≈ (c_1/c_j)²`, because the post-Two-Choices bit-set
//! population has composition `∝ c_j²` and Bit-Propagation preserves that
//! composition (a Pólya-urn martingale) while growing it to the whole
//! network.

use rapid_graph::topology::Topology;
use rapid_sim::node::NodeId;
use rapid_sim::rng::SimRng;

use crate::opinion::{Color, Configuration};
use crate::sync::engine::SyncProtocol;

/// Tuning for [`OneExtraBit`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OneExtraBitParams {
    /// Bit-Propagation rounds per phase (the paper's `Θ(log k + log log n)`).
    pub bp_rounds: u32,
}

impl OneExtraBitParams {
    /// Theory-guided default: `⌈log₂ k + log₂ ln n⌉ + slack`.
    ///
    /// The bit-set population starts at `Σ c_j²/n ≥ n/k` nodes in
    /// expectation and roughly doubles per round, so `log₂ k` rounds reach
    /// saturation; the additive slack absorbs the concentration losses the
    /// asymptotic notation hides.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `k < 2`.
    pub fn for_network(n: usize, k: usize) -> Self {
        assert!(n >= 2, "network needs at least two nodes");
        assert!(k >= 2, "need at least two opinions");
        let bp = (k as f64).log2() + (n as f64).ln().max(1.0).log2() + 4.0;
        OneExtraBitParams {
            bp_rounds: bp.ceil() as u32,
        }
    }
}

/// The OneExtraBit plurality-consensus protocol (Theorem 1.2).
///
/// On `K_n` with `k = O(n^ε)` opinions and gap
/// `c_1 − c_2 ≥ z·√n·log^{3/2} n`, converges to the plurality w.h.p. in
/// `O((log(c_1/(c_1−c_2)) + log log n) · (log k + log log n))` rounds —
/// polylogarithmic, beating Two-Choices' `Ω(k)` barrier.
///
/// # Example
///
/// ```
/// use rapid_core::prelude::*;
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
///
/// // 8 opinions, plurality clearly ahead.
/// let out = Sim::builder()
///     .topology(Complete::new(1000))
///     .counts(&[300, 100, 100, 100, 100, 100, 100, 100])
///     .protocol(OneExtraBit::for_network(1000, 8))
///     .seed(Seed::new(2))
///     .stop(StopCondition::RoundBudget(1000))
///     .build()
///     .expect("valid experiment")
///     .run_to_consensus()
///     .expect("converges");
/// assert_eq!(out.winner, Some(Color::new(0)));
/// ```
#[derive(Clone, Debug)]
pub struct OneExtraBit {
    params: OneExtraBitParams,
    bits: Vec<bool>,
    pos: u32,
    phase: u32,
}

impl OneExtraBit {
    /// Creates the protocol with explicit parameters.
    pub fn new(params: OneExtraBitParams) -> Self {
        OneExtraBit {
            params,
            bits: Vec::new(),
            pos: 0,
            phase: 0,
        }
    }

    /// Creates the protocol with [`OneExtraBitParams::for_network`] defaults.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `k < 2`.
    pub fn for_network(n: usize, k: usize) -> Self {
        Self::new(OneExtraBitParams::for_network(n, k))
    }

    /// The protocol parameters.
    pub fn params(&self) -> OneExtraBitParams {
        self.params
    }

    /// Rounds per phase (one Two-Choices round + `bp_rounds`).
    pub fn rounds_per_phase(&self) -> u32 {
        1 + self.params.bp_rounds
    }

    /// Number of completed phases.
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Whether the next call to `round` starts a new phase (a Two-Choices
    /// round).
    pub fn at_phase_start(&self) -> bool {
        self.pos == 0
    }

    /// The bit vector after the most recent round (empty before any round).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    fn two_choices_round(
        &mut self,
        g: &dyn Topology,
        config: &mut Configuration,
        rng: &mut SimRng,
    ) {
        let snapshot: Vec<Color> = config.colors().to_vec();
        let mut next = snapshot.clone();
        self.bits.clear();
        self.bits.resize(config.n(), false);
        for (i, (slot, bit)) in next.iter_mut().zip(self.bits.iter_mut()).enumerate() {
            let u = NodeId::new(i);
            let v = g.sample_neighbor(u, rng);
            let w = g.sample_neighbor(u, rng);
            let cv = snapshot[v.index()];
            if cv == snapshot[w.index()] {
                *slot = cv;
                *bit = true;
            }
        }
        config.replace_all(&next);
    }

    fn bit_propagation_round(
        &mut self,
        g: &dyn Topology,
        config: &mut Configuration,
        rng: &mut SimRng,
    ) {
        debug_assert_eq!(self.bits.len(), config.n());
        let snapshot: Vec<Color> = config.colors().to_vec();
        let bits_snapshot = self.bits.clone();
        let mut next = snapshot.clone();
        for i in 0..config.n() {
            if bits_snapshot[i] {
                continue;
            }
            let u = NodeId::new(i);
            let v = g.sample_neighbor(u, rng);
            if bits_snapshot[v.index()] {
                next[i] = snapshot[v.index()];
                self.bits[i] = true;
            }
        }
        config.replace_all(&next);
    }
}

impl SyncProtocol for OneExtraBit {
    fn round(&mut self, g: &dyn Topology, config: &mut Configuration, rng: &mut SimRng) {
        if self.pos == 0 {
            self.two_choices_round(g, config, rng);
        } else {
            self.bit_propagation_round(g, config, rng);
        }
        self.pos += 1;
        if self.pos == self.rounds_per_phase() {
            self.pos = 0;
            self.phase += 1;
        }
    }

    fn name(&self) -> &'static str {
        "one-extra-bit"
    }

    fn reset(&mut self) {
        self.bits.clear();
        self.pos = 0;
        self.phase = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_graph::complete::Complete;
    use rapid_sim::rng::Seed;

    use crate::sync::engine::run_sync_to_consensus;

    #[test]
    fn params_scale_with_k_and_n() {
        let small = OneExtraBitParams::for_network(1000, 2);
        let wide = OneExtraBitParams::for_network(1000, 64);
        assert!(wide.bp_rounds > small.bp_rounds);
        let big = OneExtraBitParams::for_network(1_000_000, 2);
        assert!(big.bp_rounds >= small.bp_rounds);
    }

    #[test]
    fn two_choices_round_sets_bits_near_expected_density() {
        // After one Two-Choices round with counts (600, 400) on n = 1000,
        // E[#bit-set] = (c1² + c2²)/n = (360000 + 160000)/1000 = 520.
        let g = Complete::new(1000);
        let mut config = Configuration::from_counts(&[600, 400]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(3));
        let mut proto = OneExtraBit::for_network(1000, 2);
        proto.round(&g, &mut config, &mut rng);
        let set = proto.bits().iter().filter(|&&b| b).count();
        assert!(
            (set as f64 - 520.0).abs() < 80.0,
            "bit-set count {set} far from 520"
        );
    }

    #[test]
    fn bits_spread_to_everyone_within_a_phase() {
        let g = Complete::new(500);
        let mut config = Configuration::from_counts(&[300, 200]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(4));
        let mut proto = OneExtraBit::for_network(500, 2);
        for _ in 0..proto.rounds_per_phase() {
            proto.round(&g, &mut config, &mut rng);
        }
        let set = proto.bits().iter().filter(|&&b| b).count();
        assert!(
            set as f64 >= 0.99 * 500.0,
            "only {set}/500 bits set at phase end"
        );
        assert!(proto.at_phase_start());
        assert_eq!(proto.phase(), 1);
    }

    #[test]
    fn converges_with_many_colors_quickly() {
        // k = 20 colors: Two-Choices would need Ω(k) rounds; OneExtraBit
        // stays polylogarithmic.
        let n: u64 = 2000;
        let k = 20;
        let c1 = 500u64; // clear plurality
        let rest = n - c1;
        let base = rest / (k as u64 - 1);
        let mut counts = vec![base; k];
        counts[0] = c1;
        counts[1] += rest % (k as u64 - 1);
        let g = Complete::new(n as usize);
        let mut config = Configuration::from_counts(&counts).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(5));
        let mut proto = OneExtraBit::for_network(n as usize, k);
        let out =
            run_sync_to_consensus(&mut proto, &g, &mut config, &mut rng, 2000).expect("converges");
        assert_eq!(out.winner, Color::new(0));
        // Polylog bound with generous constant: ≪ k · ln n ≈ 152.
        assert!(out.rounds < 120, "took {} rounds", out.rounds);
    }

    #[test]
    fn reset_clears_phase_state() {
        let g = Complete::new(100);
        let mut config = Configuration::from_counts(&[60, 40]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(6));
        let mut proto = OneExtraBit::for_network(100, 2);
        proto.round(&g, &mut config, &mut rng);
        assert!(!proto.at_phase_start());
        proto.reset();
        assert!(proto.at_phase_start());
        assert_eq!(proto.phase(), 0);
        assert!(proto.bits().is_empty());
    }

    #[test]
    fn amplification_is_roughly_quadratic_after_one_phase() {
        // Start with ratio r = c1/c2 = 1.5; after one full phase the ratio
        // should be near r² = 2.25 (within stochastic slack).
        let g = Complete::new(20_000);
        let mut config = Configuration::from_counts(&[12_000, 8_000]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(7));
        let mut proto = OneExtraBit::for_network(20_000, 2);
        for _ in 0..proto.rounds_per_phase() {
            proto.round(&g, &mut config, &mut rng);
        }
        let t = config.counts().top_two();
        let ratio = t.ratio();
        assert!(
            (1.8..2.8).contains(&ratio),
            "post-phase ratio {ratio} not near 2.25"
        );
    }
}
