//! The 3-Majority baseline.

use rapid_graph::topology::Topology;
use rapid_sim::rng::SimRng;

use crate::opinion::Configuration;
use crate::sync::engine::{simultaneous_color_update, SyncProtocol};

/// 3-Majority: each node samples three neighbors (with replacement) and
/// adopts the majority color among them; if all three differ, it adopts
/// the first sample's color.
///
/// A standard comparator in the plurality-consensus literature (Becchetti
/// et al.), with behaviour closely related to Two-Choices: on the clique,
/// one round of 3-Majority and one round of Two-Choices induce the same
/// drift up to lower-order terms.
///
/// # Example
///
/// ```
/// use rapid_core::prelude::*;
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
///
/// let out = Sim::builder()
///     .topology(Complete::new(300))
///     .counts(&[200, 50, 50])
///     .protocol(ThreeMajority::new())
///     .seed(Seed::new(6))
///     .build()
///     .expect("valid experiment")
///     .run_to_consensus()
///     .expect("converges");
/// assert_eq!(out.winner, Some(Color::new(0)));
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreeMajority;

impl ThreeMajority {
    /// Creates the protocol.
    pub fn new() -> Self {
        ThreeMajority
    }
}

impl SyncProtocol for ThreeMajority {
    fn round(&mut self, g: &dyn Topology, config: &mut Configuration, rng: &mut SimRng) {
        simultaneous_color_update(g, config, rng, |u, snapshot, g, rng| {
            let a = snapshot[g.sample_neighbor(u, rng).index()];
            let b = snapshot[g.sample_neighbor(u, rng).index()];
            let c = snapshot[g.sample_neighbor(u, rng).index()];
            if a == b || a == c {
                a
            } else if b == c {
                b
            } else {
                a // all distinct → take the first sample
            }
        });
    }

    fn name(&self) -> &'static str {
        "3-majority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Color;
    use rapid_graph::complete::Complete;
    use rapid_sim::rng::Seed;

    use crate::sync::engine::run_sync_to_consensus;

    #[test]
    fn strong_plurality_wins() {
        let g = Complete::new(400);
        let mut wins = 0;
        for seed in 0..10 {
            let mut config = Configuration::from_counts(&[250, 50, 50, 50]).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(seed));
            let out =
                run_sync_to_consensus(&mut ThreeMajority::new(), &g, &mut config, &mut rng, 10_000)
                    .expect("converges");
            if out.winner == Color::new(0) {
                wins += 1;
            }
        }
        assert!(wins >= 9, "plurality won only {wins}/10 runs");
    }

    #[test]
    fn tie_break_takes_first_sample() {
        // Indirect check: with k = n distinct colors, a round still makes
        // progress (support shrinks) because ties resolve to a sample, not
        // to the node's own color.
        let g = Complete::new(30);
        let colors: Vec<Color> = (0..30).map(Color::new).collect();
        let mut config = Configuration::from_assignment(colors, 30).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(7));
        let before = config.counts().support_size();
        ThreeMajority::new().round(&g, &mut config, &mut rng);
        // Colors can only be adopted from samples, so support cannot grow.
        assert!(config.counts().support_size() <= before);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ThreeMajority::new().name(), "3-majority");
    }
}
