//! The synchronous Two-Choices protocol (Theorem 1.1).

use rapid_graph::topology::Topology;
use rapid_sim::rng::SimRng;

use crate::opinion::Configuration;
use crate::sync::engine::{simultaneous_color_update, SyncProtocol};

/// Two-Choices (Cooper, Elsässer & Radzik, ICALP'14): in every round each
/// node samples two neighbors uniformly at random, **with replacement**,
/// and adopts their color iff the two samples coincide.
///
/// Theorem 1.1 of the paper: on `K_n` with `k = O(n^ε)` opinions and
/// initial gap `c_1 − c_2 ≥ z√(n log n)`, this converges to the plurality
/// within `O(n/c_1 · log n)` rounds w.h.p.; conversely, `Ω(n/c_1 + log n)`
/// rounds are needed in expectation, giving `Ω(k)` when `c_1 = Θ(n/k)`.
///
/// # Example
///
/// ```
/// use rapid_core::prelude::*;
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
///
/// let out = Sim::builder()
///     .topology(Complete::new(300))
///     .counts(&[200, 100])
///     .protocol(TwoChoices::new())
///     .seed(Seed::new(5))
///     .build()
///     .expect("valid experiment")
///     .run_to_consensus()
///     .expect("converges");
/// assert_eq!(out.winner, Some(Color::new(0)));
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TwoChoices;

impl TwoChoices {
    /// Creates the protocol.
    pub fn new() -> Self {
        TwoChoices
    }
}

impl SyncProtocol for TwoChoices {
    fn round(&mut self, g: &dyn Topology, config: &mut Configuration, rng: &mut SimRng) {
        simultaneous_color_update(g, config, rng, |u, snapshot, g, rng| {
            let v = g.sample_neighbor(u, rng);
            let w = g.sample_neighbor(u, rng);
            let cv = snapshot[v.index()];
            if cv == snapshot[w.index()] {
                cv
            } else {
                snapshot[u.index()]
            }
        });
    }

    fn name(&self) -> &'static str {
        "two-choices"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Color;
    use rapid_graph::complete::Complete;
    use rapid_sim::rng::Seed;

    use crate::sync::engine::run_sync_to_consensus;

    #[test]
    fn strong_plurality_wins() {
        let g = Complete::new(400);
        let mut wins = 0;
        for seed in 0..10 {
            let mut config = Configuration::from_counts(&[250, 75, 75]).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(seed));
            let out =
                run_sync_to_consensus(&mut TwoChoices::new(), &g, &mut config, &mut rng, 10_000)
                    .expect("converges");
            if out.winner == Color::new(0) {
                wins += 1;
            }
        }
        assert!(wins >= 9, "plurality won only {wins}/10 runs");
    }

    #[test]
    fn unanimity_is_absorbing() {
        let g = Complete::new(50);
        let mut config = Configuration::from_counts(&[50, 0]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(1));
        let mut proto = TwoChoices::new();
        proto.round(&g, &mut config, &mut rng);
        assert_eq!(config.unanimous(), Some(Color::new(0)));
    }

    #[test]
    fn two_color_race_preserves_total() {
        let g = Complete::new(100);
        let mut config = Configuration::from_counts(&[60, 40]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(2));
        let mut proto = TwoChoices::new();
        for _ in 0..5 {
            proto.round(&g, &mut config, &mut rng);
            assert_eq!(config.counts().n(), 100);
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(TwoChoices::new().name(), "two-choices");
    }
}
