//! The Voter model baseline.

use rapid_graph::topology::Topology;
use rapid_sim::rng::SimRng;

use crate::opinion::Configuration;
use crate::sync::engine::{simultaneous_color_update, SyncProtocol};

/// Voter model: each node samples one neighbor and adopts its color
/// unconditionally.
///
/// The classic baseline: consensus is reached eventually, but the winner is
/// each color's initial fraction in distribution — the plurality wins only
/// with probability `c_1/n` — and expected convergence takes `Θ(n)` rounds
/// on the clique. The comparison experiment (E13) uses it to show what the
/// Two-Choices drift buys.
///
/// # Example
///
/// ```
/// use rapid_core::prelude::*;
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
///
/// let out = Sim::builder()
///     .topology(Complete::new(20))
///     .counts(&[19, 1])
///     .protocol(Voter::new())
///     .seed(Seed::new(3))
///     .build()
///     .expect("valid experiment")
///     .run_to_consensus()
///     .expect("converges");
/// assert!(out.rounds.expect("synchronous") >= 1);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Voter;

impl Voter {
    /// Creates the protocol.
    pub fn new() -> Self {
        Voter
    }
}

impl SyncProtocol for Voter {
    fn round(&mut self, g: &dyn Topology, config: &mut Configuration, rng: &mut SimRng) {
        simultaneous_color_update(g, config, rng, |u, snapshot, g, rng| {
            snapshot[g.sample_neighbor(u, rng).index()]
        });
    }

    fn name(&self) -> &'static str {
        "voter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Color;
    use rapid_graph::complete::Complete;
    use rapid_sim::rng::Seed;

    use crate::sync::engine::run_sync_to_consensus;

    #[test]
    fn converges_on_small_clique() {
        let g = Complete::new(30);
        let mut config = Configuration::from_counts(&[15, 15]).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(4));
        let out = run_sync_to_consensus(&mut Voter::new(), &g, &mut config, &mut rng, 100_000)
            .expect("voter eventually hits an absorbing state");
        assert!(out.winner == Color::new(0) || out.winner == Color::new(1));
    }

    #[test]
    fn winner_is_roughly_proportional_to_initial_share() {
        // With c_0 = 3n/4, color 0 should win about 75% of runs — far from
        // the ~100% a drift-based protocol achieves.
        let g = Complete::new(40);
        let mut wins = 0;
        let trials = 60;
        for seed in 0..trials {
            let mut config = Configuration::from_counts(&[30, 10]).expect("valid");
            let mut rng = SimRng::from_seed_value(Seed::new(seed));
            let out =
                run_sync_to_consensus(&mut Voter::new(), &g, &mut config, &mut rng, 1_000_000)
                    .expect("converges");
            if out.winner == Color::new(0) {
                wins += 1;
            }
        }
        let rate = wins as f64 / trials as f64;
        assert!(
            (0.5..0.95).contains(&rate),
            "voter win rate {rate} should sit near 0.75, not at certainty"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Voter::new().name(), "voter");
    }
}
