//! The unified `Sim` builder façade: misuse diagnostics, determinism,
//! stop-condition composition, observers, and equivalence with the legacy
//! drivers it replaces.

use rapid_core::facade::{BuildError, Clock, Outcome, Sim, StopCondition, StopReason};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn two_choices_on_clique(n: usize, counts: &[u64], seed: u64) -> Sim {
    Sim::builder()
        .topology(Complete::new(n))
        .counts(counts)
        .protocol(TwoChoices::new())
        .seed(Seed::new(seed))
        .build()
        .expect("valid experiment")
}

// ---------------------------------------------------------------- misuse

#[test]
fn missing_protocol_is_a_typed_error() {
    let err = Sim::builder()
        .topology(Complete::new(10))
        .counts(&[5, 5])
        .build()
        .expect_err("no protocol selected");
    assert_eq!(err, BuildError::MissingProtocol);
    assert!(err.to_string().contains("protocol"));
}

#[test]
fn missing_topology_and_initial_state_are_typed_errors() {
    let err = Sim::builder().build().expect_err("nothing supplied");
    assert_eq!(err, BuildError::MissingTopology);

    let err = Sim::builder()
        .topology(Complete::new(10))
        .protocol(TwoChoices::new())
        .build()
        .expect_err("no initial state");
    assert_eq!(err, BuildError::MissingInitialState);
}

#[test]
fn size_mismatch_is_a_typed_error_not_a_panic() {
    let err = Sim::builder()
        .topology(Complete::new(10))
        .counts(&[5, 4]) // 9 nodes for a 10-node topology
        .protocol(TwoChoices::new())
        .build()
        .expect_err("n mismatch");
    assert_eq!(
        err,
        BuildError::SizeMismatch {
            topology_n: 10,
            config_n: 9
        }
    );
}

#[test]
fn empty_configuration_is_rejected() {
    let err = Sim::builder()
        .topology(Complete::new(4))
        .counts(&[0, 0])
        .protocol(TwoChoices::new())
        .build()
        .expect_err("empty population");
    assert!(matches!(err, BuildError::Config(_)), "got {err:?}");

    let err = Sim::builder()
        .topology(Complete::new(4))
        .counts(&[4])
        .protocol(TwoChoices::new())
        .build()
        .expect_err("single opinion");
    assert!(matches!(err, BuildError::Config(_)), "got {err:?}");
}

#[test]
fn infeasible_distribution_is_rejected() {
    let err = Sim::builder()
        .topology(Complete::new(4))
        .distribution(InitialDistribution::Uniform { k: 20 })
        .gossip(GossipRule::TwoChoices)
        .build()
        .expect_err("4 nodes cannot hold 20 opinions");
    assert!(matches!(err, BuildError::Distribution(_)), "got {err:?}");
}

#[test]
fn invalid_rapid_params_are_rejected() {
    let mut params = Params::for_network(256, 2);
    params.sync_samples = params.sync_len() as u32 + 1; // cannot fit
    let err = Sim::builder()
        .topology(Complete::new(256))
        .counts(&[200, 56])
        .rapid(params)
        .build()
        .expect_err("inconsistent params");
    assert!(matches!(err, BuildError::InvalidParams(_)), "got {err:?}");
}

#[test]
fn clock_misconfigurations_are_rejected() {
    let err = Sim::builder()
        .topology(Complete::new(8))
        .counts(&[4, 4])
        .gossip(GossipRule::Voter)
        .clock(Clock::Rates(vec![1.0; 3]))
        .build()
        .expect_err("wrong rates length");
    assert_eq!(
        err,
        BuildError::RatesLength {
            expected: 8,
            got: 3
        }
    );

    let err = Sim::builder()
        .topology(Complete::new(8))
        .counts(&[4, 4])
        .gossip(GossipRule::Voter)
        .clock(Clock::EventQueue { rate: 0.0 })
        .build()
        .expect_err("zero rate");
    assert!(matches!(err, BuildError::InvalidClock(_)), "got {err:?}");

    let err = Sim::builder()
        .topology(Complete::new(8))
        .counts(&[4, 4])
        .gossip(GossipRule::Voter)
        .jitter(f64::NAN)
        .build()
        .expect_err("NaN jitter");
    assert!(matches!(err, BuildError::InvalidJitter(_)), "got {err:?}");
}

#[test]
fn halt_after_requires_gossip() {
    let err = Sim::builder()
        .topology(Complete::new(8))
        .counts(&[4, 4])
        .protocol(TwoChoices::new())
        .halt_after(5)
        .build()
        .expect_err("halting is an async-gossip feature");
    assert_eq!(err, BuildError::InvalidHaltBudget);
}

// ----------------------------------------------------------- determinism

#[test]
fn same_seed_means_identical_outcome_for_every_engine() {
    let sync_run = |seed: u64| -> Outcome { two_choices_on_clique(100, &[70, 30], seed).run() };
    assert_eq!(sync_run(9), sync_run(9));

    let gossip_run = |seed: u64| -> Outcome {
        Sim::builder()
            .topology(Complete::new(100))
            .counts(&[70, 30])
            .gossip(GossipRule::TwoChoices)
            .seed(Seed::new(seed))
            .build()
            .expect("valid experiment")
            .run()
    };
    assert_eq!(gossip_run(10), gossip_run(10));

    let rapid_run = |seed: u64| -> Outcome {
        Sim::builder()
            .topology(Complete::new(128))
            .counts(&[80, 48])
            .rapid(Params::for_network(128, 2))
            .seed(Seed::new(seed))
            .build()
            .expect("valid experiment")
            .run()
    };
    assert_eq!(rapid_run(11), rapid_run(11));
    assert_ne!(
        rapid_run(11).steps,
        rapid_run(12).steps,
        "different seeds should differ"
    );
}

// ------------------------------------------- direct-engine equivalence

#[test]
fn builder_sync_run_matches_the_direct_engine() {
    let counts = [150u64, 80, 70];
    for seed in [1u64, 7, 42] {
        let g = Complete::new(300);
        let mut config = Configuration::from_counts(&counts).expect("valid");
        let mut rng = SimRng::from_seed_value(Seed::new(seed));
        let (direct, _) = run_sync_traced(
            &mut TwoChoices::new(),
            &g,
            &mut config,
            &mut rng,
            10_000,
            None,
        )
        .expect("converges");

        let outcome = two_choices_on_clique(300, &counts, seed)
            .run_to_consensus()
            .expect("converges");
        assert_eq!(outcome.as_sync(), Some(direct), "seed {seed}");
        assert_eq!(outcome.final_counts, config.counts().as_slice());
    }
}

#[test]
fn builder_async_runs_match_directly_constructed_engines() {
    // The builder's seed derivation is a documented contract — scheduler
    // from child(0), engine from child(1) — so a builder run must be
    // bit-identical to a hand-assembled engine, not merely statistically
    // equivalent.
    let counts = [90u64, 38];
    let seed = Seed::new(5);
    let config = Configuration::from_counts(&counts).expect("valid");
    let mut direct = AsyncGossipSim::new(
        Complete::new(128),
        config,
        GossipRule::TwoChoices,
        SequentialScheduler::new(128, seed.child(0)),
        seed.child(1),
    );
    let direct = direct.run_until_consensus(10_000_000).expect("converges");
    let built = Sim::builder()
        .topology(Complete::new(128))
        .counts(&counts)
        .gossip(GossipRule::TwoChoices)
        .seed(seed)
        .build()
        .expect("valid experiment")
        .run_to_consensus()
        .expect("converges");
    assert_eq!(built.as_async(), Some(direct));

    let params = Params::for_network(128, 2);
    let seed = Seed::new(6);
    let config = Configuration::from_counts(&counts).expect("valid");
    let mut direct_sim = RapidSim::new(
        Complete::new(128),
        config,
        params,
        SequentialScheduler::new(128, seed.child(0)),
        seed.child(1),
    );
    let budget = direct_sim.default_step_budget();
    let direct = direct_sim.run_until_consensus(budget).expect("converges");
    let built = Sim::builder()
        .topology(Complete::new(128))
        .counts(&counts)
        .rapid(params)
        .seed(seed)
        .build()
        .expect("valid experiment")
        .run_to_consensus()
        .expect("converges");
    assert_eq!(built.as_rapid(), Some(direct));
}

// -------------------------------------------------------- stop conditions

#[test]
fn stop_conditions_compose_and_report_their_reason() {
    // Balanced two-color voter on a tiny graph: no quick unanimity, so the
    // explicit budget fires first.
    let out = Sim::builder()
        .topology(Complete::new(50))
        .counts(&[25, 25])
        .gossip(GossipRule::Voter)
        .seed(Seed::new(1))
        .stop(StopCondition::StepBudget(200))
        .stop(StopCondition::TimeHorizon(SimTime::from_secs(1e9)))
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(out.stop, StopReason::StepBudget);
    assert_eq!(out.steps, 200);
    assert_eq!(out.winner, None);
    assert_eq!(out.final_counts.iter().sum::<u64>(), 50);

    let out = Sim::builder()
        .topology(Complete::new(50))
        .counts(&[25, 25])
        .gossip(GossipRule::Voter)
        .seed(Seed::new(1))
        .stop(StopCondition::TimeHorizon(SimTime::from_secs(3.0)))
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(out.stop, StopReason::TimeHorizon);
    assert!(out.time.expect("asynchronous") >= SimTime::from_secs(3.0));

    let out = Sim::builder()
        .topology(Complete::new(50))
        .counts(&[25, 25])
        .gossip(GossipRule::Voter)
        .halt_after(3)
        .seed(Seed::new(1))
        .stop(StopCondition::FirstHalt)
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(out.stop, StopReason::FirstHalt);
    assert!(out.first_halt.is_some());
}

#[test]
fn round_budget_counts_rounds_for_sync_engines() {
    // A frozen-ish workload: voter on a balanced config will not converge
    // within 10 rounds (50 nodes, seed-checked), so the budget fires.
    let out = Sim::builder()
        .topology(Complete::new(50))
        .counts(&[25, 25])
        .protocol(Voter::new())
        .seed(Seed::new(2))
        .stop(StopCondition::RoundBudget(10))
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(out.stop, StopReason::RoundBudget);
    assert_eq!(out.rounds, Some(10));
    assert_eq!(out.steps, 10);
}

#[test]
fn budgets_count_from_the_run_not_the_sim_birth() {
    // Manually pre-step a sim, then run with a budget: the budget applies
    // to the run, not to the sim's lifetime step counter.
    let mut sim = Sim::builder()
        .topology(Complete::new(50))
        .counts(&[25, 25])
        .gossip(GossipRule::Voter)
        .seed(Seed::new(14))
        .stop(StopCondition::StepBudget(100))
        .build()
        .expect("valid experiment");
    for _ in 0..150 {
        sim.step();
    }
    let out = sim.run();
    assert_eq!(out.stop, StopReason::StepBudget);
    assert_eq!(out.steps, 250, "run got its own 100-step budget");
}

#[test]
fn first_halt_stop_alone_keeps_the_default_budget() {
    // FirstHalt can never fire for a synchronous engine; it must not
    // disable the fallback budget (the run would never terminate).
    let out = Sim::builder()
        .topology(Complete::new(2))
        .counts(&[1, 1])
        .protocol(TwoChoices::new())
        .seed(Seed::new(12))
        .stop(StopCondition::FirstHalt)
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(out.stop, StopReason::DefaultBudget);
}

#[test]
fn before_first_halt_is_false_without_unanimity() {
    // A rapid run cut off by a step budget is not the Theorem 1.3 success
    // event, even though no node has halted yet.
    let out = Sim::builder()
        .topology(Complete::new(128))
        .counts(&[80, 48])
        .rapid(Params::for_network(128, 2))
        .seed(Seed::new(13))
        .stop(StopCondition::StepBudget(10))
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(out.stop, StopReason::StepBudget);
    assert_eq!(out.winner, None);
    assert_eq!(out.before_first_halt, Some(false));
    assert!(out.to_json().contains("\"before_first_halt\": false"));
}

#[test]
fn default_budget_prevents_infinite_runs() {
    // Two balanced colors under sync Two-Choices *can* converge, but a
    // 2-node graph with one node per color cannot (each node always sees
    // the other's disagreeing pair). The default budget must fire.
    let out = Sim::builder()
        .topology(Complete::new(2))
        .counts(&[1, 1])
        .protocol(TwoChoices::new())
        .seed(Seed::new(3))
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(out.stop, StopReason::DefaultBudget);
    let json = out.to_json();
    assert!(json.contains("\"stop\": \"default-budget\""));
    assert!(json.contains("\"winner\": null"));
}

// ------------------------------------------------------------- observers

#[test]
fn round_trace_observer_matches_legacy_traced_run() {
    let counts = [60u64, 40];
    let mut legacy_trace = RoundTrace::default();
    let g = Complete::new(100);
    let mut config = Configuration::from_counts(&counts).expect("valid");
    let mut rng = SimRng::from_seed_value(Seed::new(4));
    let (legacy, _) = run_sync_traced(
        &mut TwoChoices::new(),
        &g,
        &mut config,
        &mut rng,
        10_000,
        Some(&mut legacy_trace),
    )
    .expect("converges");

    let mut trace = RoundTrace::default();
    let outcome = two_choices_on_clique(100, &counts, 4)
        .run_observed(&mut trace)
        .as_sync()
        .expect("converged");
    assert_eq!(outcome, legacy);
    assert_eq!(trace, legacy_trace);
    assert_eq!(trace.len() as u64, outcome.rounds + 1);
}

#[test]
fn spread_trace_observer_records_rapid_working_times() {
    let params = Params::for_network(128, 2);
    let mut spread = SpreadTrace::new(2 * params.delta as u64);
    let outcome = Sim::builder()
        .topology(Complete::new(128))
        .counts(&[80, 48])
        .rapid(params)
        .seed(Seed::new(5))
        .build()
        .expect("valid experiment")
        .run_observed(&mut spread);
    assert!(outcome.converged());
    assert!(!spread.snapshots.is_empty());
    // One snapshot per n activations, plus the initial state, plus the
    // terminal state when the run ends off the cadence.
    let on_cadence = outcome.steps.is_multiple_of(128);
    let expected = outcome.steps / 128 + if on_cadence { 1 } else { 2 };
    assert_eq!(spread.snapshots.len() as u64, expected);
}

// ---------------------------------------------------- the unified outcome

#[test]
fn outcome_serialises_every_engine_family() {
    let sync = two_choices_on_clique(100, &[70, 30], 6).run();
    let json = sync.to_json();
    assert!(json.contains("\"stop\": \"unanimity\""));
    assert!(json.contains("\"winner\": 0"));
    assert!(json.contains("\"time\": null"));

    let rapid = Sim::builder()
        .topology(Complete::new(128))
        .counts(&[80, 48])
        .rapid(Params::for_network(128, 2))
        .seed(Seed::new(7))
        .build()
        .expect("valid experiment")
        .run();
    let json = rapid.to_json();
    assert!(json.contains("\"before_first_halt\": true"));
    assert!(json.contains("\"rounds\": null"));
    assert!(json.contains("\"final_counts\": [128, 0]"));
}

#[test]
fn run_to_consensus_maps_non_unanimity_to_errors() {
    let err = Sim::builder()
        .topology(Complete::new(50))
        .counts(&[25, 25])
        .gossip(GossipRule::Voter)
        .seed(Seed::new(8))
        .stop(StopCondition::StepBudget(10))
        .build()
        .expect("valid experiment")
        .run_to_consensus()
        .expect_err("10 steps cannot finish");
    assert_eq!(err, ConvergenceError::BudgetExhausted { budget: 10 });

    let err = Sim::builder()
        .topology(Complete::new(50))
        .counts(&[25, 25])
        .gossip(GossipRule::Voter)
        .halt_after(1)
        .seed(Seed::new(9))
        .stop(StopCondition::StepBudget(1_000_000))
        .build()
        .expect("valid experiment")
        .run_to_consensus()
        .expect_err("everyone freezes after one tick");
    assert_eq!(err, ConvergenceError::AllHaltedWithoutConsensus);
}

#[test]
fn builder_covers_every_clock_model() {
    for clock in [
        Clock::Sequential(TimeMode::Expected),
        Clock::Sequential(TimeMode::Sampled),
        Clock::EventQueue { rate: 1.0 },
        Clock::UniformSkew { skew: 0.4 },
        Clock::Rates(vec![1.0; 100]),
    ] {
        let out = Sim::builder()
            .topology(Complete::new(100))
            .counts(&[80, 20])
            .gossip(GossipRule::TwoChoices)
            .clock(clock.clone())
            .seed(Seed::new(10))
            .stop(StopCondition::StepBudget(5_000_000))
            .build()
            .expect("valid experiment")
            .run_to_consensus()
            .unwrap_or_else(|e| panic!("clock {clock:?} failed: {e}"));
        assert_eq!(out.winner, Some(Color::new(0)), "clock {clock:?}");
    }
}
