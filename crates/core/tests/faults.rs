//! The fault layer's contract, pinned:
//!
//! 1. **Zero-fault equivalence** — with every knob at its neutral value
//!    (and for the loss-0 / budget-0 edge cases), runs are *bit-identical*
//!    to runs without the fault axis, for both asynchronous engines and
//!    every clock model.
//! 2. **Edge cases are well-defined** — loss 1.0, a node that crashes
//!    before its first tick, churn rejoin mid-run, adversaries that
//!    exhaust their budget: each produces a deterministic, sensible
//!    [`Outcome`].
//! 3. **Seed determinism under faults** — faulty runs reproduce exactly
//!    from one master seed.

use rapid_core::facade::{Outcome, Sim, SimBuilder, StopCondition, StopReason};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::fault::{AdversaryKind, AdversaryPlan, ChurnEvent, FaultPlan, LatencyModel};
use rapid_sim::prelude::*;

fn gossip_base(n: usize, counts: &[u64], seed: u64) -> SimBuilder {
    Sim::builder()
        .topology(Complete::new(n))
        .counts(counts)
        .gossip(GossipRule::TwoChoices)
        .seed(Seed::new(seed))
        .stop(StopCondition::StepBudget(5_000_000))
}

fn rapid_base(n: usize, counts: &[u64], seed: u64) -> SimBuilder {
    Sim::builder()
        .topology(Complete::new(n))
        .counts(counts)
        .rapid(Params::for_network(n, counts.len()))
        .seed(Seed::new(seed))
}

// ------------------------------------------------- zero-fault equivalence

/// Plans that must be invisible: fully neutral, explicit loss 0.0, and an
/// adversary with budget 0.
fn neutral_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::none(),
        FaultPlan::none().with_loss(0.0),
        FaultPlan::none().with_adversary(AdversaryPlan {
            kind: AdversaryKind::Adaptive,
            budget: 0,
            start: SimTime::ZERO,
            interval: 0.5,
        }),
    ]
}

#[test]
fn neutral_plans_are_bit_identical_for_gossip() {
    let clean: Outcome = gossip_base(128, &[90, 38], 5).build().expect("valid").run();
    for plan in neutral_plans() {
        let faulty = gossip_base(128, &[90, 38], 5)
            .faults(plan.clone())
            .build()
            .expect("valid")
            .run();
        assert_eq!(faulty, clean, "plan {plan:?} perturbed the run");
    }
}

#[test]
fn neutral_plans_are_bit_identical_for_rapid() {
    let clean: Outcome = rapid_base(128, &[80, 48], 6).build().expect("valid").run();
    for plan in neutral_plans() {
        let faulty = rapid_base(128, &[80, 48], 6)
            .faults(plan.clone())
            .build()
            .expect("valid")
            .run();
        assert_eq!(faulty, clean, "plan {plan:?} perturbed the run");
    }
}

#[test]
fn neutral_plan_is_bit_identical_under_every_clock_model() {
    for clock in [
        Clock::Sequential(TimeMode::Expected),
        Clock::Sequential(TimeMode::Sampled),
        Clock::EventQueue { rate: 1.0 },
        Clock::UniformSkew { skew: 0.4 },
    ] {
        let clean = gossip_base(100, &[80, 20], 10)
            .clock(clock.clone())
            .build()
            .expect("valid")
            .run();
        let faulty = gossip_base(100, &[80, 20], 10)
            .clock(clock.clone())
            .faults(FaultPlan::none())
            .build()
            .expect("valid")
            .run();
        assert_eq!(faulty, clean, "clock {clock:?}");
    }
}

// -------------------------------------------------------------- edge cases

#[test]
fn loss_one_freezes_every_opinion() {
    // Every message is lost: no node can ever complete an interaction, so
    // the initial histogram survives to the budget.
    let out = gossip_base(64, &[40, 24], 7)
        .stop(StopCondition::StepBudget(10_000))
        .faults(FaultPlan::none().with_loss(1.0))
        .build()
        .expect("valid")
        .run();
    assert_eq!(out.stop, StopReason::StepBudget);
    assert_eq!(out.final_counts, vec![40, 24]);
}

#[test]
fn loss_one_blocks_rapid_consensus_too() {
    let out = rapid_base(64, &[40, 24], 8)
        .faults(FaultPlan::none().with_loss(1.0))
        .build()
        .expect("valid")
        .run();
    assert_ne!(out.stop, StopReason::Unanimity);
    assert_eq!(out.final_counts, vec![40, 24]);
}

#[test]
fn node_crashed_before_first_tick_keeps_its_color_forever() {
    // Node 0 holds the minority color... actually colors are assigned in
    // count order: nodes 0..50 hold color 0, nodes 50..64 color 1. Crash a
    // color-1 node at time zero: it never answers, never updates, and its
    // color survives, so unanimity is impossible and the budget fires.
    let crashed = NodeId::new(60);
    let out = gossip_base(64, &[50, 14], 9)
        .stop(StopCondition::StepBudget(200_000))
        .faults(FaultPlan::none().with_churn(vec![ChurnEvent::crash(crashed, SimTime::ZERO)]))
        .build()
        .expect("valid")
        .run();
    assert_eq!(out.stop, StopReason::StepBudget);
    assert!(
        out.final_counts[1] >= 1,
        "the crashed node still counts with color 1: {:?}",
        out.final_counts
    );
}

#[test]
fn churn_rejoin_mid_run_still_converges() {
    // A quarter of the nodes are down during [1, 5); after rejoining they
    // hold stale opinions, and the dynamic must still finish.
    let n = 128;
    let churn: Vec<ChurnEvent> = (0..n / 4)
        .map(|i| {
            ChurnEvent::window(
                NodeId::new(i * 4),
                SimTime::from_secs(1.0),
                SimTime::from_secs(5.0),
            )
        })
        .collect();
    let out = gossip_base(n, &[96, 32], 11)
        .faults(FaultPlan::none().with_churn(churn))
        .build()
        .expect("valid")
        .run();
    assert_eq!(out.stop, StopReason::Unanimity);
    assert_eq!(out.winner, Some(Color::new(0)));
}

#[test]
fn adversary_with_exhausted_budget_only_delays_consensus() {
    // A small adaptive adversary harasses the leader early; once the
    // budget is spent the protocol finishes anyway.
    let plan = FaultPlan::none().with_adversary(AdversaryPlan {
        kind: AdversaryKind::Adaptive,
        budget: 20,
        start: SimTime::ZERO,
        interval: 0.05,
    });
    let out = gossip_base(128, &[100, 28], 12)
        .faults(plan)
        .build()
        .expect("valid")
        .run();
    assert_eq!(out.stop, StopReason::Unanimity);
    assert_eq!(out.winner, Some(Color::new(0)));
}

#[test]
fn oblivious_adversary_under_rapid_is_survivable() {
    let plan = FaultPlan::none().with_adversary(AdversaryPlan {
        kind: AdversaryKind::Oblivious,
        budget: 10,
        start: SimTime::from_secs(1.0),
        interval: 0.5,
    });
    let out = rapid_base(256, &[170, 86], 13)
        .faults(plan)
        .build()
        .expect("valid")
        .run();
    // Ten random corruptions on n = 256 cannot stop Theorem 1.3.
    assert_eq!(out.stop, StopReason::Unanimity);
}

#[test]
fn adversary_created_unanimity_is_detected_at_the_strike_tick() {
    // Under loss 1.0 no protocol action can recolor a node (Two-Choices
    // samples and Bit-Propagation pulls are all voided, so commits never
    // have an intermediate color), meaning every color change comes from
    // an adversary strike — which happens *outside* any color-changing
    // Action. The engine's O(1) unanimity fast path is gated on
    // `Action::changes_color`; it must also fire on strike ticks, or
    // strike-created unanimity is reported late (wrong time/steps) or,
    // past the halt wave, not at all.
    for seed in [0u64, 1, 2, 9] {
        let mk = || {
            let plan = FaultPlan::none()
                .with_loss(1.0)
                .with_adversary(AdversaryPlan {
                    kind: AdversaryKind::Oblivious,
                    budget: 1_000_000,
                    start: SimTime::ZERO,
                    interval: 0.01,
                });
            rapid_base(8, &[5, 3], seed)
                .faults(plan)
                .build()
                .expect("valid")
                .into_rapid()
                .expect("rapid protocol was selected")
        };
        // Drive a probe copy tick by tick to find the exact step at which
        // the strikes first produce unanimity.
        let mut probe = mk();
        let created_at = loop {
            probe.tick();
            if probe.config().unanimous().is_some() {
                break probe.steps();
            }
        };
        // The engine's own run loop must report it at that very step.
        let out = mk().run_until_consensus(1_000_000).expect("detected");
        assert_eq!(
            out.steps, created_at,
            "seed {seed}: unanimity created at step {created_at} but reported at {}",
            out.steps
        );
    }
}

#[test]
fn latency_and_loss_compose_with_the_builder() {
    let plan = FaultPlan::none()
        .with_loss(0.1)
        .with_latency(LatencyModel::Pareto {
            scale: 0.05,
            shape: 2.0,
        });
    let out = gossip_base(128, &[100, 28], 14)
        .faults(plan)
        .build()
        .expect("valid")
        .run();
    assert_eq!(out.stop, StopReason::Unanimity);
    assert_eq!(out.winner, Some(Color::new(0)));
}

// --------------------------------------------------------- builder errors

#[test]
fn invalid_fault_plans_are_typed_errors() {
    let err = gossip_base(8, &[4, 4], 1)
        .faults(FaultPlan::none().with_loss(1.5))
        .build()
        .expect_err("loss out of range");
    assert!(matches!(err, BuildError::Faults(_)), "got {err:?}");
    assert!(err.to_string().contains("loss"));

    let err = gossip_base(8, &[4, 4], 1)
        .faults(
            FaultPlan::none().with_churn(vec![ChurnEvent::crash(NodeId::new(99), SimTime::ZERO)]),
        )
        .build()
        .expect_err("churn node out of range");
    assert!(matches!(err, BuildError::Faults(_)), "got {err:?}");
}

#[test]
fn non_neutral_faults_reject_synchronous_protocols() {
    let err = Sim::builder()
        .topology(Complete::new(16))
        .counts(&[8, 8])
        .protocol(TwoChoices::new())
        .faults(FaultPlan::none().with_loss(0.1))
        .build()
        .expect_err("faults are an async-model feature");
    assert_eq!(err, BuildError::FaultsRequireAsync);

    // A neutral plan is fine on a synchronous protocol: it is dropped.
    let out = Sim::builder()
        .topology(Complete::new(100))
        .counts(&[70, 30])
        .protocol(TwoChoices::new())
        .faults(FaultPlan::none())
        .seed(Seed::new(2))
        .build()
        .expect("neutral plan is a no-op")
        .run();
    assert_eq!(out.stop, StopReason::Unanimity);
}

// ------------------------------------------------------- seed determinism

#[test]
fn faulty_runs_are_seed_deterministic() {
    let plan = || {
        FaultPlan::none()
            .with_loss(0.2)
            .with_latency(LatencyModel::Uniform { lo: 0.0, hi: 0.5 })
            .with_churn(vec![ChurnEvent::window(
                NodeId::new(3),
                SimTime::from_secs(1.0),
                SimTime::from_secs(4.0),
            )])
            .with_adversary(AdversaryPlan {
                kind: AdversaryKind::Oblivious,
                budget: 16,
                start: SimTime::from_secs(0.5),
                interval: 0.25,
            })
    };
    let run = |seed: u64| {
        gossip_base(64, &[44, 20], seed)
            .faults(plan())
            .build()
            .expect("valid")
            .run()
    };
    assert_eq!(run(21), run(21), "same seed, same faulty run");
    assert_ne!(
        run(21).steps,
        run(22).steps,
        "different seeds should explore different fault realisations"
    );

    let rapid_run = |seed: u64| {
        rapid_base(128, &[80, 48], seed)
            .faults(plan())
            .build()
            .expect("valid")
            .run()
    };
    assert_eq!(rapid_run(23), rapid_run(23));
}
