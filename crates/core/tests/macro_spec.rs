//! The engine axis: `build()` vs `build_spec()` dispatch and the
//! macro-specific validation rules (complete topology, exchangeable
//! clocks, loss-only faults).

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::fault::{AdversaryKind, AdversaryPlan, ChurnEvent, FaultPlan, LatencyModel};
use rapid_sim::prelude::*;

fn gossip_builder(n: usize) -> SimBuilder {
    Sim::builder()
        .topology(Complete::new(n))
        .counts(&[3 * n as u64 / 4, n as u64 - 3 * n as u64 / 4])
        .gossip(GossipRule::TwoChoices)
        .seed(Seed::new(1))
}

/// Builds through the unified entry point and unwraps the macro-family
/// variant; validation errors pass through untouched.
fn macro_spec(builder: SimBuilder) -> Result<MacroSpec, BuildError> {
    builder
        .build_spec()
        .map(|spec| spec.into_macro().expect("macro-family assembly"))
}

#[test]
fn micro_is_the_default_and_macro_kinds_are_rejected_by_build() {
    assert!(gossip_builder(100).build().is_ok());
    assert!(gossip_builder(100)
        .engine(EngineKind::Micro)
        .build()
        .is_ok());
    for kind in [EngineKind::Macro, EngineKind::MeanField] {
        let err = gossip_builder(100).engine(kind).build().expect_err("macro");
        assert!(matches!(err, BuildError::EngineMismatch(_)), "{err}");
    }
}

#[test]
fn build_spec_dispatches_the_micro_kind_to_a_micro_sim() {
    let spec = gossip_builder(100).build_spec().expect("micro default");
    assert_eq!(spec.kind(), EngineKind::Micro);
    assert!(spec.into_micro().is_some());
}

#[test]
fn macro_spec_carries_the_assembly() {
    let spec = macro_spec(
        gossip_builder(1000)
            .engine(EngineKind::Macro)
            .clock(Clock::EventQueue { rate: 2.0 })
            .faults(FaultPlan::none().with_loss(0.1))
            .stop(StopCondition::StepBudget(123)),
    )
    .expect("valid macro assembly");
    assert_eq!(spec.kind, EngineKind::Macro);
    assert_eq!(spec.n, 1000);
    assert_eq!(spec.counts, vec![750, 250]);
    assert_eq!(spec.k(), 2);
    assert_eq!(spec.protocol.name(), "async-two-choices");
    assert_eq!(spec.rate, 2.0);
    assert_eq!(spec.loss, 0.1);
    assert_eq!(spec.stops, vec![StopCondition::StepBudget(123)]);
}

#[test]
fn macro_spec_materialises_distributions_without_per_node_state() {
    // n = 10⁹: would be gigabytes as a per-node Configuration; the spec
    // path must stay O(k).
    let spec = macro_spec(
        Sim::builder()
            .topology(Complete::new(1_000_000_000))
            .distribution(InitialDistribution::multiplicative_bias(4, 0.5))
            .rapid(Params::for_network_with_eps(1_000_000_000, 4, 0.5))
            .engine(EngineKind::Macro),
    )
    .expect("valid at n = 1e9");
    assert_eq!(spec.n, 1_000_000_000);
    assert_eq!(spec.counts.iter().sum::<u64>(), 1_000_000_000);
    assert_eq!(spec.protocol.name(), "rapid");
}

#[test]
fn macro_requires_the_complete_graph() {
    let err = macro_spec(
        Sim::builder()
            .topology(Cycle::new(100))
            .counts(&[75, 25])
            .gossip(GossipRule::TwoChoices)
            .engine(EngineKind::Macro),
    )
    .expect_err("cycle has no mean-field semantics");
    assert_eq!(err, BuildError::MacroRequiresComplete);
}

#[test]
fn macro_rejects_sync_protocols_and_halt_budgets() {
    let err = macro_spec(
        Sim::builder()
            .topology(Complete::new(100))
            .counts(&[75, 25])
            .protocol(TwoChoices::new())
            .engine(EngineKind::Macro),
    )
    .expect_err("sync protocol");
    assert!(matches!(err, BuildError::MacroUnsupported(_)), "{err}");

    let err = macro_spec(gossip_builder(100).halt_after(50).engine(EngineKind::Macro))
        .expect_err("halt budget");
    assert!(matches!(err, BuildError::MacroUnsupported(_)), "{err}");
}

#[test]
fn macro_rejects_non_exchangeable_clocks_and_jitter() {
    for clock in [
        Clock::UniformSkew { skew: 0.3 },
        Clock::Rates(vec![1.0; 100]),
    ] {
        let err = macro_spec(gossip_builder(100).engine(EngineKind::Macro).clock(clock))
            .expect_err("heterogeneous clock");
        assert!(matches!(err, BuildError::MacroUnsupported(_)), "{err}");
    }
    let err =
        macro_spec(gossip_builder(100).engine(EngineKind::Macro).jitter(2.0)).expect_err("jitter");
    assert!(matches!(err, BuildError::MacroUnsupported(_)), "{err}");
    // Invalid knobs still surface as their own errors, not as unsupported.
    let err = macro_spec(
        gossip_builder(100)
            .engine(EngineKind::Macro)
            .clock(Clock::EventQueue { rate: -1.0 }),
    )
    .expect_err("bad rate");
    assert!(matches!(err, BuildError::InvalidClock(_)), "{err}");
}

#[test]
fn macro_faults_compose_for_loss_only() {
    // Loss composes.
    assert!(macro_spec(
        gossip_builder(100)
            .engine(EngineKind::Macro)
            .faults(FaultPlan::none().with_loss(0.2))
    )
    .is_ok());
    // A fully neutral plan is fine too.
    let spec = macro_spec(
        gossip_builder(100)
            .engine(EngineKind::Macro)
            .faults(FaultPlan::none()),
    )
    .expect("neutral plan");
    assert_eq!(spec.loss, 0.0);
    // Latency, churn and adversaries have no count-level semantics.
    let latency = FaultPlan::none().with_latency(LatencyModel::Exponential { rate: 2.0 });
    let churn = FaultPlan::none().with_churn(vec![ChurnEvent::crash(
        NodeId::new(3),
        SimTime::from_secs(1.0),
    )]);
    let adversary = FaultPlan::none().with_adversary(AdversaryPlan {
        kind: AdversaryKind::Oblivious,
        budget: 5,
        start: SimTime::ZERO,
        interval: 1.0,
    });
    for plan in [latency, churn, adversary] {
        let err = macro_spec(gossip_builder(100).engine(EngineKind::Macro).faults(plan))
            .expect_err("per-node fault knob");
        assert!(matches!(err, BuildError::MacroUnsupported(_)), "{err}");
    }
    // Invalid plans are still typed fault errors.
    let err = macro_spec(
        gossip_builder(100)
            .engine(EngineKind::Macro)
            .faults(FaultPlan::none().with_loss(1.5)),
    )
    .expect_err("bad loss");
    assert!(matches!(err, BuildError::Faults(_)), "{err}");
}

#[test]
fn macro_size_mismatch_is_detected() {
    let err = macro_spec(
        Sim::builder()
            .topology(Complete::new(100))
            .counts(&[75, 20])
            .gossip(GossipRule::Voter)
            .engine(EngineKind::MeanField),
    )
    .expect_err("95 != 100");
    assert!(matches!(err, BuildError::SizeMismatch { .. }), "{err}");
}

#[test]
fn engine_kind_labels_are_stable() {
    assert_eq!(EngineKind::Micro.label(), "micro");
    assert_eq!(EngineKind::Macro.label(), "macro");
    assert_eq!(EngineKind::MeanField.label(), "mean-field");
    assert_eq!(EngineKind::default(), EngineKind::Micro);
}
