//! The observability layer's zero-overhead and non-interference
//! contracts.
//!
//! Instrumentation must be a *read-only* layer: attaching an obs handle
//! or an [`ObsObserver`] may not change a single byte of any outcome,
//! because nothing in the layer is allowed to touch an RNG stream. These
//! tests pin that three ways:
//!
//! * with an obs handle attached, the sharded engine still reproduces
//!   the exact golden FNV pins from `tests/sharding.rs` (same table —
//!   if one suite's pins move, both fail);
//! * a micro rapid run with an [`ObsObserver`] produces the same
//!   [`Outcome`] as the identical run without one, while the trace
//!   carries a non-empty, monotone phase trajectory;
//! * per-stream trace sequence numbers are gap-free under 1, 2, 4 and
//!   auto shard workers.

use std::sync::Arc;

use rapid_core::prelude::*;
use rapid_core::{ShardedProtocol, ShardedSim};
use rapid_graph::prelude::*;
use rapid_obs::{EventKind, Obs, TraceEvent};
use rapid_sim::parallelism::{Parallelism, Workers};
use rapid_sim::prelude::*;

/// FNV-1a over a byte stream (same construction as `tests/sharding.rs`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push_u64(&mut self, v: u64) {
        for &b in &v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

enum Topo {
    Clique,
    Er,
}

fn topology(topo: &Topo, n: usize) -> Box<dyn Topology + Send + Sync> {
    match topo {
        Topo::Clique => Box::new(Complete::new(n)),
        Topo::Er => Box::new(ErdosRenyi::sample(
            n,
            (32.0 / n as f64).min(1.0),
            Seed::new(99),
        )),
    }
}

fn engine(topo: &Topo, rapid: bool, n: usize, workers: usize) -> ShardedSim {
    let counts = [3 * n as u64 / 5, n as u64 - 3 * n as u64 / 5];
    let config = Configuration::from_counts(&counts).expect("valid");
    let proto = if rapid {
        ShardedProtocol::Rapid(Schedule::new(Params::for_network(n, 2)))
    } else {
        ShardedProtocol::Gossip(GossipRule::TwoChoices)
    };
    ShardedSim::new(
        topology(topo, n),
        config,
        proto,
        Seed::new(0x5A4D),
        1.0,
        workers,
    )
}

fn run_hash(sim: &mut ShardedSim) -> u64 {
    let winner = sim.run_until_consensus(1_000_000);
    let mut h = Fnv::new();
    h.push_u64(winner.map_or(u64::MAX, |c| c.index() as u64));
    h.push_u64(sim.epoch());
    h.push_u64(sim.steps());
    h.push_u64(sim.halted_count() as u64);
    h.push_u64(sim.jump_count());
    h.push_u64(sim.max_jump_displacement());
    for c in sim.config().colors() {
        h.push_u64(c.index() as u64);
    }
    if let Some(wt) = sim.working_times() {
        for t in wt {
            h.push_u64(t);
        }
    }
    h.0
}

/// The golden pins from `tests/sharding.rs`, verbatim. The instrumented
/// runs below must land on these exact values — instrumentation that
/// shifts any RNG draw moves the hash and fails here.
const GOLDEN: &[(&str, bool, usize, u64)] = &[
    ("gossip-er", false, 1 << 10, 0x5fc3_79bb_db51_690a),
    ("gossip-clique", false, 1 << 14, 0x8fce_1527_afbe_235e),
    ("rapid-clique", true, 1 << 10, 0x9921_e3ff_7d02_4d82),
    ("rapid-er", true, 1 << 14, 0xcc73_dd49_07e0_cfe3),
];

fn topo_of(label: &str) -> Topo {
    if label.ends_with("clique") {
        Topo::Clique
    } else {
        Topo::Er
    }
}

#[test]
fn instrumented_sharded_runs_match_the_uninstrumented_golden_pins() {
    for &(label, rapid, n, golden) in GOLDEN {
        let obs = Obs::new();
        let mut sim = engine(&topo_of(label), rapid, n, 4);
        sim.attach_obs(Arc::clone(&obs));
        let h = run_hash(&mut sim);
        assert_eq!(
            h, golden,
            "{label} n={n}: attaching obs changed the outcome bytes"
        );
        assert!(
            !obs.trace.is_empty(),
            "{label}: instrumentation attached but no events emitted"
        );
        let snap = obs.registry.snapshot();
        assert_eq!(
            snap.get_counter("sharded.steps"),
            Some(sim.steps()),
            "{label}: counter must equal the engine's own step count"
        );
        assert_eq!(snap.get_counter("sharded.epochs"), Some(sim.epoch()));
        if matches!(topo_of(label), Topo::Clique) && !rapid {
            assert!(
                snap.get_counter("sharded.clique_pulls").unwrap_or(0) > 0,
                "{label}: clique gossip must hit the histogram fast path"
            );
        }
    }
}

#[test]
fn trace_sequences_are_gap_free_under_every_parallelism() {
    let specs = ["1", "2", "4", "auto"];
    for spec in specs {
        let par = Parallelism::parse(spec).expect("valid parallelism spec");
        let workers = match par.shard_workers {
            Workers::Fixed(w) => w,
            Workers::Auto => 8,
        };
        let obs = Obs::new();
        let mut sim = engine(&Topo::Clique, true, 1 << 10, workers);
        sim.attach_obs(Arc::clone(&obs));
        sim.run_until_consensus(1_000_000);
        let records = obs.trace.records();
        assert!(!records.is_empty(), "parallelism {spec}: no events");
        let mut last: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for record in &records {
            match last.get(&record.stream) {
                None => assert_eq!(
                    record.seq, 0,
                    "parallelism {spec}: stream {} starts past 0",
                    record.stream
                ),
                Some(&prev) => assert_eq!(
                    record.seq,
                    prev + 1,
                    "parallelism {spec}: gap in stream {}",
                    record.stream
                ),
            }
            last.insert(record.stream.clone(), record.seq);
        }
    }
}

fn micro_rapid_builder(obs: Option<Arc<Obs>>) -> Sim {
    let n = 512;
    let mut b = Sim::builder()
        .topology(Complete::new(n))
        .counts(&[320, 192])
        .rapid(Params::for_network(n, 2))
        .clock(Clock::EventQueue { rate: 1.0 })
        .seed(Seed::new(0xB1A5));
    if let Some(obs) = obs {
        b = b.obs(obs);
    }
    b.build().expect("valid micro rapid assembly")
}

#[test]
fn obs_observer_never_changes_a_micro_outcome() {
    let baseline = micro_rapid_builder(None).run();

    let obs = Obs::new();
    let schedule = Schedule::new(Params::for_network(512, 2));
    let mut observer = ObsObserver::new(Arc::clone(&obs), "sim").with_schedule(schedule);
    let observed = micro_rapid_builder(Some(Arc::clone(&obs))).run_with(&mut [&mut observer]);

    assert_eq!(baseline.winner, observed.winner);
    assert_eq!(baseline.steps, observed.steps);
    assert_eq!(baseline.final_counts, observed.final_counts);
    assert_eq!(baseline.to_json(), observed.to_json());

    let records = obs.trace.records();
    let phases: Vec<u64> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::PhaseEnter { phase, .. } => Some(phase),
            _ => None,
        })
        .collect();
    assert!(!phases.is_empty(), "phase trajectory must be non-empty");
    assert!(
        phases.windows(2).all(|w| w[0] < w[1]),
        "median-working-time phases must be strictly increasing: {phases:?}"
    );
    assert_eq!(phases[0], 0, "the trajectory starts in phase 0");
    assert!(
        records
            .iter()
            .any(|r| r.event.kind() == EventKind::BiasSample),
        "bias samples must be present"
    );
}

#[test]
fn event_filter_limits_the_micro_trace() {
    let obs = Obs::new();
    obs.trace.set_filter(Some(&[EventKind::BiasSample]));
    let mut observer = ObsObserver::new(Arc::clone(&obs), "sim")
        .with_schedule(Schedule::new(Params::for_network(512, 2)));
    micro_rapid_builder(Some(Arc::clone(&obs))).run_with(&mut [&mut observer]);
    let records = obs.trace.records();
    assert!(!records.is_empty());
    assert!(records
        .iter()
        .all(|r| r.event.kind() == EventKind::BiasSample));
}
