//! Pins asynchronous simulation outcomes across the hot-path optimizations.
//!
//! `AsyncGossipSim::run_until_consensus` replaced its per-tick O(k)
//! unanimity scan with a single histogram lookup on the ticked node's
//! color, and the schedulers underneath were optimized (in-place heap root
//! replacement, precomputed expected gap). None of these may change a
//! simulation result: the golden values below — winner, step count, and
//! the exact bit pattern of the consensus time — were captured from the
//! pre-optimization code, and every path (sequential and event-queue
//! clocks, halt budgets, the full Rapid protocol) must still reproduce
//! them exactly.

use rapid_core::facade::{Clock, Sim, StopCondition};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

struct Golden {
    rule: GossipRule,
    counts: &'static [u64],
    seed: u64,
    event_queue: bool,
    winner: usize,
    steps: u64,
    time_bits: u64,
}

const GOLDENS: &[Golden] = &[
    Golden {
        rule: GossipRule::TwoChoices,
        counts: &[400, 100],
        seed: 1,
        event_queue: false,
        winner: 0,
        steps: 3662,
        time_bits: 0x401d_4bc6_a7ef_9b20,
    },
    Golden {
        rule: GossipRule::TwoChoices,
        counts: &[400, 100],
        seed: 2,
        event_queue: true,
        winner: 0,
        steps: 2828,
        time_bits: 0x4017_370f_7c03_5e22,
    },
    Golden {
        rule: GossipRule::Voter,
        counts: &[60, 40],
        seed: 3,
        event_queue: false,
        winner: 0,
        steps: 3732,
        time_bits: 0x4042_a8f5_c28f_5cca,
    },
    Golden {
        rule: GossipRule::ThreeMajority,
        counts: &[300, 100, 100],
        seed: 4,
        event_queue: true,
        winner: 0,
        steps: 3627,
        time_bits: 0x401d_b757_2116_5651,
    },
];

#[test]
fn gossip_outcomes_match_pre_optimization_goldens() {
    for g in GOLDENS {
        let mut b = Sim::builder()
            .topology(Complete::new(g.counts.iter().sum::<u64>() as usize))
            .counts(g.counts)
            .gossip(g.rule)
            .seed(Seed::new(g.seed))
            .stop(StopCondition::StepBudget(50_000_000));
        if g.event_queue {
            b = b.clock(Clock::EventQueue { rate: 1.0 });
        }
        let mut sim = b.build().expect("valid").into_gossip().expect("gossip");
        let out = sim.run_until_consensus(50_000_000).expect("converges");
        let label = format!("{} seed={} eq={}", g.rule, g.seed, g.event_queue);
        assert_eq!(out.winner.index(), g.winner, "{label}: winner");
        assert_eq!(out.steps, g.steps, "{label}: steps");
        assert_eq!(
            out.time.as_secs().to_bits(),
            g.time_bits,
            "{label}: consensus time"
        );
    }
}

#[test]
fn gossip_with_halt_budget_matches_golden() {
    let mut sim = Sim::builder()
        .topology(Complete::new(2000))
        .counts(&[1900, 100])
        .gossip(GossipRule::TwoChoices)
        .halt_after(100)
        .seed(Seed::new(9))
        .stop(StopCondition::StepBudget(50_000_000))
        .build()
        .expect("valid")
        .into_gossip()
        .expect("gossip");
    let out = sim.run_until_consensus(50_000_000).expect("converges");
    assert_eq!(out.winner.index(), 0);
    assert_eq!(out.steps, 11_423);
    assert_eq!(out.time.as_secs().to_bits(), 0x4016_d893_74bc_6889);
    assert_eq!(sim.halted_count(), 0);
    assert_eq!(sim.first_halt(), None);
}

#[test]
fn rapid_on_event_queue_matches_golden() {
    let counts = [472u64, 200, 200, 152];
    let params = Params::for_network(1024, 4);
    let mut sim = Sim::builder()
        .topology(Complete::new(1024))
        .counts(&counts)
        .rapid(params)
        .clock(Clock::EventQueue { rate: 1.0 })
        .seed(Seed::new(5))
        .build()
        .expect("valid")
        .into_rapid()
        .expect("rapid");
    let budget = sim.default_step_budget();
    let out = sim.run_until_consensus(budget).expect("converges");
    assert_eq!(out.winner.index(), 0);
    assert_eq!(out.steps, 295_105);
    assert_eq!(out.time.as_secs().to_bits(), 0x4071_ff64_354a_a829);
    assert!(out.before_first_halt);
}

/// The O(1) unanimity check must agree with the full O(k) scan at every
/// step, not only at the golden endpoints: run tick-by-tick and compare
/// the two detectors on each activation.
#[test]
fn fast_unanimity_detector_agrees_with_full_scan_stepwise() {
    let mut sim = Sim::builder()
        .topology(Complete::new(200))
        .counts(&[120, 50, 30])
        .gossip(GossipRule::TwoChoices)
        .seed(Seed::new(21))
        .stop(StopCondition::StepBudget(10_000_000))
        .build()
        .expect("valid")
        .into_gossip()
        .expect("gossip");
    let n = sim.config().n() as u64;
    for _ in 0..10_000_000u64 {
        let a = sim.tick();
        let cu = sim.config().color(a.node);
        let fast = sim.config().counts().count(cu) == n;
        let slow = sim.config().unanimous().is_some();
        assert_eq!(fast, slow, "detectors disagree at step {}", sim.steps());
        if slow {
            return;
        }
    }
    panic!("no consensus within budget");
}
