//! Property-based tests for the protocol core: configurations, schedules,
//! and protocol invariants that must hold for *every* parameterisation.

use proptest::prelude::*;
use rapid_core::asynchronous::{Action, Params, Schedule};
use rapid_core::opinion::{Color, ColorCounts, Configuration};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn counts_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..200, 2..8)
        .prop_filter("population must be non-empty", |c| c.iter().sum::<u64>() > 0)
}

proptest! {
    /// top_two agrees with a naive reference implementation.
    #[test]
    fn top_two_matches_naive(counts in counts_strategy()) {
        let cc = ColorCounts::from_counts(&counts).expect("validated");
        let t = cc.top_two();
        let max = *counts.iter().max().expect("non-empty");
        prop_assert_eq!(t.c1, max);
        prop_assert_eq!(counts[t.leader.index()], max);
        // Runner-up: max over all other indices.
        let runner_max = counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != t.leader.index())
            .map(|(_, &c)| c)
            .max()
            .expect("k >= 2");
        prop_assert_eq!(t.c2, runner_max);
        prop_assert!(t.c1 >= t.c2);
        prop_assert_ne!(t.leader, t.runner_up);
    }

    /// set_color preserves the total population and tracks counts exactly.
    #[test]
    fn configuration_bookkeeping(
        counts in counts_strategy(),
        moves in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..50),
    ) {
        let mut config = Configuration::from_counts(&counts).expect("validated");
        let n = config.n() as u64;
        let k = config.k();
        for (node_raw, color_raw) in moves {
            let u = NodeId::new(node_raw as usize % config.n());
            let c = Color::new(color_raw as usize % k);
            config.set_color(u, c);
            prop_assert_eq!(config.color(u), c);
            prop_assert_eq!(config.counts().n(), n);
            // Histogram must equal a recount from scratch.
            let mut recount = vec![0u64; k];
            for &col in config.colors() {
                recount[col.index()] += 1;
            }
            prop_assert_eq!(config.counts().as_slice(), recount.as_slice());
        }
    }

    /// Every phase of every valid schedule has exactly one Two-Choices
    /// sample, one commit, and (iff the gadget is on) one jump; the jump is
    /// the last slot.
    #[test]
    fn schedule_census_holds_for_all_params(
        n_exp in 4u32..24,
        k_exp in 1u32..10,
        eps in 0.05f64..2.0,
        gadget in any::<bool>(),
    ) {
        let n = 1usize << n_exp;
        let k = 1usize << k_exp;
        let mut params = Params::for_network_with_eps(n, k, eps);
        if !gadget {
            params = params.without_gadget();
        }
        let schedule = Schedule::new(params);
        let (tc, commit, bp, ss, jump) = schedule.phase_census();
        prop_assert_eq!(tc, 1);
        prop_assert_eq!(commit, 1);
        prop_assert_eq!(bp, params.bp_len());
        if gadget {
            prop_assert_eq!(ss, params.sync_samples as u64);
            prop_assert_eq!(jump, 1);
            prop_assert_eq!(
                schedule.action_at(params.phase_len() - 1),
                Action::Jump
            );
        } else {
            prop_assert_eq!(ss + jump, 0);
        }
        // Sample strictly precedes commit within the phase.
        prop_assert!(schedule.tc_sample_offset() < schedule.commit_offset());
        // Part 2 decodes to endgame then halt.
        prop_assert_eq!(schedule.action_at(params.part1_len()), Action::Endgame);
        prop_assert_eq!(
            schedule.action_at(params.part1_len() + params.endgame_ticks as u64),
            Action::Halt
        );
    }

    /// One synchronous round of any protocol preserves the population and
    /// never invents colors.
    #[test]
    fn sync_rounds_preserve_population(
        counts in counts_strategy(),
        seed in any::<u64>(),
        which in 0usize..4,
    ) {
        let total: u64 = counts.iter().sum();
        prop_assume!(total >= 2);
        let k = counts.len();
        let mut config = Configuration::from_counts(&counts).expect("validated");
        let g = Complete::new(config.n());
        let mut rng = SimRng::from_seed_value(Seed::new(seed));
        let mut voter = Voter::new();
        let mut tc = TwoChoices::new();
        let mut tm = ThreeMajority::new();
        let mut oeb = OneExtraBit::for_network(config.n().max(2), k);
        let proto: &mut dyn SyncProtocol = match which {
            0 => &mut voter,
            1 => &mut tc,
            2 => &mut tm,
            _ => &mut oeb,
        };
        let support_before: Vec<usize> = (0..k)
            .filter(|&j| config.counts().as_slice()[j] > 0)
            .collect();
        proto.round(&g, &mut config, &mut rng);
        prop_assert_eq!(config.counts().n(), total);
        // No color can appear that had zero support (protocols only copy).
        for j in 0..k {
            if !support_before.contains(&j) {
                prop_assert_eq!(config.counts().as_slice()[j], 0);
            }
        }
    }

    /// Unanimity is absorbing for the asynchronous protocol under any
    /// parameters: once all nodes agree, ticks never change the counts.
    #[test]
    fn unanimity_is_absorbing_async(seed in any::<u64>(), n in 8u64..128) {
        let params = Params::for_network(n as usize, 2);
        let mut sim = clique_rapid(&[n, 0], params, Seed::new(seed));
        for _ in 0..(n * 10) {
            sim.tick();
            prop_assert_eq!(sim.config().counts().count(Color::new(0)), n);
        }
    }

    /// Working times advance by exactly one per tick when the gadget is
    /// off (no jumps can occur).
    #[test]
    fn working_time_advances_without_gadget(seed in any::<u64>()) {
        let n = 64u64;
        let params = Params::for_network(n as usize, 2).without_gadget();
        let mut sim = clique_rapid(&[40, 24], params, Seed::new(seed));
        for _ in 0..500 {
            sim.tick();
        }
        prop_assert_eq!(sim.jump_count(), 0);
        // Real times equal working times when nothing ever jumps or halts
        // (500 ticks is far from part 2 here).
        prop_assert_eq!(sim.working_times(), sim.real_times());
    }
}
