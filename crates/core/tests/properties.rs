//! Property-style tests for the protocol core: configurations, schedules,
//! and protocol invariants that must hold for *every* parameterisation.
//! Driven by the deterministic [`rapid_sim::testkit`] harness.

use rapid_core::asynchronous::{Action, Params, Schedule};
use rapid_core::opinion::{Color, ColorCounts, Configuration};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_sim::testkit::{cases, Gen};

/// The paper's setting on `K_n`, built through the façade.
fn clique_rapid(
    counts: &[u64],
    params: Params,
    seed: Seed,
) -> RapidSim<rapid_core::facade::BoxedTopology, rapid_core::facade::BoxedSource> {
    let n: u64 = counts.iter().sum();
    Sim::builder()
        .topology(Complete::new(n as usize))
        .counts(counts)
        .rapid(params)
        .seed(seed)
        .build()
        .expect("valid configuration")
        .into_rapid()
        .expect("rapid protocol was selected")
}

/// 2–7 colors with counts in 0..200 and a non-empty population.
fn gen_counts(g: &mut Gen) -> Vec<u64> {
    loop {
        let counts = g.vec_u64(2..8, 0..200);
        if counts.iter().sum::<u64>() > 0 {
            return counts;
        }
    }
}

/// top_two agrees with a naive reference implementation.
#[test]
fn top_two_matches_naive() {
    cases(128, |g| {
        let counts = gen_counts(g);
        let cc = ColorCounts::from_counts(&counts).expect("validated");
        let t = cc.top_two();
        let max = *counts.iter().max().expect("non-empty");
        assert_eq!(t.c1, max);
        assert_eq!(counts[t.leader.index()], max);
        // Runner-up: max over all other indices.
        let runner_max = counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != t.leader.index())
            .map(|(_, &c)| c)
            .max()
            .expect("k >= 2");
        assert_eq!(t.c2, runner_max);
        assert!(t.c1 >= t.c2);
        assert_ne!(t.leader, t.runner_up);
    });
}

/// set_color preserves the total population and tracks counts exactly.
#[test]
fn configuration_bookkeeping() {
    cases(64, |g| {
        let counts = gen_counts(g);
        let mut config = Configuration::from_counts(&counts).expect("validated");
        let n = config.n() as u64;
        let k = config.k();
        for _ in 0..g.usize(0..50) {
            let u = NodeId::new(g.usize(0..config.n()));
            let c = Color::new(g.usize(0..k));
            config.set_color(u, c);
            assert_eq!(config.color(u), c);
            assert_eq!(config.counts().n(), n);
            // Histogram must equal a recount from scratch.
            let mut recount = vec![0u64; k];
            for &col in config.colors() {
                recount[col.index()] += 1;
            }
            assert_eq!(config.counts().as_slice(), recount.as_slice());
        }
    });
}

/// Every phase of every valid schedule has exactly one Two-Choices
/// sample, one commit, and (iff the gadget is on) one jump; the jump is
/// the last slot.
#[test]
fn schedule_census_holds_for_all_params() {
    cases(128, |g| {
        let n = 1usize << g.usize(4..24);
        let k = 1usize << g.usize(1..10);
        let eps = g.f64(0.05..2.0);
        let gadget = g.bool();
        let mut params = Params::for_network_with_eps(n, k, eps);
        if !gadget {
            params = params.without_gadget();
        }
        let schedule = Schedule::new(params);
        let (tc, commit, bp, ss, jump) = schedule.phase_census();
        assert_eq!(tc, 1);
        assert_eq!(commit, 1);
        assert_eq!(bp, params.bp_len());
        if gadget {
            assert_eq!(ss, params.sync_samples as u64);
            assert_eq!(jump, 1);
            assert_eq!(schedule.action_at(params.phase_len() - 1), Action::Jump);
        } else {
            assert_eq!(ss + jump, 0);
        }
        // Sample strictly precedes commit within the phase.
        assert!(schedule.tc_sample_offset() < schedule.commit_offset());
        // Part 2 decodes to endgame then halt.
        assert_eq!(schedule.action_at(params.part1_len()), Action::Endgame);
        assert_eq!(
            schedule.action_at(params.part1_len() + params.endgame_ticks as u64),
            Action::Halt
        );
    });
}

/// One synchronous round of any protocol preserves the population and
/// never invents colors.
#[test]
fn sync_rounds_preserve_population() {
    cases(64, |g| {
        let counts = gen_counts(g);
        let total: u64 = counts.iter().sum();
        if total < 2 {
            return;
        }
        let k = counts.len();
        let mut config = Configuration::from_counts(&counts).expect("validated");
        let complete = Complete::new(config.n());
        let mut rng = SimRng::from_seed_value(g.seed());
        let mut voter = Voter::new();
        let mut tc = TwoChoices::new();
        let mut tm = ThreeMajority::new();
        let mut oeb = OneExtraBit::for_network(config.n().max(2), k);
        let proto: &mut dyn SyncProtocol = match g.usize(0..4) {
            0 => &mut voter,
            1 => &mut tc,
            2 => &mut tm,
            _ => &mut oeb,
        };
        let support_before: Vec<usize> = (0..k)
            .filter(|&j| config.counts().as_slice()[j] > 0)
            .collect();
        proto.round(&complete, &mut config, &mut rng);
        assert_eq!(config.counts().n(), total);
        // No color can appear that had zero support (protocols only copy).
        for j in 0..k {
            if !support_before.contains(&j) {
                assert_eq!(config.counts().as_slice()[j], 0);
            }
        }
    });
}

/// Unanimity is absorbing for the asynchronous protocol under any
/// parameters: once all nodes agree, ticks never change the counts.
#[test]
fn unanimity_is_absorbing_async() {
    cases(16, |g| {
        let n = g.u64(8..128);
        let params = Params::for_network(n as usize, 2);
        let mut sim = clique_rapid(&[n, 0], params, g.seed());
        for _ in 0..(n * 10) {
            sim.tick();
            assert_eq!(sim.config().counts().count(Color::new(0)), n);
        }
    });
}

/// Working times advance by exactly one per tick when the gadget is
/// off (no jumps can occur).
#[test]
fn working_time_advances_without_gadget() {
    cases(16, |g| {
        let n = 64u64;
        let params = Params::for_network(n as usize, 2).without_gadget();
        let mut sim = clique_rapid(&[40, 24], params, g.seed());
        for _ in 0..500 {
            sim.tick();
        }
        assert_eq!(sim.jump_count(), 0);
        // Real times equal working times when nothing ever jumps or halts
        // (500 ticks is far from part 2 here).
        assert_eq!(sim.working_times(), sim.real_times());
    });
}
