//! Shard-count invariance of the epoch engine.
//!
//! The sharded engine's documented determinism guarantee: because every
//! node draws from its own per-(epoch, node) stream and every pull
//! resolves against the frozen epoch-start snapshot, the run's result is
//! bit-identical under **any** worker count — sharding is a pure
//! throughput knob. These tests pin that guarantee three ways:
//!
//! * 1, 2, 4 and 8 shards produce identical final states at
//!   n ∈ {2¹⁰, 2¹⁴} for both a gossip rule and the full Rapid protocol,
//!   on both the clique fast path and the general (Erdős–Rényi) path;
//! * the final state's FNV-1a hash matches a **golden pin**, so an
//!   engine change that silently alters outcomes (not just their
//!   invariance) fails loudly and must update the pin deliberately;
//! * a shard count that does not divide n gets the same result as one
//!   worker (the partition decides who executes a node, never what the
//!   node draws).

use rapid_core::prelude::*;
use rapid_core::{ShardedProtocol, ShardedSim};
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

/// FNV-1a over a byte stream: stable, dependency-free, endian-fixed.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_u64(&mut self, v: u64) {
        self.push(&v.to_le_bytes());
    }
}

/// Which topology a case runs on: the clique histogram fast path or the
/// general snapshot-array path.
enum Topo {
    Clique,
    Er,
}

fn topology(topo: &Topo, n: usize) -> Box<dyn Topology + Send + Sync> {
    match topo {
        Topo::Clique => Box::new(Complete::new(n)),
        // Dense enough that the paper's protocols mix; isolated nodes
        // are patched by the sampler.
        // lint: allow(rng-stream-registry): the graph is part of the test fixture, not the run
        Topo::Er => Box::new(ErdosRenyi::sample(
            n,
            (32.0 / n as f64).min(1.0),
            Seed::new(99),
        )),
    }
}

fn engine(topo: &Topo, rapid: bool, n: usize, workers: usize) -> ShardedSim {
    let counts = [3 * n as u64 / 5, n as u64 - 3 * n as u64 / 5];
    // lint: allow(panic-hygiene): fixed test inputs make the configuration valid by construction
    let config = Configuration::from_counts(&counts).expect("valid");
    let proto = if rapid {
        ShardedProtocol::Rapid(Schedule::new(Params::for_network(n, 2)))
    } else {
        ShardedProtocol::Gossip(GossipRule::TwoChoices)
    };
    ShardedSim::new(
        topology(topo, n),
        config,
        proto,
        Seed::new(0x5A4D),
        1.0,
        workers,
    )
}

/// Runs to consensus (or the epoch cap) and hashes everything the run
/// decided: winner, epochs, steps, per-node colors, halt/jump counters.
fn run_hash(topo: &Topo, rapid: bool, n: usize, workers: usize) -> u64 {
    let mut sim = engine(topo, rapid, n, workers);
    let winner = sim.run_until_consensus(1_000_000);
    let mut h = Fnv::new();
    h.push_u64(winner.map_or(u64::MAX, |c| c.index() as u64));
    h.push_u64(sim.epoch());
    h.push_u64(sim.steps());
    h.push_u64(sim.halted_count() as u64);
    h.push_u64(sim.jump_count());
    h.push_u64(sim.max_jump_displacement());
    for c in sim.config().colors() {
        h.push_u64(c.index() as u64);
    }
    if let Some(wt) = sim.working_times() {
        for t in wt {
            h.push_u64(t);
        }
    }
    h.0
}

/// The golden pins: (protocol, topology, n) → FNV-1a of the final state.
/// Regenerate deliberately (print `run_hash(..)` at one worker) whenever
/// the engine's stream layout changes; every entry is also asserted
/// identical across 1, 2, 4 and 8 shards.
const GOLDEN: &[(&str, bool, usize, u64)] = &[
    ("gossip-er", false, 1 << 10, 0x5fc3_79bb_db51_690a),
    ("gossip-clique", false, 1 << 14, 0x8fce_1527_afbe_235e),
    ("rapid-clique", true, 1 << 10, 0x9921_e3ff_7d02_4d82),
    ("rapid-er", true, 1 << 14, 0xcc73_dd49_07e0_cfe3),
];

fn topo_of(label: &str) -> Topo {
    if label.ends_with("clique") {
        Topo::Clique
    } else {
        Topo::Er
    }
}

#[test]
fn shard_counts_one_two_four_eight_are_bit_identical() {
    for &(label, rapid, n, _) in GOLDEN {
        let baseline = run_hash(&topo_of(label), rapid, n, 1);
        for workers in [2, 4, 8] {
            let h = run_hash(&topo_of(label), rapid, n, workers);
            assert_eq!(
                h, baseline,
                "{label} n={n}: {workers} shards diverged from 1 shard"
            );
        }
    }
}

#[test]
fn final_states_match_the_golden_pins() {
    for &(label, rapid, n, golden) in GOLDEN {
        let h = run_hash(&topo_of(label), rapid, n, 4);
        assert_eq!(
            h, golden,
            "{label} n={n}: outcome drifted from pin (got {h:#018x}); \
             if the engine's stream layout changed deliberately, update GOLDEN"
        );
    }
}

/// The PR's scale acceptance: the sharded micro engine completes a full
/// Rapid run at n = 10⁷ on a sparse Erdős–Rényi graph. Multi-minute in
/// release mode, so `--ignored`-gated; run as
/// `cargo test --release -p rapid-core --test sharding -- --ignored`.
#[test]
#[ignore = "multi-minute release-mode acceptance run at n = 10^7"]
fn rapid_completes_at_ten_million_on_er() {
    let n = 10_000_000usize;
    // Average degree 20 ≫ ln n ≈ 16: connected with overwhelming
    // probability, and sparse enough to build in seconds.
    // lint: allow(rng-stream-registry): the graph is part of the test fixture, not the run
    let g = ErdosRenyi::sample(n, 20.0 / n as f64, Seed::new(7));
    let counts = [
        n as u64 / 2 + n as u64 / 20,
        n as u64 - n as u64 / 2 - n as u64 / 20,
    ];
    // lint: allow(panic-hygiene): fixed test inputs make the configuration valid by construction
    let config = Configuration::from_counts(&counts).expect("valid");
    let proto = ShardedProtocol::Rapid(Schedule::new(Params::for_network(n, 2)));
    let mut sim = ShardedSim::new(Box::new(g), config, proto, Seed::new(0xACC), 1.0, 4);
    let winner = sim.run_until_consensus(100_000);
    assert_eq!(
        winner,
        Some(Color::new(0)),
        "initial 55/45 majority must win at n = 10^7 (epochs: {})",
        sim.epoch()
    );
}

#[test]
fn non_dividing_shard_counts_are_still_identical() {
    // 1000 % 7 != 0 and 1000 % 8 == 0 with unequal heads: both partitions
    // must reproduce the single-shard run exactly.
    let baseline = {
        let mut sim = engine(&Topo::Clique, false, 1000, 1);
        sim.run_until_consensus(1_000_000);
        sim.config().colors().to_vec()
    };
    for workers in [3, 7, 8] {
        let mut sim = engine(&Topo::Clique, false, 1000, workers);
        sim.run_until_consensus(1_000_000);
        assert_eq!(
            sim.config().colors(),
            &baseline[..],
            "{workers} shards over n=1000 diverged"
        );
    }
}
