//! `SimBuilder::build_spec` as the single build entry point.
//!
//! `build_spec` dispatches on the engine kind and returns the matching
//! [`Spec`] variant. These tests pin that the micro variant is the same
//! artifact `build()` produces (config-and-debug equality for the
//! stateful engine), that every kind lands in its own variant, that
//! validation errors are kind-independent, and that the micro-only
//! `build()` keeps rejecting non-micro kinds.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn builder(n: usize, kind: EngineKind) -> SimBuilder {
    Sim::builder()
        .topology(Complete::new(n))
        .counts(&[3 * n as u64 / 4, n as u64 - 3 * n as u64 / 4])
        .gossip(GossipRule::TwoChoices)
        .seed(Seed::new(11))
        .engine(kind)
}

#[test]
fn micro_spec_matches_build() {
    let old = builder(64, EngineKind::Micro).build().expect("build");
    let new = builder(64, EngineKind::Micro)
        .build_spec()
        .expect("build_spec");
    assert_eq!(new.kind(), EngineKind::Micro);
    let new = new.into_micro().expect("micro variant");
    assert_eq!(old.config(), new.config());
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn build_spec_yields_the_macro_variants() {
    for kind in [EngineKind::Macro, EngineKind::MeanField] {
        let new = builder(1000, kind).build_spec().expect("build_spec");
        assert_eq!(new.kind(), kind);
        let new = new.into_macro().expect("macro variant");
        assert_eq!(new.kind, kind);
        assert_eq!(new.n, 1000);
        assert_eq!(new.counts, vec![750, 250]);
    }
}

#[test]
fn build_spec_yields_the_net_variant() {
    let new = builder(64, EngineKind::Net)
        .build_spec()
        .expect("build_spec");
    assert_eq!(new.kind(), EngineKind::Net);
    let new = new.into_net().expect("net variant");
    assert_eq!(new.topology.n(), 64);
    assert_eq!(new.config.n(), 64);
    assert_eq!(new.seed, Seed::new(11));
    assert!(new.stops.is_empty());
}

#[test]
fn build_spec_reports_kind_independent_validation_errors() {
    // A missing protocol fails identically for every engine kind.
    for kind in [
        EngineKind::Micro,
        EngineKind::Macro,
        EngineKind::MeanField,
        EngineKind::Net,
    ] {
        let err = Sim::builder()
            .topology(Complete::new(16))
            .counts(&[12, 4])
            .engine(kind)
            .build_spec()
            .expect_err("build_spec");
        assert_eq!(err, BuildError::MissingProtocol);
    }
    // The micro-only entry point agrees with the dispatcher.
    let old = Sim::builder()
        .topology(Complete::new(16))
        .counts(&[12, 4])
        .build()
        .expect_err("build");
    assert_eq!(old, BuildError::MissingProtocol);
}

#[test]
fn into_helpers_reject_the_other_variants() {
    let spec = builder(64, EngineKind::Macro).build_spec().expect("macro");
    assert!(spec.into_micro().is_none());
    let spec = builder(64, EngineKind::Net).build_spec().expect("net");
    assert!(spec.into_macro().is_none());
    let spec = builder(64, EngineKind::Micro).build_spec().expect("micro");
    assert!(spec.into_net().is_none());
    // Mean-field specs surface through the shared macro accessor.
    let spec = builder(64, EngineKind::MeanField)
        .build_spec()
        .expect("mean-field");
    assert!(spec.into_macro().is_some());
}

#[test]
fn build_remains_micro_only() {
    for kind in [EngineKind::Macro, EngineKind::MeanField, EngineKind::Net] {
        let err = builder(64, kind).build().expect_err("non-micro via build");
        assert!(matches!(err, BuildError::EngineMismatch(_)), "{err}");
    }
}
