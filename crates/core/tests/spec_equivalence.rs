//! `SimBuilder::build_spec` vs the kind-specific entry points.
//!
//! The dispatching builder is new API surface; the deprecated
//! `build_macro_spec` / `build_net_spec` shims (and `build` for micro)
//! stay for one release. These tests pin that both paths produce the
//! same artifact from the same assembly — field-for-field for the
//! pure-data specs, config-and-debug for the stateful micro engine —
//! so callers can migrate without re-validating behavior.

// The whole point of this file is to compare against the deprecated shims.
#![allow(deprecated)]

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn builder(n: usize, kind: EngineKind) -> SimBuilder {
    Sim::builder()
        .topology(Complete::new(n))
        .counts(&[3 * n as u64 / 4, n as u64 - 3 * n as u64 / 4])
        .gossip(GossipRule::TwoChoices)
        .seed(Seed::new(11))
        .engine(kind)
}

#[test]
fn micro_spec_matches_build() {
    let old = builder(64, EngineKind::Micro).build().expect("build");
    let new = builder(64, EngineKind::Micro)
        .build_spec()
        .expect("build_spec");
    assert_eq!(new.kind(), EngineKind::Micro);
    let new = new.into_micro().expect("micro variant");
    assert_eq!(old.config(), new.config());
    assert_eq!(format!("{old:?}"), format!("{new:?}"));
}

#[test]
fn macro_spec_matches_build_macro_spec() {
    for kind in [EngineKind::Macro, EngineKind::MeanField] {
        let old = builder(1000, kind).build_macro_spec().expect("shim");
        let new = builder(1000, kind).build_spec().expect("build_spec");
        assert_eq!(new.kind(), kind);
        let new = new.into_macro().expect("macro variant");
        assert_eq!(old, new);
        assert_eq!(new.kind, kind);
    }
}

#[test]
fn net_spec_matches_build_net_spec() {
    let old = builder(64, EngineKind::Net).build_net_spec().expect("shim");
    let new = builder(64, EngineKind::Net)
        .build_spec()
        .expect("build_spec");
    assert_eq!(new.kind(), EngineKind::Net);
    let new = new.into_net().expect("net variant");
    assert_eq!(old.topology.n(), new.topology.n());
    assert_eq!(old.config, new.config);
    assert_eq!(old.protocol, new.protocol);
    assert_eq!(old.rate, new.rate);
    assert_eq!(old.seed, new.seed);
    assert_eq!(old.stops, new.stops);
}

#[test]
fn build_spec_reports_the_same_validation_errors() {
    // A missing protocol fails identically through either entry point,
    // for every engine kind.
    for kind in [
        EngineKind::Micro,
        EngineKind::Macro,
        EngineKind::MeanField,
        EngineKind::Net,
    ] {
        let bare = || {
            Sim::builder()
                .topology(Complete::new(16))
                .counts(&[12, 4])
                .engine(kind)
        };
        let old = match kind {
            EngineKind::Micro => bare().build().expect_err("micro"),
            EngineKind::Macro | EngineKind::MeanField => {
                bare().build_macro_spec().expect_err("macro")
            }
            EngineKind::Net => bare().build_net_spec().expect_err("net"),
        };
        let new = bare().build_spec().expect_err("build_spec");
        assert_eq!(old, new);
        assert_eq!(new, BuildError::MissingProtocol);
    }
}

#[test]
fn into_helpers_reject_the_other_variants() {
    let spec = builder(64, EngineKind::Macro).build_spec().expect("macro");
    assert!(spec.into_micro().is_none());
    let spec = builder(64, EngineKind::Net).build_spec().expect("net");
    assert!(spec.into_macro().is_none());
    let spec = builder(64, EngineKind::Micro).build_spec().expect("micro");
    assert!(spec.into_net().is_none());
    // Mean-field specs surface through the shared macro accessor.
    let spec = builder(64, EngineKind::MeanField)
        .build_spec()
        .expect("mean-field");
    assert!(spec.into_macro().is_some());
}

#[test]
fn deprecated_shims_still_guard_engine_kinds() {
    // The shims keep their historical mismatch errors so existing
    // callers that relied on them see unchanged behavior.
    let err = builder(64, EngineKind::Micro)
        .build_macro_spec()
        .expect_err("micro via macro shim");
    assert!(matches!(err, BuildError::EngineMismatch(_)));
    let err = builder(64, EngineKind::Macro)
        .build_net_spec()
        .expect_err("macro via net shim");
    assert!(matches!(err, BuildError::EngineMismatch(_)));
}
