//! The `xp` command line: one multiplexed driver for every experiment.
//!
//! Replaces the sixteen one-off `exp_*` binaries with a single interface
//! over the [`crate::registry::registry`]:
//!
//! ```text
//! xp list                 # every experiment: id, anchor, title
//! xp info e06             # parameter schema with defaults and presets
//! xp run e06 --quick --set ns=65536 --set trials=20
//! xp run e01 e04 --format csv --out /tmp/reports
//! xp all --quick          # the full CI sweep
//! ```
//!
//! Parsing is table-driven and fully typed: every user mistake maps to a
//! [`CliError`] variant (and exit code 2) instead of a panic or a silent
//! default. Reports are printed in the chosen [`OutputFormat`] and saved
//! as JSON next to the workspace's build artifacts — resolved against the
//! crate's manifest, not the current directory, so `xp` lands its files
//! in the same place no matter where it is invoked from (override with
//! `--out DIR`).

use std::path::{Path, PathBuf};

use rapid_obs::{EventKind, Obs};
use rapid_sim::rng::Seed;

use crate::experiment::Experiment;
use crate::json::JsonValue;
use crate::params::{ParamError, ParamMap, Preset};
use crate::registry;
use crate::report::Report;
use crate::runner::{Parallelism, Workers};

/// How a report is rendered on stdout.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Aligned text tables (the default).
    #[default]
    Table,
    /// The report's JSON document.
    Json,
    /// RFC-4180-style CSV with `#` provenance lines.
    Csv,
}

impl OutputFormat {
    fn parse(s: &str) -> Result<OutputFormat, CliError> {
        match s {
            "table" => Ok(OutputFormat::Table),
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            _ => Err(CliError::BadFormat(s.to_string())),
        }
    }
}

/// Options shared by `xp run` and `xp all`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RunOpts {
    /// `--quick` selects the CI-scale preset.
    pub preset: Preset,
    /// `--set key=value` overrides, applied in order.
    pub sets: Vec<(String, String)>,
    /// `--seed N` overrides every experiment's master seed.
    pub seed: Option<u64>,
    /// `--parallelism SPEC` sets trial (and, as `TRIALSxSHARDS`, shard)
    /// workers; `--threads N` is the back-compat alias for the trial
    /// axis (default: all cores for trials, one shard worker).
    pub parallelism: Parallelism,
    /// `--format table|json|csv`.
    pub format: OutputFormat,
    /// `--out DIR` overrides the save directory.
    pub out: Option<PathBuf>,
}

/// A parsed `xp` invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `xp help` / `--help` / no arguments.
    Help,
    /// `xp list [--markdown]`.
    List {
        /// Render the README catalog table instead of the plain listing.
        markdown: bool,
    },
    /// `xp info <id>`.
    Info {
        /// Experiment id.
        id: String,
    },
    /// `xp run <id>... [options]`.
    Run {
        /// Experiment ids, in run order.
        ids: Vec<String>,
        /// Shared run options.
        opts: RunOpts,
    },
    /// `xp all [options]`.
    All {
        /// Shared run options.
        opts: RunOpts,
    },
    /// `xp trace <id> [options]`: a traced run with the obs layer
    /// attached, written as JSONL.
    Trace {
        /// Experiment id.
        id: String,
        /// Shared run options (`--out` names the JSONL *file* here).
        opts: RunOpts,
        /// `--events kind,kind` filter (empty = every kind).
        events: Vec<EventKind>,
    },
}

/// A user error in the `xp` invocation (exit code 2).
#[derive(Clone, Debug, PartialEq)]
pub enum CliError {
    /// The first argument is not a known subcommand.
    UnknownCommand(String),
    /// An id does not name a registry experiment.
    UnknownExperiment(String),
    /// A flag is not recognised by this subcommand.
    UnknownFlag(String),
    /// A flag that needs a value was given none.
    MissingValue(&'static str),
    /// `xp run` / `xp info` without an experiment id.
    MissingExperiment,
    /// A positional argument where none is accepted.
    UnexpectedArg(String),
    /// A numeric flag value failed to parse.
    BadNumber {
        /// The flag.
        flag: &'static str,
        /// The offending text.
        value: String,
    },
    /// `--format` with something other than `table|json|csv`.
    BadFormat(String),
    /// `--set` without a `key=value` payload.
    BadSet(String),
    /// `--parallelism` with an unparsable worker spec.
    BadParallelism(String),
    /// `--events` with a name that is not a trace-event kind.
    BadEvent(String),
    /// `xp trace` on an experiment without a traced variant.
    NoTrace(String),
    /// The trace JSONL file could not be written.
    TraceIo {
        /// The path that failed.
        path: String,
        /// The rendered I/O error.
        error: String,
    },
    /// A `--set` rejected by the experiment's schema.
    Param {
        /// The experiment whose schema rejected it.
        id: String,
        /// The underlying error.
        error: ParamError,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?} (try list, info, run, all)")
            }
            CliError::UnknownExperiment(id) => {
                write!(f, "no experiment {id:?} (see `xp list`)")
            }
            CliError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::MissingExperiment => write!(f, "an experiment id is required"),
            CliError::UnexpectedArg(a) => write!(f, "unexpected argument {a:?}"),
            CliError::BadNumber { flag, value } => {
                write!(f, "{flag} needs a positive integer, got {value:?}")
            }
            CliError::BadFormat(v) => {
                write!(f, "--format must be table, json or csv, got {v:?}")
            }
            CliError::BadSet(v) => write!(f, "--set needs KEY=VALUE, got {v:?}"),
            CliError::BadEvent(v) => {
                let kinds: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
                write!(
                    f,
                    "--events got unknown kind {v:?} (kinds: {})",
                    kinds.join(", ")
                )
            }
            CliError::NoTrace(id) => {
                write!(f, "{id} has no traced variant (try e06 or e26)")
            }
            CliError::TraceIo { path, error } => {
                write!(f, "cannot write trace to {path}: {error}")
            }
            CliError::BadParallelism(v) => write!(
                f,
                "--parallelism needs N, TRIALSxSHARDS or auto (each axis a \
                 positive count or `auto`), got {v:?}"
            ),
            CliError::Param { id, error } => write!(f, "{id}: {error}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses an `xp` argument vector (without the program name).
///
/// # Errors
///
/// Returns the first [`CliError`] encountered, left to right.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().map(String::as_str).peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => {
            let mut markdown = false;
            for arg in it {
                match arg {
                    "--markdown" => markdown = true,
                    flag if flag.starts_with('-') => {
                        return Err(CliError::UnknownFlag(flag.to_string()))
                    }
                    other => return Err(CliError::UnexpectedArg(other.to_string())),
                }
            }
            Ok(Command::List { markdown })
        }
        "info" => {
            let id = it.next().ok_or(CliError::MissingExperiment)?.to_string();
            require_known(&id)?;
            if let Some(extra) = it.next() {
                return Err(CliError::UnexpectedArg(extra.to_string()));
            }
            Ok(Command::Info { id })
        }
        "run" => {
            let (ids, opts) = parse_run_args(it)?;
            if ids.is_empty() {
                return Err(CliError::MissingExperiment);
            }
            for id in &ids {
                require_known(id)?;
            }
            Ok(Command::Run { ids, opts })
        }
        "all" => {
            let (ids, opts) = parse_run_args(it)?;
            if let Some(extra) = ids.first() {
                return Err(CliError::UnexpectedArg(extra.clone()));
            }
            Ok(Command::All { opts })
        }
        "trace" => {
            let (mut ids, opts, events) = parse_run_args_with_events(it, true)?;
            if ids.is_empty() {
                return Err(CliError::MissingExperiment);
            }
            if ids.len() > 1 {
                return Err(CliError::UnexpectedArg(ids.swap_remove(1)));
            }
            let id = ids.remove(0);
            require_known(&id)?;
            Ok(Command::Trace { id, opts, events })
        }
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn require_known(id: &str) -> Result<(), CliError> {
    registry::find(id)
        .map(|_| ())
        .ok_or_else(|| CliError::UnknownExperiment(id.to_string()))
}

fn parse_run_args<'a>(
    it: std::iter::Peekable<impl Iterator<Item = &'a str>>,
) -> Result<(Vec<String>, RunOpts), CliError> {
    let (ids, opts, _) = parse_run_args_with_events(it, false)?;
    Ok((ids, opts))
}

fn parse_run_args_with_events<'a>(
    mut it: std::iter::Peekable<impl Iterator<Item = &'a str>>,
    allow_events: bool,
) -> Result<(Vec<String>, RunOpts, Vec<EventKind>), CliError> {
    let mut ids = Vec::new();
    let mut opts = RunOpts::default();
    let mut events = Vec::new();
    while let Some(arg) = it.next() {
        match arg {
            "--quick" => opts.preset = Preset::Quick,
            "--events" if allow_events => {
                let v = it.next().ok_or(CliError::MissingValue("--events"))?;
                for name in v.split(',') {
                    let kind = EventKind::parse(name)
                        .ok_or_else(|| CliError::BadEvent(name.to_string()))?;
                    if !events.contains(&kind) {
                        events.push(kind);
                    }
                }
            }
            "--set" => {
                let kv = it.next().ok_or(CliError::MissingValue("--set"))?;
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| CliError::BadSet(kv.to_string()))?;
                if key.is_empty() {
                    return Err(CliError::BadSet(kv.to_string()));
                }
                opts.sets.push((key.to_string(), value.to_string()));
            }
            "--seed" => {
                let v = it.next().ok_or(CliError::MissingValue("--seed"))?;
                opts.seed = Some(
                    v.replace('_', "")
                        .parse()
                        .map_err(|_| CliError::BadNumber {
                            flag: "--seed",
                            value: v.to_string(),
                        })?,
                );
            }
            "--parallelism" => {
                let v = it.next().ok_or(CliError::MissingValue("--parallelism"))?;
                opts.parallelism =
                    Parallelism::parse(v).map_err(|_| CliError::BadParallelism(v.to_string()))?;
            }
            "--threads" => {
                // Back-compat alias for `--parallelism N` (trial workers
                // only), with its historical strict-integer errors.
                let v = it.next().ok_or(CliError::MissingValue("--threads"))?;
                let n: usize = v.parse().map_err(|_| CliError::BadNumber {
                    flag: "--threads",
                    value: v.to_string(),
                })?;
                if n == 0 {
                    return Err(CliError::BadNumber {
                        flag: "--threads",
                        value: v.to_string(),
                    });
                }
                opts.parallelism = Parallelism {
                    trial_workers: Workers::fixed(n),
                    ..Parallelism::default()
                };
            }
            "--format" => {
                let v = it.next().ok_or(CliError::MissingValue("--format"))?;
                opts.format = OutputFormat::parse(v)?;
            }
            "--out" => {
                let v = it.next().ok_or(CliError::MissingValue("--out"))?;
                opts.out = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => return Err(CliError::UnknownFlag(flag.to_string())),
            id => ids.push(id.to_string()),
        }
    }
    Ok((ids, opts, events))
}

/// The directory reports land in without `--out`: `target/experiments`
/// under the *workspace root* (resolved from this crate's manifest at
/// compile time), never the caller's working directory. When the
/// compile-time checkout no longer exists (a binary copied to another
/// machine), falls back to the cwd so reports still land somewhere
/// sensible instead of a dead absolute path.
pub fn default_out_dir() -> PathBuf {
    let root = workspace_root();
    if root.is_dir() {
        root.join("target").join("experiments")
    } else {
        Path::new("target").join("experiments")
    }
}

fn workspace_root() -> PathBuf {
    // crates/experiments -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        // lint: allow(panic-hygiene): CARGO_MANIFEST_DIR of a workspace member always has the workspace root two levels up
        .expect("manifest dir has a workspace root two levels up")
        .to_path_buf()
}

/// Writes to stdout, treating a closed pipe (`xp ... | head`) as a
/// normal early exit instead of letting `println!` panic with a
/// broken-pipe backtrace.
fn write_out(args: std::fmt::Arguments<'_>, newline: bool) {
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let res = lock.write_fmt(args).and_then(|()| {
        if newline {
            lock.write_all(b"\n")
        } else {
            Ok(())
        }
    });
    if let Err(e) = res {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("xp: cannot write to stdout: {e}");
        std::process::exit(1);
    }
}

macro_rules! outln {
    () => { write_out(format_args!(""), true) };
    ($($t:tt)*) => { write_out(format_args!($($t)*), true) };
}
macro_rules! outp {
    ($($t:tt)*) => { write_out(format_args!($($t)*), false) };
}

/// Prints `report` in `format` and saves it under `out` (JSON always;
/// CSV too when that is the chosen format). Save notices and failures
/// go to stderr so stdout stays machine-readable (`xp … --format json
/// | jq .` must parse); failures warn but do not abort the run.
pub fn emit(report: &Report, format: OutputFormat, out: &Path) {
    match format {
        OutputFormat::Table => outln!("{report}"),
        OutputFormat::Json => outln!("{}", report.to_json()),
        OutputFormat::Csv => outp!("{}", report.to_csv()),
    }
    match report.save_json(out) {
        Ok(path) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warning: could not save JSON: {e}]"),
    }
    if format == OutputFormat::Csv {
        let path = out.join(format!("{}.csv", report.id.to_lowercase()));
        match std::fs::write(&path, report.to_csv()) {
            Ok(()) => eprintln!("[saved {}]", path.display()),
            Err(e) => eprintln!("[warning: could not save CSV: {e}]"),
        }
    }
}

const USAGE: &str = "\
xp — run the paper's experiments (Elsässer et al., PODC 2017)

USAGE:
    xp list [--markdown]          list every experiment
    xp info <id>                  show an experiment's parameter schema
    xp run <id>... [OPTIONS]      run one or more experiments
    xp all [OPTIONS]              run every registered experiment
    xp trace <id> [OPTIONS]       traced run; events land in a JSONL file
    xp bench ...                  micro-benchmarks (see `xp bench help`)
    xp net run [OPTIONS]          boot a real deployment (see `xp net help`)
    xp help                       this message

OPTIONS (run / all):
    --quick                CI-scale preset (seconds instead of minutes)
    --set KEY=VALUE        override one parameter (repeatable; lists are
                           comma-separated, e.g. --set ns=4096,8192)
    --seed N               override the master seed
    --parallelism SPEC     worker counts: N, TRIALSxSHARDS or auto, each
                           axis a count or `auto` (default: autox1)
    --threads N            alias for `--parallelism N` (trial workers only)
    --format table|json|csv   stdout rendering (default: table)
    --out DIR              save directory (default: <workspace>/target/experiments)

OPTIONS (trace only):
    --events KIND,KIND     keep only these trace-event kinds (default: all;
                           kinds: phase_enter, bias_sample, occupancy_sample, ...)
    --out FILE             the JSONL file to write (default:
                           <workspace>/target/experiments/<id>.trace.jsonl)
";

/// One validated unit of work: an experiment plus its resolved map.
struct Job {
    exp: &'static dyn Experiment,
    map: ParamMap,
}

fn build_jobs(ids: &[String], opts: &RunOpts) -> Result<Vec<Job>, CliError> {
    // Validate every --set against every schema *before* running anything:
    // a typo must not abort a sweep halfway through.
    ids.iter()
        .map(|id| {
            let exp = registry::find(id).ok_or_else(|| CliError::UnknownExperiment(id.clone()))?;
            let mut map = exp.preset(opts.preset);
            for (key, value) in &opts.sets {
                map.set(key, value).map_err(|error| CliError::Param {
                    id: exp.id().to_string(),
                    error,
                })?;
            }
            Ok(Job { exp, map })
        })
        .collect()
}

fn execute(cmd: &Command) -> Result<(), CliError> {
    match cmd {
        Command::Help => outp!("{USAGE}"),
        Command::List { markdown: true } => outp!("{}", registry::catalog_markdown()),
        Command::List { markdown: false } => {
            for exp in registry::registry() {
                outln!("{:4}  {:38}  {}", exp.id(), exp.claim(), exp.title());
            }
        }
        Command::Info { id } => {
            let exp = registry::find(id).ok_or_else(|| CliError::UnknownExperiment(id.clone()))?;
            outln!("{} — {}", exp.id(), exp.title());
            outln!("reproduces: {}", exp.claim());
            outln!();
            let header = ["param", "type", "default", "quick", "help"];
            outln!(
                "{:12}  {:9}  {:>24}  {:>20}  {}",
                header[0],
                header[1],
                header[2],
                header[3],
                header[4]
            );
            for spec in exp.params().specs() {
                outln!(
                    "{:12}  {:9}  {:>24}  {:>20}  {}",
                    spec.name,
                    spec.kind.name(),
                    spec.default.render(),
                    spec.quick.as_ref().map_or("-".to_string(), |q| q.render()),
                    spec.help,
                );
            }
        }
        Command::Run { ids, opts } => run_jobs(build_jobs(ids, opts)?, opts),
        Command::All { opts } => {
            let ids: Vec<String> = registry::registry()
                .iter()
                .map(|e| e.id().to_string())
                .collect();
            run_jobs(build_jobs(&ids, opts)?, opts)
        }
        Command::Trace { id, opts, events } => run_trace(id, opts, events)?,
    }
    Ok(())
}

/// The `xp trace` path: a fresh [`Obs`], an optional kind filter, the
/// experiment's traced variant, and the trace ring written out as JSONL.
fn run_trace(id: &str, opts: &RunOpts, events: &[EventKind]) -> Result<(), CliError> {
    let Some(job) = build_jobs(std::slice::from_ref(&id.to_string()), opts)?.pop() else {
        return Err(CliError::UnknownExperiment(id.to_string()));
    };
    let obs = Obs::new();
    if !events.is_empty() {
        obs.trace.set_filter(Some(events));
    }
    let seed = opts.seed.unwrap_or_else(|| job.map.u64("seed"));
    let report = job
        .exp
        .run_traced(&job.map, Seed::new(seed), opts.parallelism, &obs)
        .ok_or_else(|| CliError::NoTrace(job.exp.id().to_string()))?;
    match opts.format {
        OutputFormat::Table => outln!("{report}"),
        OutputFormat::Json => outln!("{}", report.to_json()),
        OutputFormat::Csv => outp!("{}", report.to_csv()),
    }
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| default_out_dir().join(format!("{}.trace.jsonl", job.exp.id())));
    let io = |e: std::io::Error| CliError::TraceIo {
        path: path.display().to_string(),
        error: e.to_string(),
    };
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(io)?;
    }
    std::fs::write(&path, obs.trace.to_jsonl()).map_err(io)?;
    eprintln!(
        "[saved {} ({} records, {} evicted by the ring)]",
        path.display(),
        obs.trace.len(),
        obs.trace.dropped(),
    );
    Ok(())
}

fn run_jobs(jobs: Vec<Job>, opts: &RunOpts) {
    let out = opts.out.clone().unwrap_or_else(default_out_dir);
    for job in jobs {
        let report = job.exp.run_map(&job.map, opts.seed, opts.parallelism);
        emit(&report, opts.format, &out);
        save_params(&job, &report, &out);
    }
}

/// Saves `<out>/<id>.params.json` — the exact parameter assignment and
/// resolved master seed that produced the sibling report, so any run
/// (presets, `--set` overrides, `--seed`) can be reproduced later. The
/// report JSON itself stays byte-identical to the legacy `Config` path.
fn save_params(job: &Job, report: &Report, out: &Path) {
    let doc = JsonValue::object([
        ("id", JsonValue::String(job.exp.id().to_string())),
        ("params", job.map.to_json_value()),
        ("seed", JsonValue::U64(report.seed)),
    ])
    .to_pretty();
    let path = out.join(format!("{}.params.json", job.exp.id()));
    if let Err(e) = std::fs::create_dir_all(out).and_then(|()| std::fs::write(&path, doc)) {
        eprintln!("[warning: could not save params: {e}]");
    } else {
        eprintln!("[saved {}]", path.display());
    }
}

/// Full CLI entry point: parse, execute, map errors to exit codes.
/// The `xp` binary is `std::process::exit(run(&args))`.
pub fn run(args: &[String]) -> i32 {
    match parse(args) {
        Ok(cmd) => match execute(&cmd) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("xp: {e}");
                2
            }
        },
        Err(e) => {
            eprintln!("xp: {e}");
            eprintln!("run `xp help` for usage");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, CliError> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn golden_parse_table() {
        // args → expected command, the satellite CLI parse table.
        assert_eq!(p(&[]), Ok(Command::Help));
        assert_eq!(p(&["help"]), Ok(Command::Help));
        assert_eq!(p(&["--help"]), Ok(Command::Help));
        assert_eq!(p(&["list"]), Ok(Command::List { markdown: false }));
        assert_eq!(
            p(&["list", "--markdown"]),
            Ok(Command::List { markdown: true })
        );
        assert_eq!(p(&["info", "e06"]), Ok(Command::Info { id: "e06".into() }));
        assert_eq!(
            p(&["run", "e06"]),
            Ok(Command::Run {
                ids: vec!["e06".into()],
                opts: RunOpts::default(),
            })
        );
        assert_eq!(
            p(&[
                "run",
                "e06",
                "--quick",
                "--set",
                "n=65536",
                "--set",
                "trials=20"
            ]),
            Ok(Command::Run {
                ids: vec!["e06".into()],
                opts: RunOpts {
                    preset: Preset::Quick,
                    sets: vec![("n".into(), "65536".into()), ("trials".into(), "20".into())],
                    ..RunOpts::default()
                },
            })
        );
        assert_eq!(
            p(&[
                "run",
                "e01",
                "e02",
                "--seed",
                "7",
                "--threads",
                "2",
                "--format",
                "csv",
                "--out",
                "/tmp/x"
            ]),
            Ok(Command::Run {
                ids: vec!["e01".into(), "e02".into()],
                opts: RunOpts {
                    seed: Some(7),
                    parallelism: Parallelism {
                        trial_workers: Workers::fixed(2),
                        ..Parallelism::default()
                    },
                    format: OutputFormat::Csv,
                    out: Some(PathBuf::from("/tmp/x")),
                    ..RunOpts::default()
                },
            })
        );
        // `--parallelism` accepts a bare trial count, a TRIALSxSHARDS
        // pair, and `auto` on either axis; `--threads N` is its alias.
        for (spec, expected) in [
            ("4", Parallelism::parse("4").expect("valid")),
            (
                "2x4",
                Parallelism {
                    trial_workers: Workers::fixed(2),
                    shard_workers: Workers::fixed(4),
                },
            ),
            (
                "autox4",
                Parallelism {
                    trial_workers: Workers::Auto,
                    shard_workers: Workers::fixed(4),
                },
            ),
            ("auto", Parallelism::auto()),
        ] {
            assert_eq!(
                p(&["run", "e06", "--parallelism", spec]),
                Ok(Command::Run {
                    ids: vec!["e06".into()],
                    opts: RunOpts {
                        parallelism: expected,
                        ..RunOpts::default()
                    },
                }),
                "--parallelism {spec}"
            );
        }
        assert_eq!(
            p(&["run", "e06", "--threads", "2"]),
            p(&["run", "e06", "--parallelism", "2"])
        );
        assert_eq!(
            p(&["all", "--quick", "--format", "json"]),
            Ok(Command::All {
                opts: RunOpts {
                    preset: Preset::Quick,
                    format: OutputFormat::Json,
                    ..RunOpts::default()
                },
            })
        );
        assert_eq!(
            p(&["trace", "e26"]),
            Ok(Command::Trace {
                id: "e26".into(),
                opts: RunOpts::default(),
                events: vec![],
            })
        );
        assert_eq!(
            p(&[
                "trace",
                "e06",
                "--quick",
                "--events",
                "phase_enter,bias_sample",
                "--out",
                "/tmp/t.jsonl"
            ]),
            Ok(Command::Trace {
                id: "e06".into(),
                opts: RunOpts {
                    preset: Preset::Quick,
                    out: Some(PathBuf::from("/tmp/t.jsonl")),
                    ..RunOpts::default()
                },
                events: vec![EventKind::PhaseEnter, EventKind::BiasSample],
            })
        );
    }

    #[test]
    fn golden_error_table() {
        assert_eq!(p(&["bogus"]), Err(CliError::UnknownCommand("bogus".into())));
        assert_eq!(
            p(&["run", "e99"]),
            Err(CliError::UnknownExperiment("e99".into()))
        );
        assert_eq!(p(&["run"]), Err(CliError::MissingExperiment));
        assert_eq!(p(&["info"]), Err(CliError::MissingExperiment));
        assert_eq!(
            p(&["info", "e06", "extra"]),
            Err(CliError::UnexpectedArg("extra".into()))
        );
        assert_eq!(
            p(&["all", "e06"]),
            Err(CliError::UnexpectedArg("e06".into()))
        );
        assert_eq!(
            p(&["run", "e06", "--bogus"]),
            Err(CliError::UnknownFlag("--bogus".into()))
        );
        assert_eq!(
            p(&["run", "e06", "--seed"]),
            Err(CliError::MissingValue("--seed"))
        );
        assert_eq!(
            p(&["run", "e06", "--seed", "abc"]),
            Err(CliError::BadNumber {
                flag: "--seed",
                value: "abc".into()
            })
        );
        assert_eq!(
            p(&["run", "e06", "--threads", "0"]),
            Err(CliError::BadNumber {
                flag: "--threads",
                value: "0".into()
            })
        );
        for bad in ["0", "2x0", "0x2", "x4", "2x", "fast", "2x2x2"] {
            assert_eq!(
                p(&["run", "e06", "--parallelism", bad]),
                Err(CliError::BadParallelism(bad.into())),
                "--parallelism {bad}"
            );
        }
        assert_eq!(
            p(&["run", "e06", "--parallelism"]),
            Err(CliError::MissingValue("--parallelism"))
        );
        assert_eq!(
            p(&["run", "e06", "--format", "xml"]),
            Err(CliError::BadFormat("xml".into()))
        );
        assert_eq!(
            p(&["run", "e06", "--set", "n65536"]),
            Err(CliError::BadSet("n65536".into()))
        );
        assert_eq!(
            p(&["list", "e06"]),
            Err(CliError::UnexpectedArg("e06".into()))
        );
        assert_eq!(p(&["trace"]), Err(CliError::MissingExperiment));
        assert_eq!(
            p(&["trace", "e06", "e07"]),
            Err(CliError::UnexpectedArg("e07".into()))
        );
        assert_eq!(
            p(&["trace", "e06", "--events"]),
            Err(CliError::MissingValue("--events"))
        );
        assert_eq!(
            p(&["trace", "e06", "--events", "bogus"]),
            Err(CliError::BadEvent("bogus".into()))
        );
        // `--events` is a trace-only flag.
        assert_eq!(
            p(&["run", "e06", "--events", "note"]),
            Err(CliError::UnknownFlag("--events".into()))
        );
    }

    #[test]
    fn trace_writes_a_jsonl_phase_trajectory() {
        let dir = std::env::temp_dir().join("rapid-xp-trace-test");
        std::fs::remove_dir_all(&dir).ok();
        let out = dir.join("e06.trace.jsonl");
        let cmd = p(&[
            "trace",
            "e06",
            "--quick",
            "--set",
            "ns=256",
            "--events",
            "phase_enter,bias_sample",
            "--out",
            out.to_str().expect("utf-8 temp path"),
        ])
        .expect("parses");
        execute(&cmd).expect("traced run succeeds");
        let doc = std::fs::read_to_string(&out).expect("trace file written");
        assert!(!doc.is_empty(), "non-empty JSONL trajectory");
        let mut kinds = std::collections::BTreeSet::new();
        for line in doc.lines() {
            let v = crate::json::parse(line).expect("each line is JSON");
            assert_eq!(
                v.get("stream").and_then(JsonValue::as_str),
                Some("e06/n=256")
            );
            kinds.insert(
                v.get("kind")
                    .and_then(JsonValue::as_str)
                    .expect("kind tag")
                    .to_string(),
            );
        }
        assert!(kinds.contains("bias_sample"), "{kinds:?}");
        assert!(
            kinds
                .iter()
                .all(|k| k == "bias_sample" || k == "phase_enter"),
            "--events filters kinds: {kinds:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_on_an_untraced_experiment_is_a_typed_error() {
        let cmd = p(&["trace", "e01", "--quick"]).expect("parses");
        assert_eq!(execute(&cmd), Err(CliError::NoTrace("e01".into())));
    }

    #[test]
    fn unknown_set_keys_fail_before_any_run() {
        let jobs = build_jobs(
            &["e06".to_string()],
            &RunOpts {
                sets: vec![("bogus".into(), "1".into())],
                ..RunOpts::default()
            },
        );
        assert!(matches!(
            jobs,
            Err(CliError::Param { id, error: ParamError::UnknownKey { .. } }) if id == "e06"
        ));
    }

    #[test]
    fn case_insensitive_ids_resolve() {
        assert!(p(&["run", "E06"]).is_ok());
        assert!(p(&["info", "E01"]).is_ok());
    }

    #[test]
    fn default_out_dir_is_workspace_anchored() {
        let dir = default_out_dir();
        assert!(dir.ends_with("target/experiments"));
        // Anchored at the workspace (where Cargo.lock lives), not the cwd.
        assert!(dir
            .parent()
            .and_then(Path::parent)
            .expect("two parents")
            .join("Cargo.lock")
            .exists());
    }

    #[test]
    fn errors_render_readably() {
        for (err, needle) in [
            (CliError::UnknownCommand("x".into()), "unknown command"),
            (CliError::UnknownExperiment("e99".into()), "e99"),
            (CliError::UnknownFlag("--x".into()), "--x"),
            (CliError::MissingValue("--seed"), "--seed"),
            (CliError::MissingExperiment, "experiment id"),
            (CliError::UnexpectedArg("z".into()), "z"),
            (
                CliError::BadNumber {
                    flag: "--threads",
                    value: "x".into(),
                },
                "--threads",
            ),
            (CliError::BadFormat("xml".into()), "xml"),
            (CliError::BadSet("kv".into()), "KEY=VALUE"),
            (CliError::BadParallelism("2x".into()), "--parallelism"),
        ] {
            assert!(err.to_string().contains(needle), "{err:?}");
        }
    }

    #[test]
    fn run_jobs_saves_param_provenance() {
        let dir = std::env::temp_dir().join("rapid-xp-params-test");
        std::fs::remove_dir_all(&dir).ok();
        let opts = RunOpts {
            preset: Preset::Quick,
            sets: vec![("ns".into(), "64".into()), ("trials".into(), "1".into())],
            seed: Some(99),
            out: Some(dir.clone()),
            ..RunOpts::default()
        };
        run_jobs(
            build_jobs(&["e09".to_string()], &opts).expect("valid"),
            &opts,
        );
        let doc = std::fs::read_to_string(dir.join("e09.params.json")).expect("provenance saved");
        let v = crate::json::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("e09"));
        assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(99));
        let params = v.get("params").expect("params recorded");
        assert_eq!(
            params.get("ns").and_then(JsonValue::as_array),
            Some(&[JsonValue::U64(64)][..])
        );
        assert_eq!(params.get("trials").and_then(JsonValue::as_u64), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn emit_prints_and_saves_without_panicking() {
        let dir = std::env::temp_dir().join("rapid-xp-emit-test");
        let r = Report::new("E00", "smoke", 1);
        emit(&r, OutputFormat::Table, &dir);
        emit(&r, OutputFormat::Csv, &dir);
        assert!(dir.join("e00.json").exists());
        assert!(dir.join("e00.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
