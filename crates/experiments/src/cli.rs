//! Shared entry point for the experiment binaries in `rapid-bench`.

use crate::report::Report;

/// How large an experiment run should be.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Scale {
    /// Paper-scale run (minutes).
    #[default]
    Full,
    /// CI-scale run (seconds).
    Quick,
}

impl Scale {
    /// Parses process arguments: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// Prints the report, writes `target/experiments/<id>.json`, and reports
/// where.
///
/// The JSON lands next to the workspace's build artifacts so repeated runs
/// are easy to diff.
pub fn emit(report: &Report) {
    println!("{report}");
    let dir = std::path::Path::new("target").join("experiments");
    match report.save_json(&dir) {
        Ok(path) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warning: could not save JSON: {e}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        assert_eq!(Scale::default(), Scale::Full);
    }

    #[test]
    fn emit_prints_without_panicking() {
        let r = Report::new("E00", "smoke", 1);
        emit(&r);
    }
}
