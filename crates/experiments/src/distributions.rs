//! Re-export of the workload generators, which moved into `rapid-core` so
//! the [`Sim` builder](rapid_core::facade::Sim) can accept an
//! [`InitialDistribution`] directly.
//!
//! Existing `rapid_experiments::distributions::…` paths keep working.

pub use rapid_core::distributions::{
    theorem_11_gap, theorem_12_gap, DistributionError, InitialDistribution,
};
