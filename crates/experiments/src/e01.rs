//! **E01 / Table 1** — Theorem 1.1 upper bound.
//!
//! Claim: on `K_n` with `k = O(n^ε)` opinions and initial gap
//! `c_1 − c_2 ≥ z·√(n log n)`, synchronous Two-Choices converges to the
//! plurality w.h.p. within `O(n/c_1 · log n)` rounds.
//!
//! Shape check: the column `rounds / (n/c₁·ln n)` should be roughly
//! constant across the whole `(n, k)` grid, and the success rate ≈ 1.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::{theorem_11_gap, InitialDistribution};
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::predictions;
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Theorem 1.1 upper bound: Two-Choices rounds = O(n/c1 * ln n)";

/// Configuration for E01.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes to sweep.
    pub ns: Vec<u64>,
    /// Opinion counts to sweep.
    pub ks: Vec<usize>,
    /// Gap multiplier `z` in `z·√(n ln n)`.
    pub z: f64,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1 << 10, 1 << 12, 1 << 14, 1 << 16],
            ks: vec![2, 8, 32],
            z: 1.0,
            trials: 30,
            seed: 0xE01,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 9, 1 << 11],
            ks: vec![2, 8],
            trials: 5,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            ks: p.usize_list("ks"),
            z: p.f64("z"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    let as_u64 = |ks: &[usize]| ks.iter().map(|&k| k as u64).collect::<Vec<_>>();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes to sweep", &d.ns).quick(q.ns),
        ParamSpec::u64_list("ks", "opinion counts to sweep", &as_u64(&d.ks)).quick(as_u64(&q.ks)),
        ParamSpec::f64("z", "gap multiplier in z*sqrt(n ln n)", d.z).quick(q.z),
        ParamSpec::u64("trials", "trials per cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E01;

impl Experiment for E01 {
    fn id(&self) -> &'static str {
        "e01"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "Thm 1.1 upper bound / Table 1"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// Runs E01 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E01", TITLE, cfg.seed);
    let mut table = Table::new(
        "Sync Two-Choices with gap z*sqrt(n ln n)",
        &[
            "n", "k", "c1", "gap", "rounds", "stderr", "pred", "ratio", "success", "trials",
        ],
    );

    for &n in &cfg.ns {
        for &k in &cfg.ks {
            let gap = theorem_11_gap(n, cfg.z);
            let dist = InitialDistribution::additive_bias(k, gap);
            let Ok(counts) = dist.counts(n) else {
                continue; // n too small for this k at this gap
            };
            let c1 = counts[0];
            let budget = (predictions::two_choices_rounds(n, c1) * 50.0).ceil() as u64 + 1000;

            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ (n << 8) ^ k as u64),
                parallelism,
                {
                    let counts = counts.clone();
                    move |_, seed| {
                        let out = Sim::builder()
                            .topology(Complete::new(n as usize))
                            .counts(&counts)
                            .protocol(TwoChoices::new())
                            .seed(seed)
                            .stop(StopCondition::RoundBudget(budget))
                            .build()
                            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
                            .expect("validated above")
                            .run();
                        match out.as_sync() {
                            Some(s) => (s.rounds, s.winner == Color::new(0), true),
                            None => (budget, false, false),
                        }
                    }
                },
            );

            let rounds: OnlineStats = results.iter().filter(|r| r.2).map(|r| r.0 as f64).collect();
            let success = results.iter().filter(|r| r.1).count() as f64 / results.len() as f64;
            let pred = predictions::two_choices_rounds(n, c1);
            table.push_row(vec![
                n.to_string(),
                k.to_string(),
                c1.to_string(),
                gap.to_string(),
                format!("{:.1}", rounds.mean()),
                format!("{:.1}", rounds.std_err()),
                format!("{pred:.1}"),
                format!("{:.3}", rounds.mean() / pred),
                format!("{success:.2}"),
                cfg.trials.to_string(),
            ]);
        }
    }
    table.push_note("shape check: 'ratio' should be near-constant across the grid");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_constant_ratio_and_high_success() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert!(!table.is_empty());
        let ratios = table.column_f64("ratio");
        assert!(!ratios.is_empty());
        // Shape: ratios within a small constant band.
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 6.0, "ratio band too wide: [{min}, {max}]");
        let success = table.column_f64("success");
        assert!(
            success.iter().all(|&s| s >= 0.8),
            "success rates {success:?}"
        );
    }
}
