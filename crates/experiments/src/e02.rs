//! **E02 / Figure 1** — Theorem 1.1 lower bound.
//!
//! Claim: with `c_1 − c_2 = z·√(n log n)` and `c_2 = … = c_k`, synchronous
//! Two-Choices needs `Ω(n/c_1 + log n)` rounds in expectation — i.e.
//! `Ω(k)` rounds when `c_1 = Θ(n/k)`.
//!
//! Shape check: at fixed `n`, mean rounds grow linearly in `k` (the
//! `rounds/k` column stabilises; a least-squares line on `(k, rounds)` has
//! strongly positive slope and high R²).

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::{fit_line, OnlineStats};

use crate::distributions::{theorem_11_gap, InitialDistribution};
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Theorem 1.1 lower bound: Omega(k) rounds when c1 = Theta(n/k)";

/// Configuration for E02.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Fixed population size.
    pub n: u64,
    /// Opinion counts to sweep.
    pub ks: Vec<usize>,
    /// Gap multiplier `z`.
    pub z: f64,
    /// Trials per k.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 14,
            ks: vec![2, 4, 8, 16, 32, 64],
            z: 1.0,
            trials: 20,
            seed: 0xE02,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 11,
            ks: vec![2, 4, 8, 16],
            trials: 5,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            ks: p.usize_list("ks"),
            z: p.f64("z"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    let as_u64 = |ks: &[usize]| ks.iter().map(|&k| k as u64).collect::<Vec<_>>();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "fixed population size", d.n).quick(q.n),
        ParamSpec::u64_list("ks", "opinion counts to sweep", &as_u64(&d.ks)).quick(as_u64(&q.ks)),
        ParamSpec::f64("z", "gap multiplier", d.z).quick(q.z),
        ParamSpec::u64("trials", "trials per k", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E02;

impl Experiment for E02 {
    fn id(&self) -> &'static str {
        "e02"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "Thm 1.1 lower bound / Figure 1"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// Runs E02 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E02", TITLE, cfg.seed);
    let mut table = Table::new(
        format!("Sync Two-Choices at n = {}, gap z*sqrt(n ln n)", cfg.n),
        &["k", "c1", "n/c1", "rounds", "stderr", "rounds/k", "success"],
    );

    let n = cfg.n;
    let mut ks_used = Vec::new();
    let mut predictors = Vec::new();
    let mut means = Vec::new();
    for &k in &cfg.ks {
        let gap = theorem_11_gap(n, cfg.z);
        let dist = InitialDistribution::additive_bias(k, gap);
        let Ok(counts) = dist.counts(n) else { continue };
        let c1 = counts[0];
        let budget = 400 * k as u64 + 5_000;

        let results = run_trials_on(
            cfg.trials,
            Seed::new(cfg.seed ^ (k as u64) << 3),
            parallelism,
            {
                let counts = counts.clone();
                move |_, seed| {
                    let out = Sim::builder()
                        .topology(Complete::new(n as usize))
                        .counts(&counts)
                        .protocol(TwoChoices::new())
                        .seed(seed)
                        .stop(StopCondition::RoundBudget(budget))
                        .build()
                        // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
                        .expect("validated")
                        .run();
                    match out.as_sync() {
                        Some(out) => (out.rounds, out.winner == Color::new(0), true),
                        None => (budget, false, false),
                    }
                }
            },
        );

        let rounds: OnlineStats = results.iter().map(|r| r.0 as f64).collect();
        let success = results.iter().filter(|r| r.1).count() as f64 / results.len() as f64;
        ks_used.push(k as f64);
        predictors.push(n as f64 / c1 as f64);
        means.push(rounds.mean());
        table.push_row(vec![
            k.to_string(),
            c1.to_string(),
            format!("{:.1}", n as f64 / c1 as f64),
            format!("{:.1}", rounds.mean()),
            format!("{:.1}", rounds.std_err()),
            format!("{:.2}", rounds.mean() / k as f64),
            format!("{success:.2}"),
        ]);
    }

    if ks_used.len() >= 2 {
        let fit = fit_line(&ks_used, &means);
        table.push_note(format!(
            "fit vs k: rounds = {:.2}*k + {:.1} (R^2 = {:.3})",
            fit.slope, fit.intercept, fit.r_squared
        ));
        // The theorem's literal predictor is n/c1 (the √(n log n) gap
        // inflates c1 at large k, so growth in raw k saturates while the
        // fit against n/c1 stays linear).
        let fit = fit_line(&predictors, &means);
        table.push_note(format!(
            "fit vs n/c1: rounds = {:.2}*(n/c1) + {:.1} (R^2 = {:.3}) — the Omega(n/c1) form",
            fit.slope, fit.intercept, fit.r_squared
        ));
    }
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_grow_with_k() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        let rounds = table.column_f64("rounds");
        assert!(rounds.len() >= 3);
        // Monotone-ish growth: last k takes noticeably longer than first.
        assert!(
            rounds.last().expect("non-empty") > &(rounds[0] * 1.5),
            "rounds {rounds:?} do not grow with k"
        );
    }
}
