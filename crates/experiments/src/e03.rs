//! **E03 / Table 2** — Theorem 1.1's bias threshold.
//!
//! Claim: if `c_1 − c_2 = O(√n)`, the runner-up `C_2` wins with constant
//! probability; at the theorem's gap `z·√(n ln n)` the plurality wins
//! w.h.p.
//!
//! Shape check: the `C2 wins` column is bounded away from 0 for gaps
//! `{0, 0.5√n, √n, 2√n}` and collapses to ≈ 0 at `√(n ln n)`.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

use crate::distributions::{theorem_11_gap, InitialDistribution};
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Theorem 1.1: gap O(sqrt n) lets C2 win with constant probability";

/// Configuration for E03.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Gap values in units of `√n` (the `O(√n)` regime).
    pub sqrt_n_multipliers: Vec<f64>,
    /// Trials per gap.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 14,
            k: 2,
            sqrt_n_multipliers: vec![0.0, 0.5, 1.0, 2.0],
            trials: 200,
            seed: 0xE03,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 11,
            trials: 40,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            k: p.usize("k"),
            sqrt_n_multipliers: p.f64_list("gaps"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64_list(
            "gaps",
            "gap values in units of sqrt(n)",
            &d.sqrt_n_multipliers,
        )
        .quick(q.sqrt_n_multipliers),
        ParamSpec::u64("trials", "trials per gap", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E03;

impl Experiment for E03 {
    fn id(&self) -> &'static str {
        "e03"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "Thm 1.1 bias threshold / Table 2"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// Runs E03 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E03", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "Sync Two-Choices winner rates at n = {}, k = {}",
            cfg.n, cfg.k
        ),
        &[
            "gap",
            "gap/sqrt(n)",
            "C1 wins",
            "C2 wins",
            "other",
            "trials",
        ],
    );

    let n = cfg.n;
    let sqrt_n = (n as f64).sqrt();
    let mut gaps: Vec<(u64, String)> = cfg
        .sqrt_n_multipliers
        .iter()
        .map(|m| ((m * sqrt_n).round() as u64, format!("{m:.1}")))
        .collect();
    let thm_gap = theorem_11_gap(n, 1.0);
    gaps.push((thm_gap, format!("{:.1}", thm_gap as f64 / sqrt_n)));

    for (gap, label) in gaps {
        let dist = InitialDistribution::additive_bias(cfg.k, gap);
        let Ok(counts) = dist.counts(n) else { continue };
        let budget = 200_000;

        let results = run_trials_on(cfg.trials, Seed::new(cfg.seed ^ gap), parallelism, {
            let counts = counts.clone();
            move |_, seed| {
                Sim::builder()
                    .topology(Complete::new(n as usize))
                    .counts(&counts)
                    .protocol(TwoChoices::new())
                    .seed(seed)
                    .stop(StopCondition::RoundBudget(budget))
                    .build()
                    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
                    .expect("validated")
                    .run()
                    .winner
            }
        });

        let total = results.len() as f64;
        let c1 = results
            .iter()
            .filter(|w| **w == Some(Color::new(0)))
            .count() as f64
            / total;
        let c2 = results
            .iter()
            .filter(|w| **w == Some(Color::new(1)))
            .count() as f64
            / total;
        table.push_row(vec![
            gap.to_string(),
            label,
            format!("{c1:.3}"),
            format!("{c2:.3}"),
            format!("{:.3}", (1.0 - c1 - c2).max(0.0)),
            cfg.trials.to_string(),
        ]);
    }
    table.push_note("last row is the Theorem 1.1 gap sqrt(n ln n): C1 should win w.h.p.");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_gaps_let_c2_win_but_theorem_gap_does_not() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        let c2 = table.column_f64("C2 wins");
        assert!(c2.len() >= 4);
        // Zero gap: a fair coin (within generous slack for 40 trials).
        assert!(c2[0] > 0.2 && c2[0] < 0.8, "zero-gap C2 rate {}", c2[0]);
        // Theorem gap (last row): C2 effectively never wins.
        let last = *c2.last().expect("non-empty");
        assert!(last <= 0.1, "C2 rate at theorem gap: {last}");
    }
}
