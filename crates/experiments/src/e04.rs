//! **E04 / Table 3** — Theorem 1.2: OneExtraBit is polylogarithmic.
//!
//! Two sub-tables, because the theorem makes two separable claims:
//!
//! **(a) The literal bound.** With gap `c_1 − c_2 ≥ z·√n·log^{3/2} n`,
//! OneExtraBit converges w.h.p. within
//! `O((log(c_1/(c_1−c_2)) + log log n)·(log k + log log n))` rounds.
//! Shape check: measured rounds / prediction is a near-constant band over
//! the `(n, k)` grid, success ≈ 1.
//!
//! **(b) Beating `Ω(n/c_1)`.** Two-Choices needs `Ω(n/c_1 + log n)` rounds
//! (Theorem 1.1), so its cost *grows* along any sweep that increases
//! `n/c_1`, while OneExtraBit's polylog schedule grows only in
//! `log k · log log n`. Shape check: along the additive-gap sweep, the
//! Two-Choices growth factor exceeds OneExtraBit's, with the crossover
//! where the paper predicts it — at large `n/c_1`.
//!
//! A caveat this reproduction surfaces honestly: OneExtraBit needs
//! `c_1²/n ≫ 1` seeds after its Two-Choices step (this is exactly why
//! Theorem 1.2 demands the `√n·log^{3/2} n` gap — it forces
//! `c_1²/n ≥ log³ n`). Workloads below that floor make OneExtraBit lose
//! its bias in phase 0 no matter how large `k` is.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::{theorem_11_gap, theorem_12_gap, InitialDistribution};
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::predictions;
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Theorem 1.2: OneExtraBit converges in polylog rounds";

/// Configuration for E04.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes for sub-table (a), the literal Theorem 1.2 bound.
    pub ns_bound: Vec<u64>,
    /// Opinion counts for sub-table (a).
    pub ks_bound: Vec<usize>,
    /// Population sizes for sub-table (b), the Two-Choices comparison.
    pub ns_compare: Vec<u64>,
    /// Opinion counts for sub-table (b).
    pub ks_compare: Vec<usize>,
    /// Gap multiplier `z`.
    pub z: f64,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns_bound: vec![1 << 12, 1 << 14, 1 << 16],
            ks_bound: vec![4, 16, 64],
            ns_compare: vec![1 << 12, 1 << 14, 1 << 16, 1 << 18],
            ks_compare: vec![16, 64],
            z: 1.0,
            trials: 10,
            seed: 0xE04,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns_bound: vec![1 << 11],
            ks_bound: vec![4, 16],
            ns_compare: vec![1 << 12, 1 << 14],
            ks_compare: vec![32],
            trials: 5,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns_bound: p.u64_list("ns_bound"),
            ks_bound: p.usize_list("ks_bound"),
            ns_compare: p.u64_list("ns_compare"),
            ks_compare: p.usize_list("ks_compare"),
            z: p.f64("z"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    let as_u64 = |ks: &[usize]| ks.iter().map(|&k| k as u64).collect::<Vec<_>>();
    ParamSchema::new(vec![
        ParamSpec::u64_list(
            "ns_bound",
            "population sizes for sub-table (a)",
            &d.ns_bound,
        )
        .quick(q.ns_bound),
        ParamSpec::u64_list(
            "ks_bound",
            "opinion counts for sub-table (a)",
            &as_u64(&d.ks_bound),
        )
        .quick(as_u64(&q.ks_bound)),
        ParamSpec::u64_list(
            "ns_compare",
            "population sizes for sub-table (b)",
            &d.ns_compare,
        )
        .quick(q.ns_compare),
        ParamSpec::u64_list(
            "ks_compare",
            "opinion counts for sub-table (b)",
            &as_u64(&d.ks_compare),
        )
        .quick(as_u64(&q.ks_compare)),
        ParamSpec::f64("z", "gap multiplier", d.z).quick(q.z),
        ParamSpec::u64("trials", "trials per cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E04;

impl Experiment for E04 {
    fn id(&self) -> &'static str {
        "e04"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "Thm 1.2 / Table 3"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

fn run_sync(
    proto: impl SyncProtocol + Send + 'static,
    n: u64,
    counts: &[u64],
    budget: u64,
    seed: Seed,
) -> (u64, bool, bool) {
    let out = Sim::builder()
        .topology(Complete::new(n as usize))
        .counts(counts)
        .protocol(proto)
        .seed(seed)
        .stop(StopCondition::RoundBudget(budget))
        .build()
        // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
        .expect("validated")
        .run();
    match out.as_sync() {
        Some(out) => (out.rounds, out.winner == Color::new(0), true),
        None => (budget, false, false),
    }
}

/// Runs E04 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E04", TITLE, cfg.seed);

    // ---- (a) the literal bound -------------------------------------
    let mut bound = Table::new(
        "(a) OneExtraBit at the Theorem 1.2 gap z*sqrt(n)*ln^1.5(n)",
        &[
            "n", "k", "c1", "rounds", "stderr", "pred", "ratio", "success",
        ],
    );
    for &n in &cfg.ns_bound {
        for &k in &cfg.ks_bound {
            let gap = theorem_12_gap(n, cfg.z).min(n / 2);
            let Ok(counts) = InitialDistribution::additive_bias(k, gap).counts(n) else {
                continue;
            };
            let (c1, c2) = (counts[0], counts[1]);
            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ (n << 8) ^ k as u64),
                parallelism,
                {
                    let counts = counts.clone();
                    move |_, seed| {
                        let proto = OneExtraBit::for_network(n as usize, k);
                        run_sync(proto, n, &counts, 5_000, seed)
                    }
                },
            );
            let rounds: OnlineStats = results.iter().filter(|r| r.2).map(|r| r.0 as f64).collect();
            let success = results.iter().filter(|r| r.1).count() as f64 / results.len() as f64;
            let pred = predictions::one_extra_bit_rounds(n, k, c1, c2);
            bound.push_row(vec![
                n.to_string(),
                k.to_string(),
                c1.to_string(),
                format!("{:.1}", rounds.mean()),
                format!("{:.1}", rounds.std_err()),
                format!("{pred:.1}"),
                format!("{:.3}", rounds.mean() / pred),
                format!("{success:.2}"),
            ]);
        }
    }
    bound.push_note("shape check: 'ratio' stays in a constant band; success ~ 1");
    report.push_table(bound);

    // ---- (b) comparison against Two-Choices ------------------------
    let mut compare = Table::new(
        "(b) OneExtraBit vs Two-Choices at the Theorem 1.1 gap (growing n/c1)",
        &[
            "n",
            "k",
            "n/c1",
            "tc_rounds",
            "tc_success",
            "oeb_rounds",
            "oeb_success",
            "oeb/tc",
        ],
    );
    for &n in &cfg.ns_compare {
        for &k in &cfg.ks_compare {
            let gap = theorem_11_gap(n, cfg.z);
            let Ok(counts) = InitialDistribution::additive_bias(k, gap).counts(n) else {
                continue;
            };
            let c1 = counts[0];
            let tc_budget = (predictions::two_choices_rounds(n, c1) * 20.0).ceil() as u64 + 1000;
            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ (n << 4) ^ k as u64),
                parallelism,
                {
                    let counts = counts.clone();
                    move |_, seed| {
                        let tc = run_sync(TwoChoices::new(), n, &counts, tc_budget, seed.child(0));
                        let proto = OneExtraBit::for_network(n as usize, k);
                        let oeb = run_sync(proto, n, &counts, 5_000, seed.child(1));
                        (tc, oeb)
                    }
                },
            );
            let tc: OnlineStats = results.iter().map(|r| r.0 .0 as f64).collect();
            let oeb: OnlineStats = results.iter().map(|r| r.1 .0 as f64).collect();
            let tc_success =
                results.iter().filter(|r| r.0 .1).count() as f64 / results.len() as f64;
            let oeb_success =
                results.iter().filter(|r| r.1 .1).count() as f64 / results.len() as f64;
            compare.push_row(vec![
                n.to_string(),
                k.to_string(),
                format!("{:.1}", n as f64 / c1 as f64),
                format!("{:.1}", tc.mean()),
                format!("{tc_success:.2}"),
                format!("{:.1}", oeb.mean()),
                format!("{oeb_success:.2}"),
                format!("{:.2}", oeb.mean() / tc.mean()),
            ]);
        }
    }
    compare.push_note(
        "Two-Choices cost grows with n/c1 (Theorem 1.1); OneExtraBit grows only polylog — \
         the oeb/tc column falls along the sweep and crosses 1 at large n/c1",
    );
    report.push_table(compare);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_table_shows_polylog_rounds_with_high_success() {
        let report = run(&Config::quick());
        let bound = &report.tables[0];
        assert!(!bound.is_empty());
        let success = bound.column_f64("success");
        assert!(success.iter().all(|&s| s >= 0.8), "success {success:?}");
        let ratios = bound.column_f64("ratio");
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 5.0, "ratio band too wide: [{min}, {max}]");
    }

    #[test]
    fn two_choices_grows_faster_than_one_extra_bit_along_the_sweep() {
        let report = run(&Config::quick());
        let compare = &report.tables[1];
        assert!(compare.len() >= 2);
        let tc = compare.column_f64("tc_rounds");
        let oeb = compare.column_f64("oeb_rounds");
        let tc_growth = tc.last().expect("rows") / tc[0];
        let oeb_growth = oeb.last().expect("rows") / oeb[0];
        assert!(
            tc_growth > oeb_growth * 1.15,
            "Two-Choices should outgrow OneExtraBit: tc x{tc_growth:.2} vs oeb x{oeb_growth:.2}"
        );
        // Both protocols still find the plurality in this regime.
        let oeb_success = compare.column_f64("oeb_success");
        assert!(oeb_success.iter().all(|&s| s >= 0.8));
    }
}
