//! **E05 / Figure 2** — quadratic bias amplification per phase.
//!
//! Claim (§2): after one OneExtraBit phase,
//! `c'_1/c'_j ≥ (1−o(1)) · (c_1/c_j)²` — the support ratio squares each
//! phase, which is why only `Θ(log log n)` phases are needed.
//!
//! Shape check: the column `measured/(prev²)` sits near 1 for every phase
//! until the runner-up dies out.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Quadratic amplification: c1'/c2' ~ (c1/c2)^2 per OneExtraBit phase";

/// Configuration for E05.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Opinion counts to test.
    pub ks: Vec<usize>,
    /// Initial multiplicative lead of the plurality.
    pub eps: f64,
    /// Maximum phases to trace.
    pub max_phases: u32,
    /// Trials.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 16,
            ks: vec![8, 32],
            eps: 0.3,
            max_phases: 6,
            trials: 10,
            seed: 0xE05,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 13,
            ks: vec![8],
            trials: 4,
            max_phases: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            ks: p.usize_list("ks"),
            eps: p.f64("eps"),
            max_phases: p.u32("max_phases"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    let as_u64 = |ks: &[usize]| ks.iter().map(|&k| k as u64).collect::<Vec<_>>();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64_list("ks", "opinion counts to test", &as_u64(&d.ks)).quick(as_u64(&q.ks)),
        ParamSpec::f64("eps", "initial multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::u32("max_phases", "maximum phases to trace", d.max_phases)
            .quick(u64::from(q.max_phases)),
        ParamSpec::u64("trials", "trials", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E05;

impl Experiment for E05 {
    fn id(&self) -> &'static str {
        "e05"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§2 amplification / Figure 2"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// Per-trial trace: the `c1/c2` ratio at each phase boundary.
fn trace_ratios(n: u64, k: usize, eps: f64, max_phases: u32, seed: Seed) -> Vec<f64> {
    let proto = OneExtraBit::for_network(n as usize, k);
    let rounds_per_phase = proto.rounds_per_phase();
    let mut sim = Sim::builder()
        .topology(Complete::new(n as usize))
        .distribution(InitialDistribution::multiplicative_bias(k, eps))
        .protocol(proto)
        .seed(seed)
        .build()
        // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
        .expect("valid workload");
    let mut ratios = vec![sim.config().counts().top_two().ratio()];
    for _ in 0..max_phases {
        for _ in 0..rounds_per_phase {
            sim.step();
        }
        let t = sim.config().counts().top_two();
        ratios.push(t.ratio());
        if !t.ratio().is_finite() || sim.config().unanimous().is_some() {
            break;
        }
    }
    ratios
}

/// Runs E05 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E05", TITLE, cfg.seed);

    for &k in &cfg.ks {
        let mut table = Table::new(
            format!(
                "Per-phase c1/c2 ratio at n = {}, k = {k}, eps = {}",
                cfg.n, cfg.eps
            ),
            &[
                "phase",
                "ratio_before",
                "ratio_after",
                "predicted",
                "measured/pred",
                "trials",
            ],
        );

        let traces = run_trials_on(
            cfg.trials,
            Seed::new(cfg.seed ^ (k as u64) << 4),
            parallelism,
            |_, seed| trace_ratios(cfg.n, k, cfg.eps, cfg.max_phases, seed),
        );

        for phase in 0..cfg.max_phases as usize {
            // Average log-ratios across the trials that still have a finite
            // ratio at this phase (the runner-up may die out earlier).
            let mut before = OnlineStats::new();
            let mut after = OnlineStats::new();
            let mut rel = OnlineStats::new();
            for trace in &traces {
                if phase + 1 < trace.len()
                    && trace[phase].is_finite()
                    && trace[phase + 1].is_finite()
                {
                    before.push(trace[phase]);
                    after.push(trace[phase + 1]);
                    rel.push(trace[phase + 1] / trace[phase].powi(2));
                }
            }
            if before.is_empty() {
                break;
            }
            table.push_row(vec![
                phase.to_string(),
                format!("{:.3}", before.mean()),
                format!("{:.3}", after.mean()),
                format!("{:.3}", before.mean().powi(2)),
                format!("{:.3}", rel.mean()),
                before.count().to_string(),
            ]);
        }
        table.push_note("measured/pred near 1 = exact quadratic growth");
        report.push_table(table);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_is_near_quadratic_in_early_phases() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert!(!table.is_empty());
        let rel = table.column_f64("measured/pred");
        // First two phases: quadratic within 40% (stochastic slack; the
        // o(1) in the theorem statement is real at n = 8192).
        for (i, &r) in rel.iter().take(2).enumerate() {
            assert!((0.6..1.4).contains(&r), "phase {i}: measured/pred = {r}");
        }
    }
}
