//! **E06 / Table 4** — Theorem 1.3: the asynchronous protocol runs in
//! `Θ(log n)` time.
//!
//! Claim: with `c_1 ≥ (1+ε)·c_i` and `k = O(exp(log n/log log n))`, the
//! full asynchronous protocol reaches plurality consensus within
//! `Θ(log n)` time w.h.p. — and the paper's success event holds: all nodes
//! agree *before the first node halts*.
//!
//! Shape check: `time/ln n` is roughly constant while `n` spans two orders
//! of magnitude, and success ≈ 1.

use std::sync::Arc;

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_obs::Obs;
use rapid_sim::prelude::*;
use rapid_stats::{fit_line, OnlineStats};

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Theorem 1.3: asynchronous consensus in Theta(log n) time";

/// Configuration for E06.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Trials per n.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        // Theorem 1.3 is asymptotic: the multiplicative gap ε·n/k must beat
        // the per-phase sampling noise, which needs k/√n ≪ ε. With k = 8
        // and ε = 0.3 that holds from n = 2^12 upward (see EXPERIMENTS.md).
        Config {
            ns: vec![1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16],
            k: 8,
            eps: 0.3,
            trials: 10,
            seed: 0xE06,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 12, 1 << 13],
            eps: 0.5,
            trials: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`] (defaults = paper scale,
/// quick = CI scale).
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead of the plurality", d.eps).quick(q.eps),
        ParamSpec::u64("trials", "trials per n", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E06;

impl Experiment for E06 {
    fn id(&self) -> &'static str {
        "e06"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "Thm 1.3 / Table 4"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
    fn run_traced(
        &self,
        params: &ParamMap,
        seed: Seed,
        _parallelism: Parallelism,
        obs: &Arc<Obs>,
    ) -> Option<Report> {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        Some(run_traced_on(&cfg, obs))
    }
}

/// Runs E06 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E06", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "RapidSim on K_n, k = {}, multiplicative bias eps = {}",
            cfg.k, cfg.eps
        ),
        &[
            "n",
            "time",
            "stderr",
            "time/ln(n)",
            "steps/n",
            "success",
            "trials",
        ],
    );

    let mut ln_ns = Vec::new();
    let mut times = Vec::new();
    for &n in &cfg.ns {
        let counts = match InitialDistribution::multiplicative_bias(cfg.k, cfg.eps).counts(n) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let params = Params::for_network_with_eps(n as usize, cfg.k, cfg.eps);

        let results = run_trials_on(cfg.trials, Seed::new(cfg.seed ^ (n << 4)), parallelism, {
            let counts = counts.clone();
            move |_, seed| {
                let outcome = Sim::builder()
                    .topology(Complete::new(n as usize))
                    .counts(&counts)
                    .rapid(params)
                    .seed(seed)
                    .build()
                    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
                    .expect("validated")
                    .run();
                match outcome.as_rapid() {
                    Some(out) => (
                        out.time.as_secs(),
                        out.steps,
                        out.winner == Color::new(0) && out.before_first_halt,
                        true,
                    ),
                    None => (0.0, 0, false, false),
                }
            }
        });

        let time: OnlineStats = results.iter().filter(|r| r.3).map(|r| r.0).collect();
        let steps: OnlineStats = results.iter().filter(|r| r.3).map(|r| r.1 as f64).collect();
        let success = results.iter().filter(|r| r.2).count() as f64 / results.len() as f64;
        let ln_n = (n as f64).ln();
        if !time.is_empty() {
            ln_ns.push(ln_n);
            times.push(time.mean());
        }
        table.push_row(vec![
            n.to_string(),
            format!("{:.1}", time.mean()),
            format!("{:.1}", time.std_err()),
            format!("{:.2}", time.mean() / ln_n),
            format!("{:.1}", steps.mean() / n as f64),
            format!("{success:.2}"),
            cfg.trials.to_string(),
        ]);
    }

    if ln_ns.len() >= 2 {
        let fit = fit_line(&ln_ns, &times);
        table.push_note(format!(
            "linear fit: time = {:.1}*ln(n) + {:.1} (R^2 = {:.3}) — Theta(log n) shape",
            fit.slope, fit.intercept, fit.r_squared
        ));
    }
    table.push_note("success = plurality wins AND unanimity precedes the first halt");
    report.push_table(table);
    report
}

/// The `xp trace e06` path: one phase-resolved run per `n` with an
/// [`ObsObserver`] attached, each on its own trace stream `e06/n=<n>`.
/// The observer reads progress snapshots only, so the traced outcome is
/// the same one the untraced trial would produce.
pub fn run_traced_on(cfg: &Config, obs: &Arc<Obs>) -> Report {
    let mut report = Report::new("E06", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "traced RapidSim on K_n, k = {}, eps = {} (one run per n)",
            cfg.k, cfg.eps
        ),
        &["n", "time", "winner", "success", "events"],
    );
    for &n in &cfg.ns {
        let counts = match InitialDistribution::multiplicative_bias(cfg.k, cfg.eps).counts(n) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let params = Params::for_network_with_eps(n as usize, cfg.k, cfg.eps);
        let stream = format!("e06/n={n}");
        let before = obs.trace.records().len();
        let mut observer =
            ObsObserver::new(Arc::clone(obs), &stream).with_schedule(Schedule::new(params));
        let outcome = Sim::builder()
            .topology(Complete::new(n as usize))
            .counts(&counts)
            .rapid(params)
            .seed(Seed::new(cfg.seed ^ (n << 4)))
            .build()
            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
            .expect("validated")
            .run_with(&mut [&mut observer]);
        let events = obs.trace.records().len() - before;
        match outcome.as_rapid() {
            Some(out) => table.push_row(vec![
                n.to_string(),
                format!("{:.1}", out.time.as_secs()),
                out.winner.index().to_string(),
                (out.winner == Color::new(0) && out.before_first_halt).to_string(),
                events.to_string(),
            ]),
            None => table.push_row(vec![
                n.to_string(),
                "-".to_string(),
                "-".to_string(),
                "false".to_string(),
                events.to_string(),
            ]),
        }
    }
    table.push_note("events = trace records emitted on this run's stream (bias/occupancy/phase)");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scales_logarithmically_with_high_success() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        let success = table.column_f64("success");
        assert!(success.iter().all(|&s| s >= 0.5), "success {success:?}");
        let normalized = table.column_f64("time/ln(n)");
        assert!(normalized.len() >= 2);
        // Θ(log n): the normalized column stays within a 3x band even in
        // the quick preset.
        let max = normalized.iter().cloned().fold(f64::MIN, f64::max);
        let min = normalized.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 3.0, "time/ln n band too wide: [{min}, {max}]");
    }
}
