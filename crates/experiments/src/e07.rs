//! **E07 / Figure 3** — Theorem 1.3's opinion-count range.
//!
//! Claim: the asynchronous protocol handles up to
//! `k = O(exp(log n / log log n))` opinions within the same `Θ(log n)`
//! time bound.
//!
//! Shape check: at fixed `n`, consensus time grows only mildly with `k`
//! (through the `log k` inside the Bit-Propagation sub-phase length) and
//! success stays ≈ 1 across the sweep.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::predictions;
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Theorem 1.3: k-sweep up to exp(log n / log log n) opinions";

/// Configuration for E07.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Fixed population size.
    pub n: u64,
    /// Opinion counts to sweep.
    pub ks: Vec<usize>,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Trials per k.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        // k = 128 deliberately overshoots the paper's frontier
        // exp(ln n/ln ln n) ≈ 71 at n = 2^14: the success column should
        // visibly degrade there, tracing where the theorem stops applying.
        Config {
            n: 1 << 14,
            ks: vec![2, 4, 8, 16, 32, 64, 128],
            eps: 0.4,
            trials: 10,
            seed: 0xE07,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 13,
            ks: vec![2, 8, 16],
            eps: 0.5,
            trials: 3,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            ks: p.usize_list("ks"),
            eps: p.f64("eps"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    let as_u64 = |ks: &[usize]| ks.iter().map(|&k| k as u64).collect::<Vec<_>>();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "fixed population size", d.n).quick(q.n),
        ParamSpec::u64_list("ks", "opinion counts to sweep", &as_u64(&d.ks)).quick(as_u64(&q.ks)),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::u64("trials", "trials per k", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E07;

impl Experiment for E07 {
    fn id(&self) -> &'static str {
        "e07"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "Thm 1.3 k-range / Figure 3"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// Runs E07 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E07", TITLE, cfg.seed);
    let mut table = Table::new(
        format!("RapidSim at n = {}, eps = {}", cfg.n, cfg.eps),
        &["k", "time", "stderr", "time/ln(n)", "success", "trials"],
    );

    let n = cfg.n;
    for &k in &cfg.ks {
        let counts = match InitialDistribution::multiplicative_bias(k, cfg.eps).counts(n) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let params = Params::for_network_with_eps(n as usize, k, cfg.eps);

        let results = run_trials_on(
            cfg.trials,
            Seed::new(cfg.seed ^ (k as u64) << 5),
            parallelism,
            {
                let counts = counts.clone();
                move |_, seed| {
                    let outcome = Sim::builder()
                        .topology(Complete::new(n as usize))
                        .counts(&counts)
                        .rapid(params)
                        .seed(seed)
                        .build()
                        // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
                        .expect("validated")
                        .run();
                    match outcome.as_rapid() {
                        Some(out) => (
                            out.time.as_secs(),
                            out.winner == Color::new(0) && out.before_first_halt,
                            true,
                        ),
                        None => (0.0, false, false),
                    }
                }
            },
        );

        let time: OnlineStats = results.iter().filter(|r| r.2).map(|r| r.0).collect();
        let success = results.iter().filter(|r| r.1).count() as f64 / results.len() as f64;
        table.push_row(vec![
            k.to_string(),
            format!("{:.1}", time.mean()),
            format!("{:.1}", time.std_err()),
            format!("{:.2}", time.mean() / (n as f64).ln()),
            format!("{success:.2}"),
            cfg.trials.to_string(),
        ]);
    }
    table.push_note(format!(
        "paper's k-frontier at this n: exp(ln n/ln ln n) = {:.0}",
        predictions::async_k_limit(n)
    ));
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_holds_across_the_k_sweep() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        let success = table.column_f64("success");
        assert!(success.len() >= 3);
        assert!(success.iter().all(|&s| s >= 0.66), "success {success:?}");
        // Mild growth only: largest k costs at most ~3x the smallest.
        let t = table.column_f64("time");
        assert!(
            t.last().expect("non-empty") / t[0] < 3.0,
            "time grew too fast across k: {t:?}"
        );
    }
}
