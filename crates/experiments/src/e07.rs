//! **E07 / Figure 3** — Theorem 1.3's opinion-count range.
//!
//! Claim: the asynchronous protocol handles up to
//! `k = O(exp(log n / log log n))` opinions within the same `Θ(log n)`
//! time bound.
//!
//! Shape check: at fixed `n`, consensus time grows only mildly with `k`
//! (through the `log k` inside the Bit-Propagation sub-phase length) and
//! success stays ≈ 1 across the sweep.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::predictions;
use crate::report::Report;
use crate::runner::run_trials;
use crate::table::Table;

/// Configuration for E07.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Fixed population size.
    pub n: u64,
    /// Opinion counts to sweep.
    pub ks: Vec<usize>,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Trials per k.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        // k = 128 deliberately overshoots the paper's frontier
        // exp(ln n/ln ln n) ≈ 71 at n = 2^14: the success column should
        // visibly degrade there, tracing where the theorem stops applying.
        Config {
            n: 1 << 14,
            ks: vec![2, 4, 8, 16, 32, 64, 128],
            eps: 0.4,
            trials: 10,
            seed: 0xE07,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 13,
            ks: vec![2, 8, 16],
            eps: 0.5,
            trials: 3,
            ..Config::default()
        }
    }
}

/// Runs E07 and returns its report.
pub fn run(cfg: &Config) -> Report {
    let mut report = Report::new(
        "E07",
        "Theorem 1.3: k-sweep up to exp(log n / log log n) opinions",
        cfg.seed,
    );
    let mut table = Table::new(
        format!("RapidSim at n = {}, eps = {}", cfg.n, cfg.eps),
        &["k", "time", "stderr", "time/ln(n)", "success", "trials"],
    );

    let n = cfg.n;
    for &k in &cfg.ks {
        let counts = match InitialDistribution::multiplicative_bias(k, cfg.eps).counts(n) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let params = Params::for_network_with_eps(n as usize, k, cfg.eps);

        let results = run_trials(cfg.trials, Seed::new(cfg.seed ^ (k as u64) << 5), {
            let counts = counts.clone();
            move |_, seed| {
                let outcome = Sim::builder()
                    .topology(Complete::new(n as usize))
                    .counts(&counts)
                    .rapid(params)
                    .seed(seed)
                    .build()
                    .expect("validated")
                    .run();
                match outcome.as_rapid() {
                    Some(out) => (
                        out.time.as_secs(),
                        out.winner == Color::new(0) && out.before_first_halt,
                        true,
                    ),
                    None => (0.0, false, false),
                }
            }
        });

        let time: OnlineStats = results.iter().filter(|r| r.2).map(|r| r.0).collect();
        let success = results.iter().filter(|r| r.1).count() as f64 / results.len() as f64;
        table.push_row(vec![
            k.to_string(),
            format!("{:.1}", time.mean()),
            format!("{:.1}", time.std_err()),
            format!("{:.2}", time.mean() / (n as f64).ln()),
            format!("{success:.2}"),
            cfg.trials.to_string(),
        ]);
    }
    table.push_note(format!(
        "paper's k-frontier at this n: exp(ln n/ln ln n) = {:.0}",
        predictions::async_k_limit(n)
    ));
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_holds_across_the_k_sweep() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        let success = table.column_f64("success");
        assert!(success.len() >= 3);
        assert!(success.iter().all(|&s| s >= 0.66), "success {success:?}");
        // Mild growth only: largest k costs at most ~3x the smallest.
        let t = table.column_f64("time");
        assert!(
            t.last().expect("non-empty") / t[0] < 3.0,
            "time grew too fast across k: {t:?}"
        );
    }
}
