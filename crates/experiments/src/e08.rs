//! **E08 / Figure 4** — weak synchronicity and the Sync Gadget.
//!
//! Claim (§3): with the Sync Gadget, at any time all but `o(n)` nodes have
//! working times within `Δ = Θ(log n/log log n)` of each other; *without*
//! perpetual synchronization the spread grows with elapsed time and the
//! poorly-synchronized population stops being negligible.
//!
//! Measurement: working-time spread (max − min) and the fraction of nodes
//! farther than `2Δ` (the sample→commit separation) from the median, at
//! every phase boundary, with the gadget enabled vs disabled (ablation).

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::{welch_t_test, OnlineStats};

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Weak synchronicity: Sync Gadget keeps working times within Delta";

/// Configuration for E08.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Number of opinions (the gadget is opinion-agnostic; 2 keeps it cheap).
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1 << 12, 1 << 14, 1 << 16],
            k: 2,
            eps: 0.3,
            trials: 5,
            seed: 0xE08,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 10],
            trials: 3,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::u64("trials", "trials per cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E08;

impl Experiment for E08 {
    fn id(&self) -> &'static str {
        "e08"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§3 Sync-Gadget ablation / Figure 4"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// One part-1 run; returns per-phase `(poorly_synced, spread)` pairs.
fn measure(n: u64, k: usize, eps: f64, gadget: bool, seed: Seed) -> Vec<(f64, u64)> {
    let mut params = Params::for_network_with_eps(n as usize, k, eps);
    if !gadget {
        params = params.without_gadget();
    }
    let mut sim = Sim::builder()
        .topology(Complete::new(n as usize))
        .distribution(InitialDistribution::multiplicative_bias(k, eps))
        .rapid(params)
        .seed(seed)
        .build()
        // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
        .expect("valid workload");
    let per_phase = n * params.phase_len();
    let tolerance = 2 * params.delta as u64;
    let mut out = Vec::new();
    for _ in 0..params.phases {
        for _ in 0..per_phase {
            sim.step();
        }
        // lint: allow(panic-hygiene): this experiment always assembles the rapid engine, which provides working-time metrics
        let stats = sim.working_time_stats(tolerance).expect("rapid engine");
        out.push((stats.poorly_synced, stats.max - stats.min));
    }
    out
}

/// Runs E08 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E08", TITLE, cfg.seed);
    let mut table = Table::new(
        "Working-time concentration at phase boundaries (tolerance 2*Delta)",
        &[
            "n",
            "gadget",
            "mean poorly-synced",
            "worst poorly-synced",
            "mean spread",
            "final spread",
            "2*Delta",
        ],
    );

    for &n in &cfg.ns {
        let mut per_phase_poorly: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for gadget in [true, false] {
            let params = Params::for_network_with_eps(n as usize, cfg.k, cfg.eps);
            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ (n << 2) ^ gadget as u64),
                parallelism,
                |_, seed| measure(n, cfg.k, cfg.eps, gadget, seed),
            );

            let mut poorly = OnlineStats::new();
            let mut worst: f64 = 0.0;
            let mut spread = OnlineStats::new();
            let mut final_spread = OnlineStats::new();
            for trace in &results {
                for &(p, s) in trace {
                    poorly.push(p);
                    worst = worst.max(p);
                    spread.push(s as f64);
                    per_phase_poorly[gadget as usize].push(p);
                }
                if let Some(&(_, s)) = trace.last() {
                    final_spread.push(s as f64);
                }
            }
            table.push_row(vec![
                n.to_string(),
                if gadget { "on" } else { "off" }.to_string(),
                format!("{:.4}", poorly.mean()),
                format!("{worst:.4}"),
                format!("{:.1}", spread.mean()),
                format!("{:.1}", final_spread.mean()),
                (2 * params.delta).to_string(),
            ]);
        }
        let welch = welch_t_test(&per_phase_poorly[1], &per_phase_poorly[0]);
        table.push_note(format!(
            "n = {n}: Welch t = {:.1} (df = {:.0}) on the per-phase poorly-synced samples — \
             gadget effect {}",
            welch.t,
            welch.df,
            if welch.significant_at_1pct() {
                "significant at 1%"
            } else {
                "not significant"
            }
        ));
    }
    table.push_note("gadget off: spread grows with elapsed time; on: it is reset every phase");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_reduces_spread_and_poorly_synced_fraction() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert_eq!(table.len(), 2, "one on-row and one off-row");
        let poorly = table.column_f64("mean poorly-synced");
        let final_spread = table.column_f64("final spread");
        let (on_p, off_p) = (poorly[0], poorly[1]);
        let (on_s, off_s) = (final_spread[0], final_spread[1]);
        assert!(
            on_p < off_p,
            "gadget should reduce poorly-synced fraction: {on_p} vs {off_p}"
        );
        assert!(
            on_s < off_s,
            "gadget should reduce final spread: {on_s} vs {off_s}"
        );
        assert!(
            on_p < 0.1,
            "with the gadget, poorly-synced stays small: {on_p}"
        );
    }
}
