//! **E09 / Table 5** — Poisson-clock concentration and the `Ω(log n)`
//! barrier.
//!
//! Claims (§1.1, §3): in the sequential model, (a) some node remains
//! unselected for `Ω(log n)` time w.h.p. — hence no asynchronous protocol
//! can converge in `o(log n)` time — and (b) after `T` time units, tick
//! counts concentrate within `O(√(T log n))` of `T`, which is what makes
//! weak synchronicity achievable at all.
//!
//! Shape check: `coverage/ln n` and `max_dev/√(2T ln n)` are both roughly
//! constant as `n` spans three orders of magnitude.

use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::predictions;
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Tick concentration and the Omega(log n) asynchronous barrier";

/// Configuration for E09.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Horizon in multiples of `ln n`.
    pub horizon_ln_multiple: f64,
    /// Trials per n.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1 << 10, 1 << 14, 1 << 18, 1 << 20],
            horizon_ln_multiple: 4.0,
            trials: 10,
            seed: 0xE09,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 8, 1 << 12],
            trials: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            horizon_ln_multiple: p.f64("horizon"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::f64(
            "horizon",
            "horizon in multiples of ln n",
            d.horizon_ln_multiple,
        )
        .quick(q.horizon_ln_multiple),
        ParamSpec::u64("trials", "trials per n", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E09;

impl Experiment for E09 {
    fn id(&self) -> &'static str {
        "e09"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§1.1/§3 tick concentration / Table 5"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// Runs E09 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E09", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "Sequential model, horizon T = {} ln n",
            cfg.horizon_ln_multiple
        ),
        &[
            "n",
            "coverage",
            "coverage/ln(n)",
            "max_dev",
            "max_dev/scale",
            "trials",
        ],
    );

    for &n in &cfg.ns {
        let t_end = cfg.horizon_ln_multiple * (n as f64).ln();

        let results = run_trials_on(
            cfg.trials,
            Seed::new(cfg.seed ^ n),
            parallelism,
            move |_, seed| {
                let mut sched = SequentialScheduler::with_mode(n as usize, seed, TimeMode::Sampled);
                let mut stats = ActivationStats::new(n as usize);
                let horizon = SimTime::from_secs(t_end);
                // Drive to the horizon, recording every activation.
                sched.run_until(horizon, |a| stats.observe(a));
                let coverage = stats
                    .last_first_activation()
                    .map(|t| t.as_secs())
                    .unwrap_or(t_end); // some node never ticked: report the horizon
                (coverage, stats.max_deviation())
            },
        );

        let coverage: OnlineStats = results.iter().map(|r| r.0).collect();
        let max_dev: OnlineStats = results.iter().map(|r| r.1).collect();
        let ln_n = (n as f64).ln();
        let dev_scale = predictions::tick_deviation_scale(n, t_end);
        table.push_row(vec![
            n.to_string(),
            format!("{:.2}", coverage.mean()),
            format!("{:.3}", coverage.mean() / ln_n),
            format!("{:.1}", max_dev.mean()),
            format!("{:.3}", max_dev.mean() / dev_scale),
            cfg.trials.to_string(),
        ]);
    }
    table.push_note("coverage = time until every node ticked once (coupon collector ~ ln n)");
    table.push_note("scale = sqrt(2 T ln n), the Gaussian-tail prediction for max deviation");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_columns_are_stable_across_n() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        let cov = table.column_f64("coverage/ln(n)");
        let dev = table.column_f64("max_dev/scale");
        assert!(cov.len() >= 2);
        // Coverage time is Θ(ln n): the ratio stays within a 2.5x band.
        let band = cov.iter().cloned().fold(f64::MIN, f64::max)
            / cov.iter().cloned().fold(f64::MAX, f64::min);
        assert!(band < 2.5, "coverage band {band}");
        // Deviation stays at the √(2T ln n) scale (well below 2x).
        assert!(dev.iter().all(|&d| d > 0.2 && d < 2.0), "dev {dev:?}");
    }
}
