//! **E10 / Figure 5** — Bit-Propagation is a Pólya urn.
//!
//! Claim (§3.1): during the asynchronous Bit-Propagation sub-phase, the
//! color distribution among bit-set nodes evolves as a Pólya urn; by the
//! martingale property the composition at the end of the sub-phase is
//! (almost) the composition right after the Two-Choices step.
//!
//! Measurement: inside real [`RapidSim`] runs, snapshot the bit-set
//! composition at the start and end of phase 0's Bit-Propagation; the
//! plurality fraction's drift should be ≈ 0, and the distribution of final
//! fractions across trials should match an actual Pólya urn seeded with the
//! same start composition (two-sample Kolmogorov–Smirnov).

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::{ks_two_sample, OnlineStats};
use rapid_urn::spread_by_copying;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Bit-Propagation behaves as a Polya urn (martingale composition)";

/// Configuration for E10.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Opinion counts to test.
    pub ks: Vec<usize>,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Trials per k.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 14,
            ks: vec![4, 16],
            eps: 0.3,
            trials: 40,
            seed: 0xE10,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 11,
            ks: vec![4],
            trials: 15,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            ks: p.usize_list("ks"),
            eps: p.f64("eps"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    let as_u64 = |ks: &[usize]| ks.iter().map(|&k| k as u64).collect::<Vec<_>>();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64_list("ks", "opinion counts to test", &as_u64(&d.ks)).quick(as_u64(&q.ks)),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::u64("trials", "trials per k", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E10;

impl Experiment for E10 {
    fn id(&self) -> &'static str {
        "e10"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§3.1 Pólya-urn martingale / Figure 5"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// One trial: returns `(f0, f1_protocol, f1_urn)` — the plurality fraction
/// among bit-set nodes at BP start, BP end (in-protocol), and after an
/// equivalent-length Pólya urn run.
fn trial(n: u64, k: usize, eps: f64, seed: Seed) -> Option<(f64, f64, f64)> {
    let params = Params::for_network_with_eps(n as usize, k, eps);
    let mut sim = Sim::builder()
        .topology(Complete::new(n as usize))
        .distribution(InitialDistribution::multiplicative_bias(k, eps))
        .rapid(params)
        .seed(seed.child(0))
        .build()
        .ok()?;

    // The median moves ~1 tick per n activations; advance in n/8-tick
    // chunks so the O(n log n) median computation stays off the hot path.
    let chunk = n / 8 + 1;
    let advance_to = |sim: &mut Sim, target: u64| {
        // lint: allow(panic-hygiene): this experiment always assembles the rapid engine, which provides working-time metrics
        while sim.median_working_time().expect("rapid engine") < target {
            for _ in 0..chunk {
                sim.step();
            }
        }
    };

    // Advance until the bulk has completed the commit step of phase 0.
    let commit_slot = (params.tc_blocks as u64) * params.delta as u64; // first BP slot
    advance_to(&mut sim, commit_slot);
    // lint: allow(panic-hygiene): this experiment always assembles the rapid engine, which provides working-time metrics
    let comp0 = sim.bit_composition().expect("rapid engine");
    let total0: u64 = comp0.iter().sum();
    if total0 == 0 {
        return None; // no seeds this trial (possible at tiny n)
    }
    let f0 = comp0[0] as f64 / total0 as f64;

    // Advance to the end of the BP sub-phase (bulk at sync start).
    let sync_start = commit_slot + params.bp_len();
    advance_to(&mut sim, sync_start);
    // lint: allow(panic-hygiene): this experiment always assembles the rapid engine, which provides working-time metrics
    let comp1 = sim.bit_composition().expect("rapid engine");
    let total1: u64 = comp1.iter().sum();
    let f1 = comp1[0] as f64 / total1 as f64;

    // Matched Pólya urn: same start composition, same number of joins.
    let mut urn_rng = SimRng::from_seed_value(seed.child(1));
    let joins = total1.saturating_sub(total0);
    let urn_final = spread_by_copying(&comp0, joins, &mut urn_rng);
    let urn_total: u64 = urn_final.iter().sum();
    let f_urn = urn_final[0] as f64 / urn_total as f64;

    Some((f0, f1, f_urn))
}

/// Runs E10 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E10", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "Bit-set plurality fraction, n = {}, eps = {}",
            cfg.n, cfg.eps
        ),
        &[
            "k",
            "f_start",
            "f_end(protocol)",
            "f_end(urn)",
            "drift",
            "KS p-value",
            "trials",
        ],
    );

    for &k in &cfg.ks {
        let results = run_trials_on(
            cfg.trials,
            Seed::new(cfg.seed ^ (k as u64) << 6),
            parallelism,
            |_, seed| trial(cfg.n, k, cfg.eps, seed),
        );
        let valid: Vec<(f64, f64, f64)> = results.into_iter().flatten().collect();
        if valid.is_empty() {
            continue;
        }
        let f0: OnlineStats = valid.iter().map(|r| r.0).collect();
        let f1: OnlineStats = valid.iter().map(|r| r.1).collect();
        let fu: OnlineStats = valid.iter().map(|r| r.2).collect();
        let drift: OnlineStats = valid.iter().map(|r| r.1 - r.0).collect();
        let proto_sample: Vec<f64> = valid.iter().map(|r| r.1).collect();
        let urn_sample: Vec<f64> = valid.iter().map(|r| r.2).collect();
        let ks = ks_two_sample(&proto_sample, &urn_sample);

        table.push_row(vec![
            k.to_string(),
            format!("{:.4}", f0.mean()),
            format!("{:.4}", f1.mean()),
            format!("{:.4}", fu.mean()),
            format!("{:+.4}", drift.mean()),
            format!("{:.3}", ks.p_value),
            valid.len().to_string(),
        ]);
    }
    table.push_note("drift ~ 0 = martingale; KS p-value > 0.01 = protocol matches the urn law");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_is_a_martingale_and_matches_the_urn() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert!(!table.is_empty());
        let drift = table.column_f64("drift");
        assert!(
            drift.iter().all(|d| d.abs() < 0.05),
            "composition drifted: {drift:?}"
        );
        let p = table.column_f64("KS p-value");
        assert!(
            p.iter().all(|&p| p > 0.01),
            "protocol and urn distributions diverge: p = {p:?}"
        );
    }
}
