//! **E11 / Table 6** — the endgame (§3.2).
//!
//! Claim: once `c_1 ≥ (1−ε)·n`, plain asynchronous Two-Choices drives all
//! nodes to `C_1` before the first node finishes its `Θ(log n)`-tick
//! part-2 budget, w.h.p.
//!
//! Shape check: success ≈ 1 for every `(n, ε)` cell and the consensus
//! time scales like `ln n`.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Endgame: async Two-Choices finishes before the first node halts";

/// Configuration for E11.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Minority fractions `ε` (the endgame starts at `c_1 = (1−ε)n`).
    pub eps: Vec<f64>,
    /// Halt budget in multiples of `ln n` ticks.
    pub halt_ln_multiple: f64,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1 << 12, 1 << 14, 1 << 16],
            eps: vec![0.05, 0.1, 0.2],
            halt_ln_multiple: 8.0,
            trials: 20,
            seed: 0xE11,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 10],
            eps: vec![0.1, 0.2],
            trials: 6,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            eps: p.f64_list("eps"),
            halt_ln_multiple: p.f64("halt"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::f64_list("eps", "minority fractions (endgame at c1=(1-eps)n)", &d.eps)
            .quick(q.eps),
        ParamSpec::f64(
            "halt",
            "halt budget in multiples of ln n ticks",
            d.halt_ln_multiple,
        )
        .quick(q.halt_ln_multiple),
        ParamSpec::u64("trials", "trials per cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E11;

impl Experiment for E11 {
    fn id(&self) -> &'static str {
        "e11"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§3.2 endgame / Table 6"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// Runs E11 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E11", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "Endgame from c1 = (1-eps)*n, halt budget {} ln n ticks",
            cfg.halt_ln_multiple
        ),
        &[
            "n",
            "eps",
            "time",
            "stderr",
            "time/ln(n)",
            "success",
            "trials",
        ],
    );

    for &n in &cfg.ns {
        for &eps in &cfg.eps {
            let minority = ((eps * n as f64).round() as u64).max(1);
            let counts = [n - minority, minority];
            let halt = (cfg.halt_ln_multiple * (n as f64).ln()).ceil() as u64;

            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ (n << 3) ^ (eps * 100.0) as u64),
                parallelism,
                move |_, seed| {
                    let outcome = Sim::builder()
                        .topology(Complete::new(n as usize))
                        .counts(&counts)
                        .gossip(GossipRule::TwoChoices)
                        .halt_after(halt)
                        .seed(seed)
                        .stop(StopCondition::StepBudget(4 * n * halt))
                        .build()
                        // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
                        .expect("validated")
                        .run();
                    if outcome.converged() {
                        let ok = outcome.winner == Some(Color::new(0))
                            && outcome.before_first_halt == Some(true);
                        // lint: allow(panic-hygiene): asynchronous engines always carry virtual time
                        (outcome.time.expect("async engine").as_secs(), ok, true)
                    } else {
                        (0.0, false, false)
                    }
                },
            );

            let time: OnlineStats = results.iter().filter(|r| r.2).map(|r| r.0).collect();
            let success = results.iter().filter(|r| r.1).count() as f64 / results.len() as f64;
            table.push_row(vec![
                n.to_string(),
                format!("{eps}"),
                format!("{:.1}", time.mean()),
                format!("{:.2}", time.std_err()),
                format!("{:.2}", time.mean() / (n as f64).ln()),
                format!("{success:.2}"),
                cfg.trials.to_string(),
            ]);
        }
    }
    table.push_note("success = plurality unanimity strictly before the first node froze");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endgame_succeeds_whp_from_dominant_configurations() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        let success = table.column_f64("success");
        assert!(success.len() >= 2);
        assert!(
            success.iter().all(|&s| s >= 0.8),
            "endgame success rates {success:?}"
        );
    }
}
