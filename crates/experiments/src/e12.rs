//! **E12 / Table 7** — response delays (§4 extension).
//!
//! Claim (discussion): the model extension in which a contacted node's
//! response arrives after an `Exponential(mu)` delay (μ constant,
//! independent of `n`) should preserve the `O(log n)` run-time shape.
//!
//! Implementation: the [`JitteredScheduler`] postpones each tick's *effect*
//! by an exponential response latency (see `rapid-sim`'s `delay` module for
//! the modelling discussion); the protocol itself is unchanged.
//!
//! Shape check: `time/ln n` stays within a constant band across both the
//! delay rates and the `n` sweep, degrading smoothly as the mean delay
//! grows.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Discussion extension: exponential response delays keep the O(log n) shape";

/// Configuration for E12.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Delay rates μ to test (`None` encoded as 0 = instant responses).
    pub delay_rates: Vec<f64>,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1 << 12, 1 << 14],
            k: 4,
            eps: 0.3,
            delay_rates: vec![0.0, 4.0, 2.0, 1.0],
            trials: 8,
            seed: 0xE12,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 10],
            delay_rates: vec![0.0, 2.0],
            trials: 3,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            delay_rates: p.f64_list("rates"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::f64_list(
            "rates",
            "delay rates mu (0 = instant responses)",
            &d.delay_rates,
        )
        .quick(q.delay_rates),
        ParamSpec::u64("trials", "trials per cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E12;

impl Experiment for E12 {
    fn id(&self) -> &'static str {
        "e12"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§4 response delays / Table 7"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

fn run_one(n: u64, k: usize, eps: f64, rate: f64, seed: Seed) -> Option<(f64, bool)> {
    let params = Params::for_network_with_eps(n as usize, k, eps);
    // No explicit stop: the facade's fallback budget for rapid engines is
    // the schedule-derived default.
    let mut builder = Sim::builder()
        .topology(Complete::new(n as usize))
        .distribution(InitialDistribution::multiplicative_bias(k, eps))
        .rapid(params)
        .seed(seed);
    if rate > 0.0 {
        builder = builder
            .clock(Clock::Sequential(TimeMode::Sampled))
            .jitter(rate);
    }
    let outcome = builder.build().ok()?.run();
    let out = outcome.as_rapid()?;
    Some((
        out.time.as_secs(),
        out.winner == Color::new(0) && out.before_first_halt,
    ))
}

/// Runs E12 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E12", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "RapidSim with Exp(mu) response delays, k = {}, eps = {}",
            cfg.k, cfg.eps
        ),
        &[
            "n",
            "delay",
            "mean delay",
            "time",
            "stderr",
            "time/ln(n)",
            "success",
        ],
    );

    for &n in &cfg.ns {
        for &rate in &cfg.delay_rates {
            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ (n << 5) ^ (rate * 8.0) as u64),
                parallelism,
                move |_, seed| run_one(n, cfg.k, cfg.eps, rate, seed),
            );
            let valid: Vec<(f64, bool)> = results.into_iter().flatten().collect();
            if valid.is_empty() {
                continue;
            }
            let time: OnlineStats = valid.iter().map(|r| r.0).collect();
            let success = valid.iter().filter(|r| r.1).count() as f64 / valid.len() as f64;
            let delay_label = if rate > 0.0 {
                ResponseDelay::exponential(rate).to_string()
            } else {
                ResponseDelay::None.to_string()
            };
            let mean_delay = if rate > 0.0 { 1.0 / rate } else { 0.0 };
            table.push_row(vec![
                n.to_string(),
                delay_label,
                format!("{mean_delay:.2}"),
                format!("{:.1}", time.mean()),
                format!("{:.1}", time.std_err()),
                format!("{:.2}", time.mean() / (n as f64).ln()),
                format!("{success:.2}"),
            ]);
        }
    }
    table.push_note("delays postpone each tick's effect; the O(log n) scaling survives");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_degrade_gracefully() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert!(table.len() >= 2);
        let success = table.column_f64("success");
        assert!(success.iter().all(|&s| s >= 0.66), "success {success:?}");
        let t = table.column_f64("time");
        // Exp(2) delays (mean 0.5) should cost well under 3x.
        assert!(t[1] / t[0] < 3.0, "delay cost too high: {t:?}");
    }
}
