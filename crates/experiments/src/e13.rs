//! **E13 / Figure 6** — protocol comparison across the opinion count.
//!
//! Context for the paper's contribution: how the standard protocols
//! degrade as `k` grows, and where the paper's protocols take over.
//!
//! * Voter — no drift: slow (`Θ(n)` rounds) and only proportionally likely
//!   to pick the plurality;
//! * Two-Choices / 3-Majority — drift-based, but `Ω(k)` rounds;
//! * OneExtraBit — polylogarithmic rounds at every `k`;
//! * RapidSim (asynchronous) — `Θ(log n)` *time*, reported in the same
//!   table (one synchronous round ≈ one asynchronous time unit of work per
//!   node).

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Protocol comparison: who wins as the opinion count grows";

/// Configuration for E13.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Opinion counts to sweep.
    pub ks: Vec<usize>,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Include the (slow) Voter baseline.
    pub include_voter: bool,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 13,
            ks: vec![2, 4, 8, 16, 32, 64],
            eps: 0.3,
            include_voter: true,
            trials: 8,
            seed: 0xE13,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 12,
            ks: vec![2, 8, 16],
            eps: 0.5,
            trials: 3,
            include_voter: false,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            ks: p.usize_list("ks"),
            eps: p.f64("eps"),
            include_voter: p.bool("voter"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    let as_u64 = |ks: &[usize]| ks.iter().map(|&k| k as u64).collect::<Vec<_>>();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64_list("ks", "opinion counts to sweep", &as_u64(&d.ks)).quick(as_u64(&q.ks)),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::bool(
            "voter",
            "include the (slow) Voter baseline",
            d.include_voter,
        )
        .quick(q.include_voter),
        ParamSpec::u64("trials", "trials per cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E13;

impl Experiment for E13 {
    fn id(&self) -> &'static str {
        "e13"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "context comparison / Figure 6"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

#[derive(Copy, Clone)]
enum Entrant {
    Voter,
    TwoChoices,
    ThreeMajority,
    OneExtraBit,
    Rapid,
}

impl Entrant {
    fn name(self) -> &'static str {
        match self {
            Entrant::Voter => "voter",
            Entrant::TwoChoices => "two-choices",
            Entrant::ThreeMajority => "3-majority",
            Entrant::OneExtraBit => "one-extra-bit",
            Entrant::Rapid => "rapid-async",
        }
    }
}

fn run_entrant(
    e: Entrant,
    n: u64,
    k: usize,
    eps: f64,
    counts: &[u64],
    seed: Seed,
) -> (f64, bool, bool) {
    // The one-selector payoff: every entrant is the same expression with a
    // different `Protocol`.
    let (protocol, budget): (Protocol, u64) = match e {
        Entrant::Voter => (Protocol::Sync(Box::new(Voter::new())), 40 * n), // Θ(n) expected
        Entrant::TwoChoices => (
            Protocol::Sync(Box::new(TwoChoices::new())),
            600 * k as u64 + 10_000,
        ),
        Entrant::ThreeMajority => (
            Protocol::Sync(Box::new(ThreeMajority::new())),
            600 * k as u64 + 10_000,
        ),
        Entrant::OneExtraBit => (
            Protocol::Sync(Box::new(OneExtraBit::for_network(n as usize, k))),
            5_000,
        ),
        Entrant::Rapid => {
            let params = Params::for_network_with_eps(n as usize, k, eps);
            // 0 sentinel: the rapid entrant relies on the facade's
            // schedule-derived fallback budget instead of an explicit stop.
            (Protocol::Rapid(params), 0)
        }
    };
    let mut builder = Sim::builder()
        .topology(Complete::new(n as usize))
        .counts(counts)
        .select(protocol)
        .seed(seed);
    if !matches!(e, Entrant::Rapid) {
        builder = builder.stop(StopCondition::RoundBudget(budget));
    }
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let outcome = builder.build().expect("valid").run();
    match e {
        Entrant::Rapid => match outcome.as_rapid() {
            Some(out) => (
                out.time.as_secs(),
                out.winner == Color::new(0) && out.before_first_halt,
                true,
            ),
            None => (0.0, false, false),
        },
        _ => match outcome.as_sync() {
            Some(out) => (out.rounds as f64, out.winner == Color::new(0), true),
            None => (budget as f64, false, false),
        },
    }
}

/// Runs E13 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E13", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "Rounds/time to consensus at n = {}, eps = {}",
            cfg.n, cfg.eps
        ),
        &[
            "k",
            "protocol",
            "rounds~time",
            "stderr",
            "success",
            "converged",
        ],
    );

    let mut entrants = vec![
        Entrant::TwoChoices,
        Entrant::ThreeMajority,
        Entrant::OneExtraBit,
        Entrant::Rapid,
    ];
    if cfg.include_voter {
        entrants.insert(0, Entrant::Voter);
    }

    for &k in &cfg.ks {
        let Ok(counts) = InitialDistribution::multiplicative_bias(k, cfg.eps).counts(cfg.n) else {
            continue;
        };
        for &e in &entrants {
            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ (k as u64) << 7 ^ e.name().len() as u64),
                parallelism,
                {
                    let counts = counts.clone();
                    move |_, seed| run_entrant(e, cfg.n, k, cfg.eps, &counts, seed)
                },
            );
            let time: OnlineStats = results.iter().filter(|r| r.2).map(|r| r.0).collect();
            let success = results.iter().filter(|r| r.1).count() as f64 / results.len() as f64;
            let converged = results.iter().filter(|r| r.2).count() as f64 / results.len() as f64;
            table.push_row(vec![
                k.to_string(),
                e.name().to_string(),
                format!("{:.1}", time.mean()),
                format!("{:.1}", time.std_err()),
                format!("{success:.2}"),
                format!("{converged:.2}"),
            ]);
        }
    }
    table.push_note(
        "two-choices rounds grow with k while one-extra-bit and rapid-async grow only \
         polylogarithmically (compare growth factors across the sweep)",
    );
    table.push_note(
        "the success columns of one-extra-bit and rapid-async trace the finite-n seed-race \
         frontier: both need c1^2/n to clear the largest rival's c^2/n tail (Theorem 1.2's \
         gap condition / Theorem 1.3's k-range in asymptotic form)",
    );
    table.push_note("voter (if present) is slow and wins only ~proportionally to c1/n");
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protocol_series(table: &Table, protocol: &str) -> Vec<(u64, f64, f64)> {
        table
            .rows
            .iter()
            .filter(|row| row[1] == protocol)
            .map(|row| {
                (
                    row[0].parse().expect("k"),
                    row[2].parse().expect("rounds"),
                    row[4].parse().expect("success"),
                )
            })
            .collect()
    }

    #[test]
    fn two_choices_cost_grows_with_k_while_rapid_stays_flat() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert!(!table.is_empty());

        let tc = protocol_series(table, "two-choices");
        assert!(tc.len() >= 3);
        // Two-Choices: Ω(k)-flavoured growth across the sweep.
        assert!(
            tc.last().expect("rows").1 > tc[0].1 * 1.3,
            "two-choices rounds should grow with k: {tc:?}"
        );

        let rapid = protocol_series(table, "rapid-async");
        // RapidSim: flat Θ(log n) time and consistent success inside the
        // theorem's k-range.
        let times: Vec<f64> = rapid.iter().map(|r| r.1).collect();
        let band = times.iter().cloned().fold(f64::MIN, f64::max)
            / times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(band < 2.5, "rapid time band {band}: {times:?}");
        assert!(
            rapid.iter().all(|r| r.2 >= 0.66),
            "rapid success dipped: {rapid:?}"
        );
    }
}
