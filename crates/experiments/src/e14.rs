//! **E14 / Figure 7 (extension)** — beyond the complete graph.
//!
//! The paper's discussion (§4) conjectures that its techniques "carry over
//! to a much more general setting". This *extension* experiment (clearly
//! beyond the brief announcement's stated results) runs the identical
//! protocol implementations — they are topology-generic — on expander-like
//! sparse graphs and on poorly-mixing ones:
//!
//! * random `d`-regular graphs with `d = Θ(log n)` (expanders: neighbor
//!   sampling approximates uniform sampling well);
//! * Erdős–Rényi `G(n, p)` above the connectivity threshold;
//! * the 2-D torus (slow mixing: a *negative* control — plurality
//!   consensus by local drift is not expected to track the global
//!   plurality).
//!
//! Shape expectation: on expanders both Two-Choices and the asynchronous
//! protocol behave clique-like (success ≈ 1, comparable times); on the
//! torus the asynchronous protocol's Two-Choices step sees heavily
//! correlated samples and the global plurality frequently loses.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_graph::{ErdosRenyi, RandomRegular, Torus2d};
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Extension (discussion §4): the protocols beyond the complete graph";

/// Configuration for E14.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size (tori round down to a square side).
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 13,
            k: 4,
            eps: 0.5,
            trials: 10,
            seed: 0xE14,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 10,
            trials: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64(
            "n",
            "population size (tori round down to a square side)",
            d.n,
        )
        .quick(q.n),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::u64("trials", "trials per cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E14;

impl Experiment for E14 {
    fn id(&self) -> &'static str {
        "e14"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§4 topologies (extension) / Figure 7"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Topo {
    Clique,
    Regular,
    ErdosRenyi,
    Torus,
}

impl Topo {
    fn label(self) -> &'static str {
        match self {
            Topo::Clique => "complete",
            Topo::Regular => "random-regular(d~log n)",
            Topo::ErdosRenyi => "G(n, 2 ln n / n)",
            Topo::Torus => "torus (negative control)",
        }
    }
}

/// One (topology, protocol) cell: mean time + plurality-success rate.
fn run_cell(
    topo: Topo,
    asynchronous: bool,
    cfg: &Config,
    master: Seed,
    parallelism: Parallelism,
) -> Option<(OnlineStats, f64)> {
    let side = (cfg.n as f64).sqrt() as usize;
    let n = match topo {
        Topo::Torus => side * side,
        _ => cfg.n as usize,
    };
    let counts = InitialDistribution::multiplicative_bias(cfg.k, cfg.eps)
        .counts(n as u64)
        .ok()?;
    let d = ((n as f64).ln().ceil() as usize) | 1; // odd degree is fine for even n
    let eps = cfg.eps;
    let k = cfg.k;
    let trials = cfg.trials;

    let results = run_trials_on(trials, master, parallelism, move |_, seed| {
        // Build the topology fresh per trial (random graphs resample).
        let topology: rapid_core::facade::BoxedTopology = match topo {
            Topo::Clique => Box::new(Complete::new(n)),
            // Children 0–3 are the facade's internal streams (scheduler,
            // engine, shuffle, jitter); sample graphs from disjoint ones
            // so graph structure and protocol randomness stay independent.
            Topo::Regular => Box::new(
                // lint: allow(rng-stream-registry): experiment-local topology-sampling stream, disjoint from the registry by construction
                // lint: allow(panic-hygiene): n and d are drawn from the experiment grid, which only contains even stub counts
                RandomRegular::sample(n, d.min(n - 1), seed.child(20)).expect("even stub count"),
            ),
            Topo::ErdosRenyi => {
                let p = 2.0 * (n as f64).ln() / n as f64;
                // lint: allow(rng-stream-registry): experiment-local topology-sampling stream, disjoint from the registry by construction
                Box::new(ErdosRenyi::sample(n, p.min(1.0), seed.child(21)))
            }
            Topo::Torus => Box::new(Torus2d::new(side, side)),
        };
        // Structured topologies need a random node-color assignment, so
        // shuffle; both protocols share the rest of the assembly.
        let builder = Sim::builder()
            .boxed_topology(topology)
            .counts(&counts)
            .shuffle(true)
            .seed(seed);
        if asynchronous {
            // No explicit stop: the facade's fallback is the rapid
            // engine's schedule-derived budget.
            let params = Params::for_network_with_eps(n, k, eps);
            // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
            let outcome = builder.rapid(params).build().expect("validated").run();
            match outcome.as_rapid() {
                Some(out) => (
                    out.time.as_secs(),
                    out.winner == Color::new(0) && out.before_first_halt,
                    true,
                ),
                None => (0.0, false, false),
            }
        } else {
            let outcome = builder
                .protocol(TwoChoices::new())
                .stop(StopCondition::RoundBudget(200_000))
                .build()
                // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
                .expect("validated")
                .run();
            match outcome.as_sync() {
                Some(out) => (out.rounds as f64, out.winner == Color::new(0), true),
                None => (0.0, false, false),
            }
        }
    });

    let time: OnlineStats = results.iter().filter(|r| r.2).map(|r| r.0).collect();
    let success = results.iter().filter(|r| r.1).count() as f64 / results.len() as f64;
    Some((time, success))
}

/// Runs E14 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E14", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "Two-Choices (sync) and RapidSim (async) across topologies, n ~ {}, k = {}, eps = {}",
            cfg.n, cfg.k, cfg.eps
        ),
        &["topology", "protocol", "time", "stderr", "success"],
    );

    for topo in [Topo::Clique, Topo::Regular, Topo::ErdosRenyi, Topo::Torus] {
        for asynchronous in [false, true] {
            let Some((time, success)) = run_cell(
                topo,
                asynchronous,
                cfg,
                Seed::new(cfg.seed ^ topo.label().len() as u64 ^ (asynchronous as u64) << 9),
                parallelism,
            ) else {
                continue;
            };
            table.push_row(vec![
                topo.label().to_string(),
                if asynchronous {
                    "rapid-async"
                } else {
                    "two-choices"
                }
                .to_string(),
                format!("{:.1}", time.mean()),
                format!("{:.1}", time.std_err()),
                format!("{success:.2}"),
            ]);
        }
    }
    table.push_note(
        "extension beyond the paper: expanders behave clique-like; the slow-mixing torus \
         is a negative control where global plurality frequently loses",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expanders_behave_clique_like() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert!(table.len() >= 6);
        // Success per (topology, protocol) row, keyed by the first column.
        let success_of = |topo: &str, proto: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[0].starts_with(topo) && r[1] == proto)
                .map(|r| r[4].parse().expect("success"))
                .expect("row present")
        };
        assert!(success_of("complete", "two-choices") >= 0.75);
        assert!(success_of("random-regular", "two-choices") >= 0.75);
        assert!(success_of("G(n,", "two-choices") >= 0.75);
        assert!(success_of("complete", "rapid-async") >= 0.75);
        assert!(success_of("random-regular", "rapid-async") >= 0.5);
    }
}
