//! **E15 / Table 8 (extension)** — heterogeneous clock rates.
//!
//! The paper's discussion (§4): *"We showed our main result assuming
//! independent Poisson clocks with parameter 1. However, our techniques
//! should carry over to a much more general setting as well."*
//!
//! This extension experiment stresses that conjecture: node clock rates
//! are drawn uniformly from `[1−δ, 1+δ]` (so a δ = 0.5 network mixes nodes
//! ticking at up to 3× each other's speed) and the unmodified asynchronous
//! protocol runs on top. The Sync Gadget must now absorb *persistent* rate
//! skew, not just Poisson noise.
//!
//! Shape expectation: success stays high for moderate skew, then collapses
//! sharply once persistent rate differences spread working times beyond
//! the sub-phase structure within a single phase — fast nodes outrun the
//! schedule and slow nodes miss critical slots faster than the per-phase
//! median jump can correct.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Extension (discussion §4): robustness to heterogeneous clock rates";

/// Configuration for E15.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Clock skews δ to test (rates uniform in `[1−δ, 1+δ]`).
    pub skews: Vec<f64>,
    /// Trials per skew.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 13,
            k: 4,
            eps: 0.5,
            skews: vec![0.0, 0.1, 0.2, 0.4, 0.6],
            trials: 10,
            seed: 0xE15,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 10,
            skews: vec![0.0, 0.2],
            trials: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            skews: p.f64_list("skews"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::f64_list(
            "skews",
            "clock skews d (rates uniform in [1-d, 1+d])",
            &d.skews,
        )
        .quick(q.skews),
        ParamSpec::u64("trials", "trials per skew", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E15;

impl Experiment for E15 {
    fn id(&self) -> &'static str {
        "e15"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§4 clock skew (extension) / Table 8"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

fn run_one(n: u64, k: usize, eps: f64, skew: f64, seed: Seed) -> Option<(f64, bool, f64)> {
    let params = Params::for_network_with_eps(n as usize, k, eps);
    let mut sim = Sim::builder()
        .topology(Complete::new(n as usize))
        .distribution(InitialDistribution::multiplicative_bias(k, eps))
        .rapid(params)
        .clock(Clock::UniformSkew { skew })
        .seed(seed)
        .build()
        .ok()?;
    let budget = sim.default_budget();
    let spread_probe = params.part1_len() / 2;
    // Probe the working-time spread mid-run (after ~half of part 1).
    let mut spread = f64::NAN;
    let mut outcome = None;
    while sim.steps() < budget {
        sim.step();
        // lint: allow(panic-hygiene): this experiment always assembles the rapid engine, which provides working-time metrics
        if spread.is_nan() && sim.median_working_time().expect("rapid engine") >= spread_probe {
            let stats = sim
                .working_time_stats(2 * params.delta as u64)
                // lint: allow(panic-hygiene): this experiment always assembles the rapid engine, which provides working-time metrics
                .expect("rapid");
            spread = stats.poorly_synced;
        }
        if let Some(winner) = sim.config().unanimous() {
            // lint: allow(panic-hygiene): asynchronous engines always carry virtual time
            outcome = Some((sim.now().expect("async engine"), winner));
            break;
        }
        if sim.halted_count() == Some(n as usize) {
            break;
        }
    }
    let (time, winner) = outcome?;
    let ok = winner == Color::new(0)
        && match sim.first_halt() {
            None => true,
            Some(t) => time < t,
        };
    Some((time.as_secs(), ok, spread))
}

/// Runs E15 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E15", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "RapidSim with clock rates uniform in [1-d, 1+d], n = {}, k = {}, eps = {}",
            cfg.n, cfg.k, cfg.eps
        ),
        &[
            "skew d",
            "time",
            "stderr",
            "success",
            "mid-run poorly-synced",
            "trials",
        ],
    );

    for &skew in &cfg.skews {
        let results = run_trials_on(
            cfg.trials,
            Seed::new(cfg.seed ^ (skew * 100.0) as u64),
            parallelism,
            move |_, seed| run_one(cfg.n, cfg.k, cfg.eps, skew, seed),
        );
        let valid: Vec<&(f64, bool, f64)> = results.iter().flatten().collect();
        let time: OnlineStats = valid.iter().map(|r| r.0).collect();
        let success = valid.iter().filter(|r| r.1).count() as f64 / results.len().max(1) as f64;
        let spread: OnlineStats = valid.iter().map(|r| r.2).filter(|s| !s.is_nan()).collect();
        table.push_row(vec![
            format!("{skew}"),
            format!("{:.1}", time.mean()),
            format!("{:.1}", time.std_err()),
            format!("{success:.2}"),
            format!("{:.4}", spread.mean()),
            cfg.trials.to_string(),
        ]);
    }
    table.push_note(
        "rates are fixed per node for the whole run: the gadget must absorb persistent \
         skew, not just Poisson noise — expect a sharp threshold once the per-phase \
         spread outgrows the sub-phase structure",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_skew_is_tolerated() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert_eq!(table.len(), 2);
        let success = table.column_f64("success");
        // δ = 0 is the baseline; δ = 0.2 must still mostly succeed.
        assert!(success[0] >= 0.75, "baseline success {}", success[0]);
        assert!(success[1] >= 0.5, "skew-0.2 success {}", success[1]);
    }
}
