//! **E16 / Figure 8** — quadratic amplification *in the asynchronous
//! protocol*.
//!
//! E05 verifies the per-phase squaring law for the synchronous OneExtraBit;
//! this experiment verifies the same claim where the paper actually needs
//! it (§3): *"After executing the first two sub-phases, the relative
//! difference between C₁ and any opinion Cⱼ ≠ C₁ increases quadratically"*
//! — now with nodes on Poisson clocks, working-time scheduling, jumps and
//! the o(n) poorly-synchronized stragglers the analysis has to tolerate.
//!
//! Measurement: inside real [`RapidSim`] runs, record the `c₁/c₂` ratio
//! each time the *median working time* crosses a phase boundary; compare
//! `ratio_{p+1}` against `ratio_p²`.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Quadratic amplification inside the asynchronous protocol (Section 3)";

/// Configuration for E16.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Phases to trace.
    pub max_phases: u32,
    /// Trials.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 14,
            k: 8,
            eps: 0.3,
            max_phases: 5,
            trials: 10,
            seed: 0xE16,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 12,
            eps: 0.5,
            trials: 4,
            max_phases: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            max_phases: p.u32("max_phases"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::u32("max_phases", "phases to trace", d.max_phases)
            .quick(u64::from(q.max_phases)),
        ParamSpec::u64("trials", "trials", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E16;

impl Experiment for E16 {
    fn id(&self) -> &'static str {
        "e16"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "§3 async amplification / Figure 8"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// One trial: the `c₁/c₂` ratio at each phase boundary (median crossing).
fn trace_ratios(n: u64, k: usize, eps: f64, max_phases: u32, seed: Seed) -> Vec<f64> {
    let params = Params::for_network_with_eps(n as usize, k, eps);
    let mut sim = Sim::builder()
        .topology(Complete::new(n as usize))
        .distribution(InitialDistribution::multiplicative_bias(k, eps))
        .rapid(params)
        .seed(seed)
        .build()
        // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
        .expect("feasible workload");
    let chunk = n / 8 + 1;
    let mut ratios = vec![sim.config().counts().top_two().ratio()];
    for p in 1..=max_phases.min(params.phases) as u64 {
        let boundary = p * params.phase_len();
        // lint: allow(panic-hygiene): this experiment always assembles the rapid engine, which provides working-time metrics
        while sim.median_working_time().expect("rapid engine") < boundary {
            for _ in 0..chunk {
                sim.step();
            }
        }
        let t = sim.config().counts().top_two();
        ratios.push(t.ratio());
        if !t.ratio().is_finite() || sim.config().unanimous().is_some() {
            break;
        }
    }
    ratios
}

/// Runs E16 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E16", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "Per-phase c1/c2 ratio in RapidSim at n = {}, k = {}, eps = {}",
            cfg.n, cfg.k, cfg.eps
        ),
        &[
            "phase",
            "ratio_before",
            "ratio_after",
            "predicted",
            "measured/pred",
            "trials",
        ],
    );

    let traces = run_trials_on(cfg.trials, Seed::new(cfg.seed), parallelism, |_, seed| {
        trace_ratios(cfg.n, cfg.k, cfg.eps, cfg.max_phases, seed)
    });

    for phase in 0..cfg.max_phases as usize {
        let mut before = OnlineStats::new();
        let mut after = OnlineStats::new();
        let mut rel = OnlineStats::new();
        for trace in &traces {
            if phase + 1 < trace.len() && trace[phase].is_finite() && trace[phase + 1].is_finite() {
                before.push(trace[phase]);
                after.push(trace[phase + 1]);
                rel.push(trace[phase + 1] / trace[phase].powi(2));
            }
        }
        if before.is_empty() {
            break;
        }
        table.push_row(vec![
            phase.to_string(),
            format!("{:.3}", before.mean()),
            format!("{:.3}", after.mean()),
            format!("{:.3}", before.mean().powi(2)),
            format!("{:.3}", rel.mean()),
            before.count().to_string(),
        ]);
    }
    table.push_note(
        "asynchronous counterpart of E05: the squaring law must survive Poisson clocks, \
         jumps and the o(n) stragglers — measured/pred near 1 confirms Section 3's claim",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_amplification_is_near_quadratic() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert!(table.len() >= 2, "need at least two traced phases");
        let rel = table.column_f64("measured/pred");
        // Wider slack than sync E05: the async phase includes stragglers
        // and the endgame-free measurement is taken at median crossings.
        for (i, &r) in rel.iter().take(2).enumerate() {
            assert!((0.5..1.6).contains(&r), "phase {i}: measured/pred = {r}");
        }
    }
}
