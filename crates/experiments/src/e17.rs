//! **E17 / Table 9 (extension)** — robustness to message loss.
//!
//! The paper's protocol assumes every pull is answered. Real gossip
//! networks drop messages; the fault layer models this with a per-message
//! loss probability `p`: each pulled response is lost independently with
//! probability `p`, and an interaction aborts unless every response
//! arrives (the node keeps its color for that tick).
//!
//! This experiment sweeps `p` and runs the unmodified rapid protocol on
//! top. A lost Two-Choices sample merely wastes a slot, and the schedule
//! has slack, so moderate loss should cost a constant factor in time while
//! success stays high — until loss starves Bit-Propagation faster than a
//! phase can spread the bit, and the success probability collapses.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::fault::FaultPlan;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Fault extension: robustness of the rapid protocol to message loss";

/// Configuration for E17.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Per-message loss probabilities to test.
    pub losses: Vec<f64>,
    /// Trials per loss level.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 13,
            k: 4,
            eps: 0.5,
            losses: vec![0.0, 0.05, 0.1, 0.2, 0.4],
            trials: 10,
            seed: 0xE17,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 10,
            losses: vec![0.0, 0.2],
            trials: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            losses: p.f64_list("losses"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::f64_list("losses", "per-message loss probabilities", &d.losses).quick(q.losses),
        ParamSpec::u64("trials", "trials per loss level", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E17;

impl Experiment for E17 {
    fn id(&self) -> &'static str {
        "e17"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "fault model: message loss / Table 9"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

fn run_one(n: u64, k: usize, eps: f64, loss: f64, seed: Seed) -> Option<(f64, bool)> {
    let params = Params::for_network_with_eps(n as usize, k, eps);
    let outcome = Sim::builder()
        .topology(Complete::new(n as usize))
        .distribution(InitialDistribution::multiplicative_bias(k, eps))
        .rapid(params)
        .faults(FaultPlan::none().with_loss(loss))
        .seed(seed)
        .build()
        .ok()?
        .run();
    let ok = outcome.converged()
        && outcome.winner == Some(Color::new(0))
        && outcome.before_first_halt == Some(true);
    Some((outcome.time?.as_secs(), ok))
}

/// Runs E17 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E17", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "RapidSim with per-message loss p, n = {}, k = {}, eps = {}",
            cfg.n, cfg.k, cfg.eps
        ),
        &[
            "loss p",
            "time",
            "stderr",
            "time/ln(n)",
            "success",
            "trials",
        ],
    );

    for &loss in &cfg.losses {
        let results = run_trials_on(
            cfg.trials,
            Seed::new(cfg.seed ^ (loss * 1000.0) as u64),
            parallelism,
            move |_, seed| run_one(cfg.n, cfg.k, cfg.eps, loss, seed),
        );
        let valid: Vec<&(f64, bool)> = results.iter().flatten().collect();
        if valid.is_empty() {
            continue;
        }
        let ok: Vec<f64> = valid.iter().filter(|r| r.1).map(|r| r.0).collect();
        let time: OnlineStats = ok.iter().copied().collect();
        let success = valid.iter().filter(|r| r.1).count() as f64 / results.len().max(1) as f64;
        table.push_row(vec![
            format!("{loss}"),
            format!("{:.1}", time.mean()),
            format!("{:.1}", time.std_err()),
            format!("{:.2}", time.mean() / (cfg.n as f64).ln()),
            format!("{success:.2}"),
            cfg.trials.to_string(),
        ]);
    }
    table.push_note(
        "an interaction aborts unless every pulled response arrives; losses waste \
         schedule slots, so expect a graceful constant-factor slowdown before \
         Bit-Propagation starves and success collapses",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_loss_is_tolerated() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert_eq!(table.len(), 2);
        let success = table.column_f64("success");
        assert!(success[0] >= 0.75, "lossless success {}", success[0]);
        assert!(success[1] >= 0.5, "loss-0.2 success {}", success[1]);
    }
}
