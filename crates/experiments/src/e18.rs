//! **E18 / Table 10 (extension)** — convergence under churn.
//!
//! Nodes crash and rejoin. A crashed node neither acts on its clock ticks
//! nor answers pulls, but it keeps its opinion and still counts toward
//! unanimity — so consensus must wait for it to rejoin and be converted.
//!
//! The schedule here crashes a fraction `f` of the population (spread
//! evenly across the initial color blocks, so both opinions lose support)
//! during a window in the early protocol, then rejoins all of them
//! mid-run with their stale opinions intact. Asynchronous Two-Choices
//! runs on top: the surviving majority keeps amplifying while the crashed
//! nodes are away, and the rejoined stale minority is converted by the
//! same drift — so success should stay high even for large `f`, at a
//! time cost that grows with the window.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::fault::{ChurnEvent, FaultPlan};
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Fault extension: convergence of async Two-Choices under churn";

/// Configuration for E18.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Multiplicative lead `ε` (two opinions).
    pub eps: f64,
    /// Fractions of the population crashed during the window.
    pub crash_fracs: Vec<f64>,
    /// When the crashed nodes go down.
    pub down_at: f64,
    /// When they rejoin.
    pub up_at: f64,
    /// Trials per fraction.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 13,
            eps: 0.5,
            crash_fracs: vec![0.0, 0.1, 0.25, 0.5],
            down_at: 0.5,
            up_at: 4.0,
            trials: 10,
            seed: 0xE18,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 10,
            crash_fracs: vec![0.0, 0.25],
            trials: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            eps: p.f64("eps"),
            crash_fracs: p.f64_list("fracs"),
            down_at: p.f64("down_at"),
            up_at: p.f64("up_at"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::f64_list(
            "fracs",
            "crashed fractions of the population",
            &d.crash_fracs,
        )
        .quick(q.crash_fracs),
        ParamSpec::f64("down_at", "crash time", d.down_at).quick(q.down_at),
        ParamSpec::f64("up_at", "rejoin time", d.up_at).quick(q.up_at),
        ParamSpec::u64("trials", "trials per fraction", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E18;

impl Experiment for E18 {
    fn id(&self) -> &'static str {
        "e18"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "fault model: churn / Table 10"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

/// The churn schedule: `m = frac·n` nodes, spread evenly over `0..n` (so
/// both initial color blocks lose support), all down during
/// `[down_at, up_at)`.
fn churn_schedule(n: u64, frac: f64, down_at: f64, up_at: f64) -> Vec<ChurnEvent> {
    let m = (frac * n as f64).round() as u64;
    (0..m)
        .map(|i| {
            ChurnEvent::window(
                NodeId::new((i * n / m.max(1)) as usize),
                SimTime::from_secs(down_at),
                SimTime::from_secs(up_at),
            )
        })
        .collect()
}

fn run_one(cfg: &Config, frac: f64, seed: Seed) -> Option<(f64, bool)> {
    let plan = FaultPlan::none().with_churn(churn_schedule(cfg.n, frac, cfg.down_at, cfg.up_at));
    let outcome = Sim::builder()
        .topology(Complete::new(cfg.n as usize))
        .distribution(InitialDistribution::multiplicative_bias(2, cfg.eps))
        .gossip(GossipRule::TwoChoices)
        .faults(plan)
        .seed(seed)
        .build()
        .ok()?
        .run();
    let ok = outcome.converged() && outcome.winner == Some(Color::new(0));
    Some((outcome.time?.as_secs(), ok))
}

/// Runs E18 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E18", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "async Two-Choices with frac*n nodes down during [{}, {}), n = {}, eps = {}",
            cfg.down_at, cfg.up_at, cfg.n, cfg.eps
        ),
        &["crashed frac", "time", "stderr", "success", "trials"],
    );

    for &frac in &cfg.crash_fracs {
        let cfg2 = cfg.clone();
        let results = run_trials_on(
            cfg.trials,
            Seed::new(cfg.seed ^ (frac * 1000.0) as u64),
            parallelism,
            move |_, seed| run_one(&cfg2, frac, seed),
        );
        let valid: Vec<&(f64, bool)> = results.iter().flatten().collect();
        if valid.is_empty() {
            continue;
        }
        let ok: Vec<f64> = valid.iter().filter(|r| r.1).map(|r| r.0).collect();
        let time: OnlineStats = ok.iter().copied().collect();
        let success = valid.iter().filter(|r| r.1).count() as f64 / results.len().max(1) as f64;
        table.push_row(vec![
            format!("{frac}"),
            format!("{:.1}", time.mean()),
            format!("{:.1}", time.std_err()),
            format!("{success:.2}"),
            cfg.trials.to_string(),
        ]);
    }
    table.push_note(
        "crashed nodes freeze their opinion and still count toward unanimity; \
         they rejoin stale and must be converted, so time grows with the churn \
         window while the plurality's drift keeps success high",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_schedule_spreads_over_the_population() {
        let events = churn_schedule(100, 0.25, 0.5, 4.0);
        assert_eq!(events.len(), 25);
        let max = events.iter().map(|e| e.node.index()).max().expect("events");
        assert!(max >= 90, "stride sampling must reach the last color block");
        assert!(churn_schedule(100, 0.0, 0.5, 4.0).is_empty());
    }

    #[test]
    fn heavy_churn_still_converges() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert_eq!(table.len(), 2);
        let success = table.column_f64("success");
        assert!(success[0] >= 0.75, "churn-free success {}", success[0]);
        assert!(success[1] >= 0.5, "25%-churn success {}", success[1]);
    }
}
