//! **E19 / Table 11 (extension)** — adversary budget sweep.
//!
//! An adversary corrupts opinions at a fixed cadence until a budget is
//! exhausted, in two strengths from the consensus-under-adversary
//! literature (cf. Robinson–Scheideler–Setzer's late adversary):
//!
//! * **oblivious** — a uniformly random node is set to a uniformly random
//!   color (blind to the state);
//! * **adaptive** — a node holding the current plurality color is flipped
//!   to the current runner-up (maximally harmful per corruption).
//!
//! Asynchronous Two-Choices runs on top, with the budget swept as a
//! fraction of `n`. Oblivious corruptions are nearly harmless (they hit
//! both colors proportionally); adaptive ones eat the bias directly, so
//! success should degrade visibly once the budget rivals the initial gap
//! `c₁ − c₂`.

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::fault::{AdversaryKind, AdversaryPlan, FaultPlan};
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Fault extension: async Two-Choices against budgeted adversaries";

/// Configuration for E19.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Multiplicative lead `ε` (two opinions).
    pub eps: f64,
    /// Adversary budgets as fractions of `n` (0 = no adversary).
    pub budget_fracs: Vec<f64>,
    /// Time units between corruptions.
    pub interval: f64,
    /// When the adversary starts (late adversary: after some progress).
    pub start: f64,
    /// Trials per (kind, budget) cell.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 13,
            eps: 0.5,
            budget_fracs: vec![0.0, 0.05, 0.1, 0.2],
            interval: 0.02,
            start: 1.0,
            trials: 10,
            seed: 0xE19,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 1 << 10,
            budget_fracs: vec![0.0, 0.1],
            trials: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            eps: p.f64("eps"),
            budget_fracs: p.f64_list("budgets"),
            interval: p.f64("interval"),
            start: p.f64("start"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::f64_list(
            "budgets",
            "adversary budgets as fractions of n",
            &d.budget_fracs,
        )
        .quick(q.budget_fracs),
        ParamSpec::f64("interval", "time units between corruptions", d.interval).quick(q.interval),
        ParamSpec::f64("start", "adversary start time", d.start).quick(q.start),
        ParamSpec::u64("trials", "trials per (kind, budget) cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E19;

impl Experiment for E19 {
    fn id(&self) -> &'static str {
        "e19"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "fault model: adversary / Table 11"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

fn run_one(cfg: &Config, kind: AdversaryKind, budget: u64, seed: Seed) -> Option<(f64, bool)> {
    let mut plan = FaultPlan::none();
    if budget > 0 {
        plan = plan.with_adversary(AdversaryPlan {
            kind,
            budget,
            start: SimTime::from_secs(cfg.start),
            interval: cfg.interval,
        });
    }
    let outcome = Sim::builder()
        .topology(Complete::new(cfg.n as usize))
        .distribution(InitialDistribution::multiplicative_bias(2, cfg.eps))
        .gossip(GossipRule::TwoChoices)
        .faults(plan)
        .seed(seed)
        .build()
        .ok()?
        .run();
    let ok = outcome.converged() && outcome.winner == Some(Color::new(0));
    Some((outcome.time?.as_secs(), ok))
}

/// Runs E19 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E19", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "async Two-Choices vs a budgeted adversary (one corruption per {} time \
             units from t = {}), n = {}, eps = {}",
            cfg.interval, cfg.start, cfg.n, cfg.eps
        ),
        &[
            "adversary",
            "budget/n",
            "time",
            "stderr",
            "success",
            "trials",
        ],
    );

    for kind in [AdversaryKind::Oblivious, AdversaryKind::Adaptive] {
        for &frac in &cfg.budget_fracs {
            let budget = (frac * cfg.n as f64).round() as u64;
            let cfg2 = cfg.clone();
            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ (frac * 1000.0) as u64 ^ ((kind as u64) << 40)),
                parallelism,
                move |_, seed| run_one(&cfg2, kind, budget, seed),
            );
            let valid: Vec<&(f64, bool)> = results.iter().flatten().collect();
            if valid.is_empty() {
                continue;
            }
            let ok: Vec<f64> = valid.iter().filter(|r| r.1).map(|r| r.0).collect();
            let time: OnlineStats = ok.iter().copied().collect();
            let success = valid.iter().filter(|r| r.1).count() as f64 / results.len().max(1) as f64;
            table.push_row(vec![
                kind.to_string(),
                format!("{frac}"),
                format!("{:.1}", time.mean()),
                format!("{:.1}", time.std_err()),
                format!("{success:.2}"),
                cfg.trials.to_string(),
            ]);
        }
    }
    table.push_note(
        "oblivious corruptions hit both colors proportionally and barely register; \
         adaptive ones drain c1 - c2 directly, so expect degradation once the \
         budget rivals the initial gap",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_budgets_do_not_stop_consensus() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        // Two kinds x two budgets.
        assert_eq!(table.len(), 4);
        let success = table.column_f64("success");
        // Budget 0 rows (both kinds) are adversary-free and must succeed.
        assert!(success[0] >= 0.75, "oblivious budget-0 {}", success[0]);
        assert!(success[2] >= 0.75, "adaptive budget-0 {}", success[2]);
        // A 10%-of-n oblivious budget is noise for eps = 0.5.
        assert!(success[1] >= 0.5, "oblivious budget-0.1 {}", success[1]);
    }
}
