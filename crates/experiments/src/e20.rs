//! **E20 / macro validation** — micro/macro cross-validation sweep.
//!
//! The macro engine (`rapid-macro`) claims to simulate the *same*
//! stochastic process as the per-node engines, three orders of magnitude
//! further up in `n`. This experiment is the evidence: for each `n` in
//! the sweep it runs matched micro and macro trial sets of asynchronous
//! Two-Choices and of the full rapid protocol, records the occupancy
//! trajectories at a grid of time checkpoints, and reports the
//! total-variation distance between the mean trajectories together with
//! the bootstrap-CI overlap verdict from `rapid_macro::crossval`.

use rapid_core::facade::MacroProtocol;
use rapid_core::prelude::*;
use rapid_macro::crossval::{cross_validate, CrossValConfig};
use rapid_sim::rng::Seed;

use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::Parallelism;
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Macro validation: micro vs macro occupancy trajectories agree";

/// Configuration for E20.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes to cross-validate at (micro must be feasible).
    pub ns: Vec<u64>,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε` of the plurality.
    pub eps: f64,
    /// Whether to validate the rapid protocol as well as gossip.
    pub rapid: bool,
    /// Trials per engine per configuration.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1 << 10, 1 << 14],
            k: 2,
            eps: 0.5,
            rapid: true,
            trials: 8,
            seed: 0xE20,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 10],
            trials: 4,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            rapid: p.bool("rapid"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::bool("rapid", "also validate the rapid protocol", d.rapid).quick(q.rapid),
        ParamSpec::u64("trials", "trials per engine", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E20;

impl Experiment for E20 {
    fn id(&self) -> &'static str {
        "e20"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "macro engine: micro/macro agreement"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

fn biased_counts(n: u64, k: usize, eps: f64) -> Vec<u64> {
    let c = (n as f64 / (k as f64 + eps)).floor() as u64;
    let mut counts = vec![c; k];
    counts[0] = n - c * (k as u64 - 1);
    counts
}

/// Runs E20 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path). The
/// cross-validation harness is deliberately single-threaded (its trial
/// seeds are part of the comparison contract), so `parallelism` is unused.
pub fn run_on(cfg: &Config, _parallelism: Parallelism) -> Report {
    let mut report = Report::new("E20", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "micro vs macro mean occupancy at shared checkpoints, k = {}, eps = {}, {} trials/engine",
            cfg.k, cfg.eps, cfg.trials
        ),
        &[
            "protocol", "n", "t", "micro c1", "macro c1", "TV", "agree",
        ],
    );

    for &n in &cfg.ns {
        let mut protocols = vec![MacroProtocol::Gossip(GossipRule::TwoChoices)];
        if cfg.rapid {
            protocols.push(MacroProtocol::Rapid(Params::for_network_with_eps(
                n as usize, cfg.k, cfg.eps,
            )));
        }
        for protocol in protocols {
            let mut cv = CrossValConfig::new(n, biased_counts(n, cfg.k, cfg.eps), protocol);
            cv.trials = cfg.trials;
            cv.seed = cfg.seed ^ n;
            let result = cross_validate(&cv);
            for c in &result.checkpoints {
                table.push_row(vec![
                    protocol.name().to_string(),
                    n.to_string(),
                    format!("{:.1}", c.time),
                    format!("{:.4}", c.micro_mean[0]),
                    format!("{:.4}", c.macro_mean[0]),
                    format!("{:.4}", c.tv),
                    if c.agree { "1" } else { "0" }.to_string(),
                ]);
            }
        }
    }
    table.push_note(
        "agree = bootstrap CIs of the mean occupancy overlap for every color; \
         TV = total-variation distance between the mean occupancy vectors. \
         The macro engine simulates the same embedded chain, so both columns \
         should track within trial noise at every checkpoint",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cross_validation_agrees() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert!(!table.is_empty());
        let agree = table.column_f64("agree");
        let ok = agree.iter().filter(|&&a| a == 1.0).count();
        assert!(
            ok * 10 >= agree.len() * 9,
            "agreement below 90%: {ok}/{}",
            agree.len()
        );
        let tv = table.column_f64("TV");
        assert!(tv.iter().all(|&t| t < 0.1), "TV outlier: {tv:?}");
    }
}
