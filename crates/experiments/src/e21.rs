//! **E21 / planet scale** — time-to-plurality at `n` up to `10⁹`.
//!
//! The paper's Theorem 1.3 is an asymptotic statement; every micro engine
//! caps out near `n ≈ 10⁵`, three orders of magnitude short of where the
//! asymptotics bite. The macro engine's `O(k · levels)` state lifts the
//! ceiling: this experiment sweeps `n` to `10⁹` (and `k`), measuring
//! time-to-plurality and wall-clock per run, for asynchronous Two-Choices
//! and (optionally) the full rapid protocol. The headline shape:
//! consensus time grows like `Θ(log n)` for Two-Choices from a constant
//! multiplicative bias, and like the schedule length for rapid.

use rapid_core::facade::{EngineKind, Sim};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_macro::MacroSim;
use rapid_sim::rng::Seed;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Planet scale: macro-engine time-to-plurality up to n = 10^9";

/// Configuration for E21.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes (macro engine: 10⁹ is fine).
    pub ns: Vec<u64>,
    /// Opinion counts to sweep.
    pub ks: Vec<usize>,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Whether to run the rapid protocol alongside Two-Choices.
    pub rapid: bool,
    /// Trials per configuration.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1_000_000, 10_000_000, 100_000_000, 1_000_000_000],
            ks: vec![2, 8, 64],
            eps: 0.5,
            rapid: true,
            trials: 3,
            seed: 0xE21,
        }
    }
}

impl Config {
    /// CI-scale preset — still reaches `n = 10⁸` (the macro engine makes
    /// that cheap; the acceptance bar is one such run under a minute).
    pub fn quick() -> Self {
        Config {
            ns: vec![1_000_000, 100_000_000],
            ks: vec![2],
            rapid: false,
            trials: 2,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            ks: p.usize_list("ks"),
            eps: p.f64("eps"),
            rapid: p.bool("rapid"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::u64_list(
            "ks",
            "opinion counts",
            &d.ks.iter().map(|&k| k as u64).collect::<Vec<_>>(),
        )
        .quick(q.ks.iter().map(|&k| k as u64).collect::<Vec<_>>()),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::bool("rapid", "also run the rapid protocol", d.rapid).quick(q.rapid),
        ParamSpec::u64("trials", "trials per configuration", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E21;

impl Experiment for E21 {
    fn id(&self) -> &'static str {
        "e21"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "macro engine: scaling to n = 10^9"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

fn run_one(n: u64, k: usize, eps: f64, rapid: bool, seed: Seed) -> Option<(f64, bool, f64)> {
    // lint: allow(no-wall-clock): wall-clock throughput is the quantity this experiment measures; it never influences the run
    let wall = std::time::Instant::now();
    let mut builder = Sim::builder()
        .topology(Complete::new(n as usize))
        .distribution(InitialDistribution::multiplicative_bias(k, eps))
        .engine(EngineKind::Macro)
        .seed(seed);
    builder = if rapid {
        builder.rapid(Params::for_network_with_eps(n as usize, k, eps))
    } else {
        builder.gossip(GossipRule::TwoChoices)
    };
    let outcome = MacroSim::from_builder(builder).ok()?.run();
    let ok = outcome.converged() && outcome.winner == Some(Color::new(0));
    Some((
        outcome.time?.as_secs(),
        ok,
        wall.elapsed().as_secs_f64() * 1e3,
    ))
}

/// Runs E21 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E21", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "macro-engine runs to plurality consensus, eps = {}, {} trials",
            cfg.eps, cfg.trials
        ),
        &[
            "protocol",
            "n",
            "k",
            "time",
            "stderr",
            "time/ln(n)",
            "success",
            "wall ms",
        ],
    );

    for &n in &cfg.ns {
        for &k in &cfg.ks {
            let mut protocols = vec![false];
            if cfg.rapid {
                protocols.push(true);
            }
            for rapid in protocols {
                let results = run_trials_on(
                    cfg.trials,
                    Seed::new(cfg.seed ^ n ^ ((k as u64) << 32) ^ u64::from(rapid)),
                    parallelism,
                    move |_, seed| run_one(n, k, cfg.eps, rapid, seed),
                );
                let valid: Vec<&(f64, bool, f64)> = results.iter().flatten().collect();
                if valid.is_empty() {
                    continue;
                }
                let time: OnlineStats = valid.iter().map(|r| r.0).collect();
                let wall: OnlineStats = valid.iter().map(|r| r.2).collect();
                let success =
                    valid.iter().filter(|r| r.1).count() as f64 / results.len().max(1) as f64;
                table.push_row(vec![
                    if rapid { "rapid" } else { "async-two-choices" }.to_string(),
                    n.to_string(),
                    k.to_string(),
                    format!("{:.1}", time.mean()),
                    format!("{:.1}", time.std_err()),
                    format!("{:.2}", time.mean() / (n as f64).ln()),
                    format!("{success:.2}"),
                    format!("{:.1}", wall.mean()),
                ]);
            }
        }
    }
    table.push_note(
        "occupancy-count state is O(k * levels), so wall-clock per run is \
         essentially independent of n for gossip and grows only with the \
         schedule for rapid; time/ln(n) flattening out is the Theta(log n) \
         shape of the paper at scales no per-node engine can reach",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_run_reaches_1e8_and_time_grows_logarithmically() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert_eq!(table.len(), 2);
        let success = table.column_f64("success");
        assert!(success.iter().all(|&s| s >= 0.5), "success {success:?}");
        // time/ln(n) roughly flat across two decades of n.
        let normalised = table.column_f64("time/ln(n)");
        let ratio = normalised[1] / normalised[0];
        assert!(
            (0.4..2.5).contains(&ratio),
            "Theta(log n) shape violated: {normalised:?}"
        );
    }
}
