//! **E22 / bias threshold at scale** — the `√(n log n)` phase transition.
//!
//! Theorem 1.1's lower-bound companion (experiment E3) shows that at an
//! additive gap of order `√n`, Two-Choices picks the runner-up with
//! constant probability — but at micro-feasible `n` the constants blur
//! the transition. The macro engine sharpens it: at `n = 10⁶–10⁸`, sweep
//! the initial gap `c₁ − c₂ = z·√(n ln n)` and measure the plurality's
//! win probability. The transition from coin-flip (`z = 0`) to
//! near-certainty should tighten around `z ≈ 1` as `n` grows — a
//! prediction about the large-`n` limit that only a population-level
//! engine can test, and whose tie-breaking fidelity rests on the exact
//! single-event fallback.

use rapid_core::facade::{EngineKind, Sim};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_macro::MacroSim;
use rapid_sim::rng::Seed;

use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Phase transition: initial bias vs the sqrt(n log n) threshold at large n";

/// Configuration for E22.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Gap multipliers `z` (gap = `z · √(n ln n)`).
    pub zs: Vec<f64>,
    /// Trials per (n, z).
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1_000_000, 100_000_000],
            zs: vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0],
            trials: 24,
            seed: 0xE22,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1_000_000],
            zs: vec![0.0, 1.0, 4.0],
            trials: 8,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            zs: p.f64_list("zs"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::f64_list("zs", "gap multipliers of sqrt(n ln n)", &d.zs).quick(q.zs),
        ParamSpec::u64("trials", "trials per (n, z)", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E22;

impl Experiment for E22 {
    fn id(&self) -> &'static str {
        "e22"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "macro engine: bias threshold at scale"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

fn run_one(n: u64, z: f64, seed: Seed) -> Option<bool> {
    let gap = (z * (n as f64 * (n as f64).ln()).sqrt()).round() as u64;
    let c0 = n / 2 + gap / 2;
    let counts = [c0, n - c0];
    let mut sim = MacroSim::from_builder(
        Sim::builder()
            .topology(Complete::new(n as usize))
            .counts(&counts)
            .gossip(GossipRule::TwoChoices)
            .engine(EngineKind::Macro)
            .seed(seed),
    )
    .ok()?;
    let outcome = sim.run();
    Some(outcome.converged() && outcome.winner == Some(Color::new(0)))
}

/// Runs E22 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path).
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E22", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "async Two-Choices (macro engine), gap = z * sqrt(n ln n), {} trials",
            cfg.trials
        ),
        &["n", "z", "gap", "P(C1 wins)", "trials"],
    );

    for &n in &cfg.ns {
        for &z in &cfg.zs {
            let gap = (z * (n as f64 * (n as f64).ln()).sqrt()).round() as u64;
            let results = run_trials_on(
                cfg.trials,
                Seed::new(cfg.seed ^ n ^ (z * 4096.0) as u64),
                parallelism,
                move |_, seed| run_one(n, z, seed),
            );
            let wins = results.iter().flatten().filter(|&&w| w).count();
            table.push_row(vec![
                n.to_string(),
                format!("{z}"),
                gap.to_string(),
                format!("{:.2}", wins as f64 / results.len().max(1) as f64),
                cfg.trials.to_string(),
            ]);
        }
    }
    table.push_note(
        "at z = 0 the initial tie makes the winner a coin flip; beyond the \
         sqrt(n ln n) scale the initial drift dominates the diffusive noise \
         and the plurality wins with probability -> 1. Tie-breaking fidelity \
         comes from the exact single-event fallback of the macro engine",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_brackets_the_threshold() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert_eq!(table.len(), 3);
        let p = table.column_f64("P(C1 wins)");
        // z = 0: a fair coin (loose bounds at 8 trials); z = 4: certain.
        assert!(p[0] <= 0.95, "tie must not be deterministic: {}", p[0]);
        assert!(p[2] >= 0.9, "huge bias must win: {}", p[2]);
        assert!(p[2] >= p[0], "monotone in z: {p:?}");
    }
}
