//! **E23 / deployment vs micro engine** — the simulator-as-oracle
//! agreement check.
//!
//! The `rapid-net` runtime runs the protocols for real: per-node state
//! machines, serialized frames, a transport. This experiment is the
//! standing evidence that the implementation and the micro simulation
//! are the *same process*: matched trial sets on the deterministic
//! channel transport must agree with micro trials on the winner, and
//! the activation count at unanimity must land inside the micro
//! distribution (bootstrap-CI overlap) — for the gossip rules and for
//! the full rapid protocol.

use rapid_core::facade::MacroProtocol;
use rapid_core::prelude::*;
use rapid_net::oracle::{validate_against_micro, OracleConfig};
use rapid_sim::rng::Seed;

use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::Parallelism;
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Simulator as oracle: channel deployment agrees with the micro engine";

/// Configuration for E23.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Trials per engine per protocol.
    pub trials: u64,
    /// Bootstrap resamples for the step-count CIs.
    pub resamples: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 10,
            trials: 8,
            resamples: 500,
            seed: 0xE23,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 256,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            trials: p.u64("trials"),
            resamples: p.u64("resamples"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64("trials", "trials per engine per protocol", d.trials).quick(q.trials),
        ParamSpec::u64("resamples", "bootstrap resamples per CI", d.resamples).quick(q.resamples),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E23;

impl Experiment for E23 {
    fn id(&self) -> &'static str {
        "e23"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "rapid-net: deployment matches micro"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, _parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run(&cfg)
    }
}

/// The protocol rows the oracle compares.
fn protocols(n: u64) -> Vec<(&'static str, MacroProtocol)> {
    vec![
        ("two-choices", MacroProtocol::Gossip(GossipRule::TwoChoices)),
        (
            "3-majority",
            MacroProtocol::Gossip(GossipRule::ThreeMajority),
        ),
        (
            "rapid",
            MacroProtocol::Rapid(Params::for_network_with_eps(n as usize, 2, 0.5)),
        ),
    ]
}

/// Runs E23 and returns its report.
pub fn run(cfg: &Config) -> Report {
    let mut report = Report::new("E23", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "channel deployment vs micro engine, n = {}, 60/40 split, {} trials per engine",
            cfg.n, cfg.trials
        ),
        &[
            "protocol",
            "winner agreement",
            "micro steps",
            "net steps",
            "CIs overlap",
        ],
    );

    let c0 = cfg.n * 3 / 5;
    for (name, protocol) in protocols(cfg.n) {
        let mut oracle = OracleConfig::new(cfg.n as usize, vec![c0, cfg.n - c0], protocol);
        oracle.trials = cfg.trials;
        oracle.seed = cfg.seed;
        oracle.resamples = cfg.resamples as usize;
        let r = validate_against_micro(&oracle);
        table.push_row(vec![
            name.to_string(),
            format!("{:.2}", r.winner_agreement),
            format!(
                "{:.0} [{:.0}, {:.0}]",
                r.micro_mean_steps, r.micro_ci.0, r.micro_ci.1
            ),
            format!(
                "{:.0} [{:.0}, {:.0}]",
                r.net_mean_steps, r.net_ci.0, r.net_ci.1
            ),
            if r.steps_agree { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.push_note(
        "every row runs real state machines exchanging serialized frames over \
         the deterministic channel transport; agreement on winner and on the \
         activation count at unanimity is the oracle contract that pins the \
         implementation to the simulated process",
    );
    table.push_note(
        "the voter rule is deliberately absent: it converges to each color \
         with probability equal to its initial share, so two independent \
         trial sets agreeing on the winner is not part of its contract",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_preset_agrees_on_every_protocol() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert_eq!(table.len(), 3);
        for a in table.column_f64("winner agreement") {
            assert!(a >= 0.75, "winner agreement too low: {a}");
        }
        for row in table.column("CIs overlap") {
            assert_eq!(row, "yes");
        }
    }
}
