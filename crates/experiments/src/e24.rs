//! **E24 / UDP loopback deployment** — plurality consensus over real
//! datagrams.
//!
//! The strongest form of "the protocol is implementable as stated": boot
//! `n` node machines over real non-blocking `UdpSocket`s on loopback —
//! worker threads, bounded drop-on-full outboxes, datagrams that can
//! genuinely be lost — and watch the population converge and detect its
//! own convergence through the gossiped termination beacon. Message loss
//! here is *real* (kernel buffers, not a sampled fault), which is
//! exactly the asynchrony the paper's protocol is designed to shrug off.
//!
//! Sandboxed runners may forbid socket creation; the experiment then
//! reports the skip instead of failing, and the module test that binds
//! sockets is `#[ignore]`-gated.

use rapid_net::cli::{execute, RunOpts, TransportKind};
use rapid_sim::rng::Seed;

use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{Parallelism, Workers};
use crate::table::Table;

/// The protocols every run deploys.
const PROTOCOLS: [&str; 2] = ["two-choices", "rapid"];

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Real deployment: UDP loopback cluster converges end to end";

/// Configuration for E24.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Trials per protocol.
    pub trials: u64,
    /// Worker threads (0 = one per core).
    pub workers: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 256,
            trials: 4,
            workers: 0,
            seed: 0xE24,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            n: 128,
            trials: 2,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            n: p.u64("n"),
            trials: p.u64("trials"),
            workers: p.u64("workers"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64("n", "population size", d.n).quick(q.n),
        ParamSpec::u64("trials", "trials per protocol", d.trials).quick(q.trials),
        ParamSpec::u64("workers", "udp worker threads (0 = auto)", d.workers),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E24;

impl Experiment for E24 {
    fn id(&self) -> &'static str {
        "e24"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "rapid-net: UDP loopback convergence"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, _parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run(&cfg)
    }
}

/// Runs E24 and returns its report.
pub fn run(cfg: &Config) -> Report {
    let mut report = Report::new("E24", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "UDP loopback deployment, n = {}, {} trials",
            cfg.n, cfg.trials
        ),
        &[
            "protocol",
            "trial",
            "converged",
            "steps",
            "dropped frames",
            "wall ms",
        ],
    );

    let mut skipped = false;
    for protocol in PROTOCOLS {
        for trial in 0..cfg.trials {
            let opts = RunOpts {
                n: cfg.n as usize,
                protocol: protocol.to_string(),
                transport: TransportKind::Udp,
                seed: cfg.seed ^ (trial + 1),
                parallelism: Parallelism {
                    trial_workers: Workers::fixed(cfg.workers as usize),
                    ..Parallelism::default()
                },
                ..RunOpts::default()
            };
            match execute(&opts) {
                Ok(run) => table.push_row(vec![
                    protocol.to_string(),
                    trial.to_string(),
                    run.outcome.converged().to_string(),
                    run.outcome.steps.to_string(),
                    run.dropped_frames.to_string(),
                    format!("{:.1}", run.wall_ms),
                ]),
                Err(e) => {
                    // Sockets unavailable (sandboxed runner): report the
                    // skip; convergence is still covered by e23's channel
                    // transport and by the ignored loopback test.
                    skipped = true;
                    table.push_row(vec![
                        protocol.to_string(),
                        trial.to_string(),
                        format!("skipped ({e})"),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
            }
        }
    }
    table.push_note(
        "every trial binds real non-blocking UDP sockets on 127.0.0.1 and runs \
         one thread per core; frames the kernel or a full outbox drops are \
         genuinely lost, and the run ends when the gossiped termination beacon \
         has reached every node",
    );
    if skipped {
        table.push_note("some trials were skipped: this runner forbids socket creation");
    }
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_preset_has_the_expected_shape() {
        // Socket-free shape check: config plumbing and schema round-trip.
        let map = ParamMap::defaults(&schema());
        assert_eq!(Config::from_params(&map), Config::default());
    }

    #[test]
    fn skipped_rows_render_when_sockets_are_forbidden() {
        // Runs everywhere: on hosts that allow sockets every row
        // converges; on sandboxed runners every row must still render as
        // a `skipped (...)` row rather than aborting the report. The UDP
        // obs gauges ride the same path and must not change this.
        let report = run(&Config {
            trials: 1,
            ..Config::quick()
        });
        let table = &report.tables[0];
        assert_eq!(table.len(), PROTOCOLS.len());
        for c in table.column("converged") {
            assert!(
                c == "true" || c == "false" || c.starts_with("skipped ("),
                "unexpected converged cell {c:?}"
            );
        }
    }

    #[test]
    #[ignore = "binds many loopback UDP sockets; run explicitly on hosts that allow it"]
    fn loopback_deployment_converges() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        assert_eq!(table.len(), 4);
        for c in table.column("converged") {
            assert_eq!(c, "true");
        }
    }
}
