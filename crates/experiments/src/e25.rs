//! **E25 / sharded scale-out** — the epoch-sharded micro engine past
//! `10⁶` nodes.
//!
//! PR 8's sharded engine partitions nodes across worker shards and
//! advances the global Poisson clock in deterministic τ-sized epochs,
//! with per-(epoch, node) RNG streams making the outcome bit-identical
//! under any shard count. This experiment is its scaling showcase: full
//! per-node runs at `n` up to `10⁷` — an order of magnitude past where
//! the activation-at-a-time engines are practical — on Erdős–Rényi,
//! random-regular and torus graphs as well as the clique. On the clique
//! the same assembly also runs through the macro (population) engine,
//! re-validating micro-vs-macro agreement at scale: the two consensus
//! times must agree to within a small constant factor.

use rapid_core::facade::{EngineKind, Sim};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_graph::{ErdosRenyi, RandomRegular, Torus2d};
use rapid_macro::MacroSim;
use rapid_sim::prelude::*;
use rapid_stats::OnlineStats;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Sharded scale-out: per-node runs to n = 10^7 across topologies";

/// Configuration for E25.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes (tori round down to a square side).
    pub ns: Vec<u64>,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Whether to run the full rapid protocol alongside Two-Choices.
    pub rapid: bool,
    /// Trials per cell (per-node runs at 10⁷ are heavyweight).
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1_000_000, 10_000_000],
            k: 2,
            eps: 0.5,
            rapid: true,
            trials: 1,
            seed: 0xE25,
        }
    }
}

impl Config {
    /// CI-scale preset: gossip only, one small size, still covering a
    /// random and the complete topology (the latter carries the
    /// micro-vs-macro cross-check).
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 14],
            rapid: false,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            rapid: p.bool("rapid"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list(
            "ns",
            "population sizes (tori round down to a square side)",
            &d.ns,
        )
        .quick(q.ns),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead", d.eps).quick(q.eps),
        ParamSpec::bool("rapid", "also run the rapid protocol", d.rapid).quick(q.rapid),
        ParamSpec::u64("trials", "trials per cell", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E25;

impl Experiment for E25 {
    fn id(&self) -> &'static str {
        "e25"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "sharded micro engine: scaling to n = 10^7"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        run_on(&cfg, parallelism)
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Topo {
    ErdosRenyi,
    Regular,
    Torus,
    Clique,
}

impl Topo {
    fn label(self) -> &'static str {
        match self {
            Topo::ErdosRenyi => "G(n, 2 ln n / n)",
            Topo::Regular => "random-regular(d~log n)",
            Topo::Torus => "torus",
            Topo::Clique => "complete",
        }
    }

    /// A small per-topology tag for cell-seed derivation.
    fn tag(self) -> u64 {
        match self {
            Topo::ErdosRenyi => 1,
            Topo::Regular => 2,
            Topo::Torus => 3,
            Topo::Clique => 4,
        }
    }
}

/// One sharded micro run; returns (consensus time, steps, plurality won,
/// wall ms).
#[allow(clippy::too_many_arguments)]
fn run_one(
    topo: Topo,
    n: usize,
    k: usize,
    eps: f64,
    rapid: bool,
    counts: &[u64],
    seed: Seed,
    parallelism: Parallelism,
) -> Option<(f64, u64, bool, f64)> {
    // lint: allow(no-wall-clock): wall-clock throughput is part of what this experiment reports; it never influences the run
    let wall = std::time::Instant::now();
    let side = (n as f64).sqrt() as usize;
    let topology: rapid_core::facade::BoxedTopology = match topo {
        Topo::Clique => Box::new(Complete::new(n)),
        // Children 0–7 are the facade's registered streams; sample graph
        // structure from disjoint experiment-local ones so topology and
        // protocol randomness stay independent (same split as E14).
        Topo::Regular => {
            let d = ((n as f64).ln().ceil() as usize) | 1;
            Box::new(
                // lint: allow(rng-stream-registry): experiment-local topology-sampling stream, disjoint from the registry by construction
                // lint: allow(panic-hygiene): n and d are drawn from the experiment grid, which only contains even stub counts
                RandomRegular::sample(n, d.min(n - 1), seed.child(20)).expect("even stub count"),
            )
        }
        Topo::ErdosRenyi => {
            let p = 2.0 * (n as f64).ln() / n as f64;
            // lint: allow(rng-stream-registry): experiment-local topology-sampling stream, disjoint from the registry by construction
            Box::new(ErdosRenyi::sample(n, p.min(1.0), seed.child(21)))
        }
        Topo::Torus => Box::new(Torus2d::new(side, side)),
    };
    let builder = Sim::builder()
        .boxed_topology(topology)
        .counts(counts)
        .shuffle(true)
        .parallelism(parallelism)
        .seed(seed);
    let builder = if rapid {
        builder.rapid(Params::for_network_with_eps(n, k, eps))
    } else {
        builder.gossip(GossipRule::TwoChoices)
    };
    // lint: allow(panic-hygiene): inputs are fixed by the experiment definition; build failure is a programming error
    let outcome = builder.build().expect("validated").run();
    let won = outcome.converged() && outcome.winner == Some(Color::new(0));
    Some((
        outcome.time?.as_secs(),
        outcome.steps,
        won,
        wall.elapsed().as_secs_f64() * 1e3,
    ))
}

/// The macro-engine consensus time for the same clique assembly, the
/// micro-vs-macro cross-check (complete graph only — the population
/// engine has no notion of structure).
fn macro_time(
    n: usize,
    counts: &[u64],
    k: usize,
    eps: f64,
    rapid: bool,
    seed: Seed,
) -> Option<f64> {
    let builder = Sim::builder()
        .topology(Complete::new(n))
        .counts(counts)
        .engine(EngineKind::Macro)
        .seed(seed);
    let builder = if rapid {
        builder.rapid(Params::for_network_with_eps(n, k, eps))
    } else {
        builder.gossip(GossipRule::TwoChoices)
    };
    let outcome = MacroSim::from_builder(builder).ok()?.run();
    if !outcome.converged() {
        return None;
    }
    Some(outcome.time?.as_secs())
}

/// Runs E25 and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_on(cfg, Parallelism::default())
}

/// [`run`] with an explicit worker policy (the registry path). The
/// `shard_workers` axis is forwarded into every sharded build; the
/// `trial_workers` axis spreads trials, as everywhere else.
pub fn run_on(cfg: &Config, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E25", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "sharded micro engine across topologies, k = {}, eps = {}, {} trials",
            cfg.k, cfg.eps, cfg.trials
        ),
        &[
            "topology",
            "protocol",
            "n",
            "time",
            "steps/n",
            "success",
            "wall ms",
            "macro time",
        ],
    );

    for &n in &cfg.ns {
        for topo in [Topo::ErdosRenyi, Topo::Regular, Topo::Torus, Topo::Clique] {
            let side = (n as f64).sqrt() as usize;
            let actual_n = match topo {
                Topo::Torus => side * side,
                _ => n as usize,
            };
            let Ok(counts) =
                InitialDistribution::multiplicative_bias(cfg.k, cfg.eps).counts(actual_n as u64)
            else {
                continue;
            };
            let mut protocols = vec![false];
            if cfg.rapid {
                protocols.push(true);
            }
            for rapid in protocols {
                let master = Seed::new(cfg.seed ^ n ^ (topo.tag() << 32) ^ u64::from(rapid));
                let results = run_trials_on(cfg.trials, master, parallelism, {
                    let counts = counts.clone();
                    move |_, seed| {
                        run_one(
                            topo,
                            actual_n,
                            cfg.k,
                            cfg.eps,
                            rapid,
                            &counts,
                            seed,
                            parallelism,
                        )
                    }
                });
                let valid: Vec<&(f64, u64, bool, f64)> = results.iter().flatten().collect();
                if valid.is_empty() {
                    continue;
                }
                let time: OnlineStats = valid.iter().map(|r| r.0).collect();
                let wall: OnlineStats = valid.iter().map(|r| r.3).collect();
                let success =
                    valid.iter().filter(|r| r.2).count() as f64 / results.len().max(1) as f64;
                let steps_per_n = valid.iter().map(|r| r.1).sum::<u64>() as f64
                    / valid.len() as f64
                    / actual_n as f64;
                let macro_col = if topo == Topo::Clique {
                    macro_time(actual_n, &counts, cfg.k, cfg.eps, rapid, master.child(30))
                        .map_or("-".to_string(), |t| format!("{t:.1}"))
                } else {
                    "-".to_string()
                };
                table.push_row(vec![
                    topo.label().to_string(),
                    if rapid { "rapid" } else { "async-two-choices" }.to_string(),
                    actual_n.to_string(),
                    format!("{:.1}", time.mean()),
                    format!("{steps_per_n:.1}"),
                    format!("{success:.2}"),
                    format!("{:.1}", wall.mean()),
                    macro_col,
                ]);
            }
        }
    }
    table.push_note(
        "per-node runs through the epoch-sharded engine (deterministic under \
         any shard count); the complete-graph rows also run the macro \
         (population) engine on the identical assembly — micro and macro \
         consensus times agreeing to a small constant factor is the \
         cross-validation, now at scales the sequential micro engines \
         cannot reach",
    );
    report.push_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_topologies_and_macro_agrees() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        // Four topologies, gossip only.
        assert_eq!(table.len(), 4);
        let success = table.column_f64("success");
        assert!(
            success.iter().all(|&s| s >= 0.5),
            "plurality should win from eps = 0.5: {success:?}"
        );
        // The clique row carries the micro-vs-macro cross-check: both
        // engines' consensus times are Theta(log n) with constants close
        // enough that a 2.5x band is comfortable.
        let times = table.column_f64("time");
        let macros = table.column_f64("macro time");
        let micro = times.last().expect("clique row");
        let macro_t = macros.last().expect("clique row");
        assert!(*macro_t > 0.0, "macro run must converge");
        let ratio = micro / macro_t;
        assert!(
            (1.0 / 2.5..=2.5).contains(&ratio),
            "micro {micro} vs macro {macro_t}: ratio {ratio}"
        );
    }

    #[test]
    fn sharded_rows_are_shard_count_invariant() {
        // The same quick cell through 1 and 4 shard workers produces the
        // identical report — the engine's bit-identity surfaced at the
        // experiment level.
        let cfg = Config {
            ns: vec![1 << 10],
            ..Config::quick()
        };
        let one = run_on(&cfg, Parallelism::parse("1x1").expect("valid"));
        let four = run_on(&cfg, Parallelism::parse("1x4").expect("valid"));
        // Everything except wall-clock must match exactly.
        for col in ["topology", "protocol", "n", "time", "steps/n", "success"] {
            assert_eq!(
                one.tables[0].column(col),
                four.tables[0].column(col),
                "column {col} diverged across shard counts"
            );
        }
    }
}
