//! **E26** — phase-transition portrait: the rapid protocol's per-phase
//! bias amplification, measured from the obs layer's trace.
//!
//! Claim: each part-1 phase first seeds opinions via Two-Choices (seed
//! fractions ∝ x²) and then grows the seeds as a Pólya urn whose final
//! composition is a martingale — so the leader's fraction at the *next*
//! phase boundary is predicted by `rapid_urn::moments::fraction_mean`
//! over the seed counts, with `fraction_variance` as the error bar. This
//! experiment attaches an [`ObsObserver`] to micro rapid runs on the
//! clique, reads the phase-entry occupancy samples back off the trace,
//! and checks the measured amplification against the urn-moment
//! prediction within a bootstrap confidence interval.
//!
//! This is the trace-driven twin of the macro engine's mean-field
//! amplification map (`rapid_macro::meanfield`): same recipe, but the
//! fractions come out of a real stochastic run's trace stream instead of
//! an ODE/urn iteration.

use std::collections::BTreeMap;
use std::sync::Arc;

use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_obs::{Obs, TraceEvent, TraceRecord};
use rapid_sim::prelude::*;
use rapid_stats::bootstrap_ci;

use crate::distributions::InitialDistribution;
use crate::experiment::Experiment;
use crate::params::{ParamMap, ParamSchema, ParamSpec};
use crate::report::Report;
use crate::runner::{run_trials_on, Parallelism};
use crate::table::Table;

/// Report title (also the registry's [`Experiment::title`]).
const TITLE: &str = "Phase portrait: per-phase amplification matches the urn moments";

/// Absolute tolerance added on top of the urn spread: the asynchronous
/// protocol's phases overlap across nodes (each node crosses a boundary
/// at its own working time), so the population at the *median* crossing
/// mixes adjacent phases. The mean-field/urn prediction ignores that
/// mixing; a few percent of absolute slack absorbs it.
const PHASE_MIX_SLACK: f64 = 0.03;

/// Configuration for E26.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Number of opinions.
    pub k: usize,
    /// Multiplicative lead `ε`.
    pub eps: f64,
    /// Traced trials per n.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![1 << 14, 1 << 16],
            k: 4,
            eps: 0.5,
            trials: 5,
            seed: 0xE26,
        }
    }
}

impl Config {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 10, 1 << 11],
            trials: 3,
            ..Config::default()
        }
    }

    /// Rebuilds a typed config from a validated [`ParamMap`].
    pub fn from_params(p: &ParamMap) -> Config {
        Config {
            ns: p.u64_list("ns"),
            k: p.usize("k"),
            eps: p.f64("eps"),
            trials: p.u64("trials"),
            seed: p.u64("seed"),
        }
    }
}

/// Declarative schema mirroring [`Config`].
fn schema() -> ParamSchema {
    let d = Config::default();
    let q = Config::quick();
    ParamSchema::new(vec![
        ParamSpec::u64_list("ns", "population sizes", &d.ns).quick(q.ns),
        ParamSpec::u64("k", "number of opinions", d.k as u64).quick(q.k as u64),
        ParamSpec::f64("eps", "multiplicative lead of the plurality", d.eps).quick(q.eps),
        ParamSpec::u64("trials", "traced trials per n", d.trials).quick(q.trials),
        ParamSpec::u64("seed", "master seed", d.seed).quick(q.seed),
    ])
}

/// Registry entry for this experiment.
pub struct E26;

impl Experiment for E26 {
    fn id(&self) -> &'static str {
        "e26"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn claim(&self) -> &'static str {
        "Thm 1.3 (phase amplification)"
    }
    fn params(&self) -> ParamSchema {
        schema()
    }
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        // The untraced path still needs a trace buffer to read phase
        // entries back from; it is private to the run and dropped after.
        run_portrait(&cfg, &Obs::new(), parallelism)
    }
    fn run_traced(
        &self,
        params: &ParamMap,
        seed: Seed,
        parallelism: Parallelism,
        obs: &Arc<Obs>,
    ) -> Option<Report> {
        let mut cfg = Config::from_params(params);
        cfg.seed = seed.value();
        Some(run_portrait(&cfg, obs, parallelism))
    }
}

/// Runs E26 with a private trace buffer and returns its report.
pub fn run(cfg: &Config) -> Report {
    run_portrait(cfg, &Obs::new(), Parallelism::default())
}

/// The occupancy fractions observed at entry into one phase
/// (`phase == phases` is part 2, the endgame).
struct PhaseEntry {
    phase: u64,
    fractions: Vec<f64>,
}

/// Decodes one trial's stream into its phase-entry points: the first
/// occupancy sample at or after each [`TraceEvent::PhaseEnter`].
fn phase_entries(records: &[TraceRecord]) -> Vec<PhaseEntry> {
    let mut entries = Vec::new();
    let mut pending: Option<u64> = None;
    for record in records {
        match &record.event {
            TraceEvent::PhaseEnter { phase, .. } => pending = Some(*phase),
            TraceEvent::OccupancySample { counts, .. } => {
                if let Some(phase) = pending.take() {
                    let total: u64 = counts.iter().sum();
                    if total > 0 {
                        entries.push(PhaseEntry {
                            phase,
                            fractions: counts.iter().map(|&c| c as f64 / total as f64).collect(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    entries
}

/// The urn-moment prediction for the fractions at the next phase
/// boundary, given the fractions `x` at this one: Two-Choices commits
/// seed counts ∝ x²·n, Bit-Propagation grows them as a Pólya urn, so the
/// expected next fraction per color is `fraction_mean` (normalised) and
/// its spread is `fraction_variance.sqrt()` — the same recipe as the
/// macro engine's mean-field amplification map.
fn predict_next(x: &[f64], n: u64) -> Option<(Vec<f64>, Vec<f64>)> {
    let seed_counts: Vec<u64> = x
        .iter()
        .map(|&f| (((f * f) * n as f64).round() as u64).max(u64::from(f > 0.0)))
        .collect();
    let total_seeds: u64 = seed_counts.iter().sum();
    if total_seeds == 0 {
        return None;
    }
    let growth = n.saturating_sub(total_seeds);
    let mut next = vec![0.0; x.len()];
    let mut std_dev = vec![0.0; x.len()];
    for (j, &a) in seed_counts.iter().enumerate() {
        let b = total_seeds - a;
        if a == 0 {
            continue;
        }
        next[j] = rapid_urn::moments::fraction_mean(a, b);
        std_dev[j] = rapid_urn::moments::fraction_variance(a, b, growth).sqrt();
    }
    let sum: f64 = next.iter().sum();
    if sum <= 0.0 {
        return None;
    }
    for f in &mut next {
        *f /= sum;
    }
    Some((next, std_dev))
}

/// One measured amplification step across a phase boundary.
struct AmpSample {
    entry: f64,
    measured: f64,
    predicted: f64,
    urn_std: f64,
}

/// Runs the portrait: traced micro rapid runs per n, phase-entry
/// extraction, per-phase bootstrap check against the urn prediction.
fn run_portrait(cfg: &Config, obs: &Arc<Obs>, parallelism: Parallelism) -> Report {
    let mut report = Report::new("E26", TITLE, cfg.seed);
    let mut table = Table::new(
        format!(
            "phase portrait on K_n, k = {}, eps = {}: measured vs urn-predicted amplification",
            cfg.k, cfg.eps
        ),
        &[
            "n", "phase", "x_entry", "amp", "amp_pred", "ci_lo", "ci_hi", "urn_std", "ok",
        ],
    );

    for &n in &cfg.ns {
        let counts = match InitialDistribution::multiplicative_bias(cfg.k, cfg.eps).counts(n) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let params = Params::for_network_with_eps(n as usize, cfg.k, cfg.eps);

        let results = run_trials_on(cfg.trials, Seed::new(cfg.seed ^ (n << 4)), parallelism, {
            let counts = counts.clone();
            let obs = Arc::clone(obs);
            move |trial, seed| {
                let stream = format!("e26/n={n}/t={trial}");
                let mut observer = ObsObserver::new(Arc::clone(&obs), &stream)
                    .with_schedule(Schedule::new(params));
                Sim::builder()
                    .topology(Complete::new(n as usize))
                    .counts(&counts)
                    .rapid(params)
                    .seed(seed)
                    .build()
                    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
                    .expect("validated")
                    .run_with(&mut [&mut observer]);
                let records: Vec<TraceRecord> = obs
                    .trace
                    .records()
                    .into_iter()
                    .filter(|r| r.stream == stream)
                    .collect();
                phase_entries(&records)
            }
        });

        // Group amplification steps by the phase they measure: the pair
        // (entry j, entry j+1) reflects phase j's seed-and-grow cycle.
        let mut per_phase: BTreeMap<u64, Vec<AmpSample>> = BTreeMap::new();
        for entries in &results {
            for pair in entries.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if b.phase != a.phase + 1 || a.fractions.len() != b.fractions.len() {
                    continue;
                }
                let lead = a
                    .fractions
                    .iter()
                    .enumerate()
                    .max_by(|p, q| p.1.total_cmp(q.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                let Some((next, std_dev)) = predict_next(&a.fractions, n) else {
                    continue;
                };
                per_phase.entry(a.phase).or_default().push(AmpSample {
                    entry: a.fractions[lead],
                    measured: b.fractions[lead],
                    predicted: next[lead],
                    urn_std: std_dev[lead],
                });
            }
        }

        let mut rng = SimRng::from_seed_value(Seed::new(cfg.seed ^ n));
        for (phase, samples) in &per_phase {
            let entry = mean(samples.iter().map(|s| s.entry));
            let predicted = mean(samples.iter().map(|s| s.predicted));
            let urn_std = mean(samples.iter().map(|s| s.urn_std));
            let measured: Vec<f64> = samples.iter().map(|s| s.measured).collect();
            let ci = bootstrap_ci(
                &measured,
                |s| s.iter().sum::<f64>() / s.len() as f64,
                1000,
                0.95,
                &mut rng,
            );
            let tolerance = 3.0 * urn_std + PHASE_MIX_SLACK;
            let ok = predicted >= ci.lo - tolerance && predicted <= ci.hi + tolerance;
            table.push_row(vec![
                n.to_string(),
                phase.to_string(),
                format!("{entry:.4}"),
                format!("{:.3}", ci.estimate / entry),
                format!("{:.3}", predicted / entry),
                format!("{:.4}", ci.lo),
                format!("{:.4}", ci.hi),
                format!("{urn_std:.4}"),
                u64::from(ok).to_string(),
            ]);
        }
    }

    table.push_note(
        "amp = mean measured x_lead(j+1)/x_lead(j); amp_pred from urn moments over x^2 seeds",
    );
    table.push_note(format!(
        "ok = urn prediction inside the 95% bootstrap CI widened by 3*urn_std + {PHASE_MIX_SLACK} \
         (async phase-mixing slack)"
    ));
    report.push_table(table);
    report
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut count) = (0.0, 0u64);
    for v in it {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_portrait_matches_the_urn_prediction() {
        let report = run(&Config::quick());
        let table = &report.tables[0];
        let ok = table.column_f64("ok");
        assert!(ok.len() >= 2, "at least two phase rows: {table}");
        assert!(
            ok.iter().all(|&v| v == 1.0),
            "every phase within tolerance: {table}"
        );
    }

    #[test]
    fn phase_entries_decode_enter_then_occupancy() {
        let recs = vec![
            TraceRecord {
                stream: "s".into(),
                seq: 0,
                event: TraceEvent::PhaseEnter {
                    phase: 0,
                    time: 1.0,
                },
            },
            TraceRecord {
                stream: "s".into(),
                seq: 1,
                event: TraceEvent::OccupancySample {
                    time: 1.0,
                    counts: vec![60, 40],
                },
            },
            // A later sample without a fresh PhaseEnter is not an entry.
            TraceRecord {
                stream: "s".into(),
                seq: 2,
                event: TraceEvent::OccupancySample {
                    time: 2.0,
                    counts: vec![70, 30],
                },
            },
        ];
        let entries = phase_entries(&recs);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].phase, 0);
        assert!((entries[0].fractions[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn prediction_amplifies_a_biased_two_color_split() {
        let (next, std) = predict_next(&[0.6, 0.4], 1 << 12).expect("predicts");
        assert!(next[0] > 0.6, "the leader amplifies: {next:?}");
        assert!((next[0] + next[1] - 1.0).abs() < 1e-9);
        assert!(std[0] > 0.0 && std[0] < 0.1);
    }
}
