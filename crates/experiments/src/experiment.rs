//! The first-class experiment abstraction behind the `xp` CLI.
//!
//! Every paper experiment (`e01`–`e16`) implements [`Experiment`]: a
//! stable id, a human title, the paper claim it validates, a declarative
//! [`ParamSchema`] and a `run` that turns a validated [`ParamMap`] into a
//! [`Report`]. The static [`crate::registry::registry`] collects them all
//! so callers (the CLI, the integration tests, future sweep drivers) can
//! enumerate and drive every experiment uniformly, without naming any
//! concrete module.

use std::sync::Arc;

use rapid_obs::Obs;
use rapid_sim::rng::Seed;

use crate::params::{ParamMap, ParamSchema, Preset};
use crate::report::Report;
use crate::runner::Parallelism;

/// One reproducible experiment from the paper.
///
/// Implementations are zero-sized registry entries; all state arrives
/// through the [`ParamMap`]. The map is validated against
/// [`Experiment::params`] before `run` is called, so `run` itself is
/// infallible: typed getters cannot miss.
pub trait Experiment: Sync {
    /// Stable lower-case id (`"e06"`), the CLI handle.
    fn id(&self) -> &'static str;

    /// Human-readable title: the claim being validated.
    fn title(&self) -> &'static str;

    /// The paper anchor (theorem / section) this experiment reproduces.
    fn claim(&self) -> &'static str;

    /// The declarative parameter schema (defaults + quick presets).
    fn params(&self) -> ParamSchema;

    /// Runs the experiment. `seed` overrides the map's `seed` parameter
    /// as the master seed; `parallelism.trial_workers` bounds
    /// `run_trials` workers and `parallelism.shard_workers` is forwarded
    /// to sharded micro runs where the experiment uses them.
    fn run(&self, params: &ParamMap, seed: Seed, parallelism: Parallelism) -> Report;

    /// A parameter map initialised from `preset`.
    fn preset(&self, preset: Preset) -> ParamMap {
        ParamMap::preset(&self.params(), preset)
    }

    /// Runs a *traced* variant of the experiment with observability
    /// attached: events land on `obs`'s trace buffer (stream names are
    /// experiment-chosen, conventionally `"<id>/n=<n>"`) and the returned
    /// report summarises the traced runs. Experiments without a traced
    /// variant return `None` — `xp trace` maps that to a typed CLI error.
    ///
    /// Tracing never perturbs the dynamics: observers read progress
    /// snapshots only and have no path to any RNG stream.
    fn run_traced(
        &self,
        params: &ParamMap,
        seed: Seed,
        parallelism: Parallelism,
        obs: &Arc<Obs>,
    ) -> Option<Report> {
        let _ = (params, seed, parallelism, obs);
        None
    }

    /// Runs with the map's own `seed` parameter unless `seed_override`
    /// is given — the CLI's `--seed` semantics.
    fn run_map(
        &self,
        params: &ParamMap,
        seed_override: Option<u64>,
        parallelism: Parallelism,
    ) -> Report {
        let seed = seed_override.unwrap_or_else(|| params.u64("seed"));
        self.run(params, Seed::new(seed), parallelism)
    }
}
