//! A minimal JSON value type, writer and parser.
//!
//! The experiment reports need machine-readable output, but this workspace
//! builds with no external dependencies, so this module implements the
//! small JSON subset the reports use: objects, arrays, strings, `u64` /
//! `f64` numbers, booleans and null. The writer escapes control characters
//! and quotes; the parser accepts anything the writer emits (plus standard
//! JSON whitespace), which is all [`crate::Report::from_json`] requires.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer. Unlike [`JsonValue::Number`], the full
    /// `u64` range round-trips bit-exactly (seeds are `Seed::child`
    /// outputs, which span all 64 bits).
    U64(u64),
    /// Any other number. Integers round-trip exactly up to 2^53.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are sorted (BTreeMap) so output is deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Builds an object from key–value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of strings.
    pub fn strings<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> JsonValue {
        JsonValue::Array(
            items
                .into_iter()
                .map(|s| JsonValue::String(s.as_ref().to_string()))
                .collect(),
        )
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one. `U64` values above 2^53 lose
    /// precision here; use [`JsonValue::as_u64`] for exact integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            JsonValue::U64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is an integer in range. Accepts
    /// both [`JsonValue::U64`] and integral [`JsonValue::Number`]s (for
    /// documents written before the exact-integer variant existed).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(x) => Some(*x),
            JsonValue::Number(x)
                if x.fract() == 0.0 && *x >= 0.0 && *x < 9_007_199_254_740_992.0 =>
            {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A member of an object, if the value is an object with that key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline-free
    /// final line, mirroring the familiar pretty-printer layout.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serialises on a single line with no whitespace — the JSONL form
    /// used by the sweep result stream and the content-addressed cache,
    /// where one value must occupy exactly one line. Object keys are
    /// sorted (BTreeMap), so equal values serialise byte-identically.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Number(x) => write_number(out, *x),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Number(x) => write_number(out, *x),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Numbers compare across variants: the writer prints `Number(2.0)` as
/// `2`, which the parser reads back as `U64(2)`, so treating them as
/// unequal would break `parse(&v.to_pretty()) == v` for integral floats.
impl PartialEq for JsonValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (JsonValue::Null, JsonValue::Null) => true,
            (JsonValue::Bool(a), JsonValue::Bool(b)) => a == b,
            (JsonValue::U64(a), JsonValue::U64(b)) => a == b,
            (JsonValue::Number(a), JsonValue::Number(b)) => a == b,
            (JsonValue::U64(a), JsonValue::Number(b))
            | (JsonValue::Number(b), JsonValue::U64(a)) => *b == *a as f64,
            (JsonValue::String(a), JsonValue::String(b)) => a == b,
            (JsonValue::Array(a), JsonValue::Array(b)) => a == b,
            (JsonValue::Object(a), JsonValue::Object(b)) => a == b,
            _ => false,
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed byte.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("unrecognised literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Reports never emit surrogate pairs (the writer
                            // only \u-escapes control characters), so a lone
                            // BMP code point is all we accept.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 character. The input began life as
                    // a &str and is only consumed on character boundaries,
                    // so the leading byte gives the width; validate just
                    // that slice (not the whole remaining document).
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC2..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            // lint: allow(panic-hygiene): the scan above only accepts ASCII digit/sign/exponent bytes, so UTF-8 validation cannot fail
            .expect("digits and sign characters are ASCII");
        // Plain unsigned integers keep full 64-bit precision; everything
        // else (signs, fractions, exponents, overflow) falls back to f64.
        if !text.starts_with('-') {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(JsonValue::U64(x));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structures() {
        let v = JsonValue::object([
            ("id", JsonValue::String("E06".into())),
            ("seed", JsonValue::U64(3590)),
            ("ok", JsonValue::Bool(true)),
            ("nothing", JsonValue::Null),
            (
                "rows",
                JsonValue::Array(vec![
                    JsonValue::strings(["a", "b"]),
                    JsonValue::Array(vec![JsonValue::Number(1.5)]),
                ]),
            ),
        ]);
        let text = v.to_pretty();
        assert_eq!(parse(&text).expect("writer output parses"), v);
    }

    #[test]
    fn u64_is_exact_across_the_full_range() {
        for x in [0, 1, (1 << 53) + 1, u64::MAX] {
            let text = JsonValue::U64(x).to_pretty();
            assert_eq!(text, x.to_string());
            assert_eq!(parse(&text).expect("parses"), JsonValue::U64(x));
            assert_eq!(parse(&text).expect("parses").as_u64(), Some(x));
        }
        // Beyond u64: falls back to f64 rather than erroring.
        let huge = "18446744073709551616"; // u64::MAX + 1
        assert!(matches!(parse(huge).expect("parses"), JsonValue::Number(_)));
    }

    #[test]
    fn integral_floats_roundtrip_equal() {
        // Writer prints Number(2.0) as "2"; the parser reads that back
        // as U64(2). Cross-variant numeric equality keeps the roundtrip
        // property for every writable value.
        for v in [
            JsonValue::Number(2.0),
            JsonValue::Number(0.0),
            JsonValue::Array(vec![JsonValue::Number(5.0), JsonValue::Number(1.25)]),
        ] {
            assert_eq!(parse(&v.to_pretty()).expect("parses"), v);
        }
        assert_eq!(JsonValue::U64(2), JsonValue::Number(2.0));
        assert_ne!(JsonValue::U64(2), JsonValue::Number(2.5));
        assert_ne!(JsonValue::U64(2), JsonValue::String("2".into()));
    }

    #[test]
    fn as_u64_accepts_legacy_float_integers() {
        assert_eq!(JsonValue::Number(42.0).as_u64(), Some(42));
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::U64(7).as_f64(), Some(7.0));
        assert_eq!(JsonValue::String("7".into()).as_u64(), None);
    }

    #[test]
    fn escapes_and_unescapes_specials() {
        let v = JsonValue::String("a\"b\\c\nd\te\u{1}".into());
        let text = v.to_pretty();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(&text).expect("parses"), v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(JsonValue::Number(42.0).to_pretty(), "42");
        assert_eq!(JsonValue::Number(0.5).to_pretty(), "0.5");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_pretty(), "null");
    }

    #[test]
    fn parses_standard_json_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , -2.5e1 , \"ünïcødé\" ] } ").expect("valid");
        let items = v.get("k").and_then(|k| k.as_array()).expect("array");
        assert_eq!(items[0], JsonValue::U64(1));
        assert_eq!(items[1], JsonValue::Number(-25.0));
        assert_eq!(items[2].as_str(), Some("ünïcødé"));
    }

    #[test]
    fn large_documents_parse_quickly() {
        // Guards against accidental O(n²) string scanning: a ~1 MB string
        // member must parse in well under a second.
        let body: String = "abcdefgh".repeat(128 * 1024);
        let doc = format!("{{\"k\": \"{body}\"}}");
        let start = std::time::Instant::now();
        let v = parse(&doc).expect("valid");
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
        assert_eq!(
            v.get("k").and_then(|k| k.as_str()).map(str::len),
            Some(body.len())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = JsonValue::Bool(true);
        assert!(v.as_str().is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_array().is_none());
        assert!(v.get("x").is_none());
    }

    #[test]
    fn compact_is_one_line_and_round_trips() {
        let v = JsonValue::object([
            (
                "b",
                JsonValue::Array(vec![JsonValue::U64(1), JsonValue::Null]),
            ),
            ("a", JsonValue::String("x\ny".to_string())),
            ("c", JsonValue::object([("d", JsonValue::Bool(false))])),
        ]);
        let line = v.to_compact();
        assert!(!line.contains('\n'), "{line:?}");
        assert_eq!(line, "{\"a\":\"x\\ny\",\"b\":[1,null],\"c\":{\"d\":false}}");
        assert_eq!(parse(&line).expect("compact output parses"), v);
        // Empty containers keep their short forms.
        assert_eq!(JsonValue::Array(vec![]).to_compact(), "[]");
        assert_eq!(JsonValue::Object(Default::default()).to_compact(), "{}");
    }
}
