//! Experiment harness reproducing every claim of Elsässer et al.
//! (PODC 2017), *Rapid Asynchronous Plurality Consensus*.
//!
//! The paper is a brief announcement with no empirical section, so the
//! "tables and figures" regenerated here are the paper's *claims*:
//! theorems 1.1–1.3 and the quantitative statements in the prose. The
//! mapping from experiment id to claim lives in DESIGN.md; EXPERIMENTS.md
//! records predicted-versus-measured shape for each.
//!
//! | Module | Claim |
//! |--------|-------|
//! | [`e01`] | Thm 1.1 upper bound: Two-Choices in `O(n/c₁·log n)` rounds |
//! | [`e02`] | Thm 1.1 lower bound: `Ω(k)` rounds when `c₁ = Θ(n/k)` |
//! | [`e03`] | Thm 1.1: at gap `O(√n)` the runner-up wins with constant probability |
//! | [`e04`] | Thm 1.2: OneExtraBit is polylogarithmic, beats Two-Choices at large k |
//! | [`e05`] | §2: per-phase quadratic bias amplification |
//! | [`e06`] | Thm 1.3: the asynchronous protocol runs in `Θ(log n)` time |
//! | [`e07`] | Thm 1.3: k-range up to `exp(log n / log log n)` |
//! | [`e08`] | §3: weak synchronicity; Sync-Gadget ablation |
//! | [`e09`] | §1.1/§3: tick concentration and the `Ω(log n)` barrier |
//! | [`e10`] | §3.1: Bit-Propagation behaves as a Pólya urn (martingale) |
//! | [`e11`] | §3.2: the endgame finishes before the first node halts |
//! | [`e12`] | §4: exponential response delays preserve the `O(log n)` shape |
//! | [`e13`] | context: protocol comparison across k |
//! | [`e14`] | extension (§4): the protocols beyond the complete graph |
//! | [`e15`] | extension (§4): heterogeneous clock rates |
//! | [`e16`] | §3: quadratic amplification inside the asynchronous protocol |
//! | [`e17`] | fault model: robustness to per-message loss |
//! | [`e18`] | fault model: convergence under churn (crash + rejoin) |
//! | [`e19`] | fault model: budgeted oblivious / adaptive adversaries |
//! | [`e20`] | macro engine: micro vs macro occupancy trajectories agree |
//! | [`e21`] | macro engine: time-to-plurality at `n` up to `10⁹` |
//! | [`e22`] | macro engine: the `√(n log n)` bias threshold at scale |
//! | [`e23`] | rapid-net: the channel deployment agrees with the micro engine |
//! | [`e24`] | rapid-net: a UDP loopback deployment converges end to end |
//! | [`e25`] | sharded micro engine: per-node runs to n = 10^7 across topologies |
//!
//! Each module exposes a `Config` (with [`Default`] = paper scale and a
//! `quick()` preset for CI), a `run(&Config) -> Report`, and a zero-sized
//! registry entry (`E01` … `E22`) implementing the [`Experiment`] trait.
//! The [`registry::registry`] collects every entry; the `xp`
//! binary in `rapid-bench` multiplexes them behind one CLI:
//!
//! ```text
//! xp list
//! xp run e06 --quick --set ns=65536 --set trials=20
//! xp all --quick --format csv --out /tmp/reports
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cli;
pub mod distributions;
pub mod experiment;
pub mod json;
pub mod params;
pub mod predictions;
pub mod registry;
pub mod report;
pub mod runner;
pub mod table;

pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;
pub mod e20;
pub mod e21;
pub mod e22;
pub mod e23;
pub mod e24;
pub mod e25;
pub mod e26;

pub use distributions::InitialDistribution;
pub use experiment::Experiment;
pub use params::{ParamError, ParamMap, ParamSchema, ParamSpec, ParamValue, Preset};
pub use registry::{find, registry};
pub use report::Report;
pub use runner::{run_trials, run_trials_on, Parallelism, Workers};
pub use table::Table;

/// Convenient glob-import of the harness surface.
pub mod prelude {
    pub use crate::distributions::InitialDistribution;
    pub use crate::experiment::Experiment;
    pub use crate::params::{ParamError, ParamMap, ParamSchema, ParamSpec, ParamValue, Preset};
    pub use crate::registry::{find, registry};
    pub use crate::report::Report;
    pub use crate::runner::{run_trials, run_trials_on, Parallelism, Workers};
    pub use crate::table::Table;
}
