//! Declarative experiment parameters.
//!
//! Every experiment advertises a [`ParamSchema`]: an ordered list of
//! [`ParamSpec`]s, each with a name, a help string, a type, a full-scale
//! default and an optional `--quick` preset. A [`ParamMap`] is a validated
//! assignment for one schema: it starts from a preset and accepts string
//! overrides (`map.set("n", "65536")`), rejecting unknown keys and
//! malformed values with a typed [`ParamError`] instead of silently
//! falling back to defaults. Once a map exists, the typed getters
//! ([`ParamMap::u64`], [`ParamMap::f64_list`], …) are infallible — all
//! validation happens at assignment time.

use std::collections::BTreeMap;

use crate::json::JsonValue;

/// The type of one parameter.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// A non-negative integer (`u64`).
    U64,
    /// A non-negative integer that must fit in `u32`.
    U32,
    /// A finite floating-point number.
    F64,
    /// A boolean (`true`/`false`/`1`/`0`/`yes`/`no`).
    Bool,
    /// A non-empty comma-separated list of `u64`s.
    U64List,
    /// A non-empty comma-separated list of finite `f64`s.
    F64List,
}

impl ParamKind {
    /// Human-readable type name used in help and error messages.
    pub fn name(self) -> &'static str {
        match self {
            ParamKind::U64 => "u64",
            ParamKind::U32 => "u32",
            ParamKind::F64 => "f64",
            ParamKind::Bool => "bool",
            ParamKind::U64List => "u64 list",
            ParamKind::F64List => "f64 list",
        }
    }
}

/// One parameter value.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// An integer (also backs [`ParamKind::U32`] after bound-checking).
    U64(u64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// An integer list.
    U64List(Vec<u64>),
    /// A float list.
    F64List(Vec<f64>),
}

impl ParamValue {
    /// The kind this value satisfies (U32 values are stored as [`ParamValue::U64`]).
    fn kind(&self) -> ParamKind {
        match self {
            ParamValue::U64(_) => ParamKind::U64,
            ParamValue::F64(_) => ParamKind::F64,
            ParamValue::Bool(_) => ParamKind::Bool,
            ParamValue::U64List(_) => ParamKind::U64List,
            ParamValue::F64List(_) => ParamKind::F64List,
        }
    }

    /// Whether this value is a legal inhabitant of `kind`.
    fn satisfies(&self, kind: ParamKind) -> bool {
        match (self, kind) {
            (ParamValue::U64(x), ParamKind::U32) => *x <= u64::from(u32::MAX),
            (v, k) => v.kind() == k,
        }
    }

    /// Renders the value the way [`ParamMap::set`] would accept it back.
    pub fn render(&self) -> String {
        fn join<T: std::fmt::Display>(xs: &[T]) -> String {
            xs.iter().map(T::to_string).collect::<Vec<_>>().join(",")
        }
        match self {
            ParamValue::U64(x) => x.to_string(),
            ParamValue::F64(x) => x.to_string(),
            ParamValue::Bool(b) => b.to_string(),
            ParamValue::U64List(xs) => join(xs),
            ParamValue::F64List(xs) => join(xs),
        }
    }

    /// The value as JSON (lists become arrays; integers stay exact).
    pub fn to_json_value(&self) -> JsonValue {
        match self {
            ParamValue::U64(x) => JsonValue::U64(*x),
            ParamValue::F64(x) => JsonValue::Number(*x),
            ParamValue::Bool(b) => JsonValue::Bool(*b),
            ParamValue::U64List(xs) => {
                JsonValue::Array(xs.iter().map(|&x| JsonValue::U64(x)).collect())
            }
            ParamValue::F64List(xs) => {
                JsonValue::Array(xs.iter().map(|&x| JsonValue::Number(x)).collect())
            }
        }
    }
}

impl From<u64> for ParamValue {
    fn from(x: u64) -> Self {
        ParamValue::U64(x)
    }
}
impl From<f64> for ParamValue {
    fn from(x: f64) -> Self {
        ParamValue::F64(x)
    }
}
impl From<bool> for ParamValue {
    fn from(b: bool) -> Self {
        ParamValue::Bool(b)
    }
}
impl From<Vec<u64>> for ParamValue {
    fn from(xs: Vec<u64>) -> Self {
        ParamValue::U64List(xs)
    }
}
impl From<Vec<f64>> for ParamValue {
    fn from(xs: Vec<f64>) -> Self {
        ParamValue::F64List(xs)
    }
}
impl From<&[u64]> for ParamValue {
    fn from(xs: &[u64]) -> Self {
        ParamValue::U64List(xs.to_vec())
    }
}
impl From<&[f64]> for ParamValue {
    fn from(xs: &[f64]) -> Self {
        ParamValue::F64List(xs.to_vec())
    }
}

/// Declaration of one parameter: name, type, help, defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamSpec {
    /// Key used with `--set name=value`.
    pub name: &'static str,
    /// One-line description for `xp info`.
    pub help: &'static str,
    /// Value type.
    pub kind: ParamKind,
    /// Full-scale (paper) default.
    pub default: ParamValue,
    /// `--quick` preset; `None` means the full default also serves quick runs.
    pub quick: Option<ParamValue>,
}

impl ParamSpec {
    fn new(name: &'static str, help: &'static str, kind: ParamKind, default: ParamValue) -> Self {
        assert!(
            default.satisfies(kind),
            "default for {name:?} does not satisfy {}",
            kind.name()
        );
        ParamSpec {
            name,
            help,
            kind,
            default,
            quick: None,
        }
    }

    /// A `u64` parameter.
    pub fn u64(name: &'static str, help: &'static str, default: u64) -> Self {
        Self::new(name, help, ParamKind::U64, ParamValue::U64(default))
    }

    /// A `u32` parameter (stored as `u64`, bound-checked on assignment).
    pub fn u32(name: &'static str, help: &'static str, default: u32) -> Self {
        Self::new(name, help, ParamKind::U32, ParamValue::U64(default.into()))
    }

    /// An `f64` parameter.
    pub fn f64(name: &'static str, help: &'static str, default: f64) -> Self {
        Self::new(name, help, ParamKind::F64, ParamValue::F64(default))
    }

    /// A boolean parameter.
    pub fn bool(name: &'static str, help: &'static str, default: bool) -> Self {
        Self::new(name, help, ParamKind::Bool, ParamValue::Bool(default))
    }

    /// A `u64`-list parameter.
    pub fn u64_list(name: &'static str, help: &'static str, default: &[u64]) -> Self {
        Self::new(name, help, ParamKind::U64List, default.into())
    }

    /// An `f64`-list parameter.
    pub fn f64_list(name: &'static str, help: &'static str, default: &[f64]) -> Self {
        Self::new(name, help, ParamKind::F64List, default.into())
    }

    /// Sets the `--quick` preset for this parameter.
    ///
    /// # Panics
    ///
    /// Panics if the preset's type does not match the spec's kind.
    pub fn quick(mut self, value: impl Into<ParamValue>) -> Self {
        let value = value.into();
        assert!(
            value.satisfies(self.kind),
            "quick preset for {:?} does not satisfy {}",
            self.name,
            self.kind.name()
        );
        self.quick = Some(value);
        self
    }
}

/// Which preset a [`ParamMap`] starts from.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Preset {
    /// Paper-scale defaults (minutes).
    #[default]
    Full,
    /// CI-scale presets (seconds).
    Quick,
}

/// An experiment's ordered parameter declarations.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ParamSchema {
    specs: Vec<ParamSpec>,
}

impl ParamSchema {
    /// Builds a schema from specs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate parameter names (a programming error in the
    /// experiment's `schema()`).
    pub fn new(specs: Vec<ParamSpec>) -> Self {
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate parameter {:?}", a.name);
            }
        }
        ParamSchema { specs }
    }

    /// The declared specs, in declaration order.
    pub fn specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    /// Looks up a spec by name.
    pub fn spec(&self, name: &str) -> Option<&ParamSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All parameter names, in declaration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }
}

/// Error from [`ParamMap::set`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// The key is not declared in the experiment's schema.
    UnknownKey {
        /// The offending key.
        key: String,
        /// The keys the schema does declare.
        known: Vec<&'static str>,
    },
    /// The value failed to parse as the declared type.
    BadValue {
        /// The key being assigned.
        key: String,
        /// The raw value text.
        value: String,
        /// The type it had to be.
        expected: &'static str,
        /// What exactly went wrong.
        detail: String,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::UnknownKey { key, known } => {
                write!(f, "unknown parameter {key:?}; known: {}", known.join(", "))
            }
            ParamError::BadValue {
                key,
                value,
                expected,
                detail,
            } => write!(
                f,
                "bad value {value:?} for {key:?} (expected {expected}): {detail}"
            ),
        }
    }
}

impl std::error::Error for ParamError {}

/// A validated parameter assignment for one schema.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamMap {
    schema: ParamSchema,
    values: BTreeMap<&'static str, ParamValue>,
}

impl ParamMap {
    /// A map holding the full-scale defaults.
    pub fn defaults(schema: &ParamSchema) -> Self {
        Self::preset(schema, Preset::Full)
    }

    /// A map holding the `--quick` presets (falling back to the defaults
    /// for parameters without one).
    pub fn quick(schema: &ParamSchema) -> Self {
        Self::preset(schema, Preset::Quick)
    }

    /// A map initialised from the chosen preset.
    pub fn preset(schema: &ParamSchema, preset: Preset) -> Self {
        let values = schema
            .specs
            .iter()
            .map(|s| {
                let v = match preset {
                    Preset::Quick => s.quick.clone().unwrap_or_else(|| s.default.clone()),
                    Preset::Full => s.default.clone(),
                };
                (s.name, v)
            })
            .collect();
        ParamMap {
            schema: schema.clone(),
            values,
        }
    }

    /// The schema this map was built against.
    pub fn schema(&self) -> &ParamSchema {
        &self.schema
    }

    /// Parses `raw` according to the schema and assigns it to `key`.
    ///
    /// # Errors
    ///
    /// [`ParamError::UnknownKey`] when the schema does not declare `key`;
    /// [`ParamError::BadValue`] when `raw` does not parse as the declared
    /// type (including out-of-range `u32`s, non-finite floats and empty
    /// lists).
    pub fn set(&mut self, key: &str, raw: &str) -> Result<(), ParamError> {
        let Some(spec) = self.schema.spec(key) else {
            return Err(ParamError::UnknownKey {
                key: key.to_string(),
                known: self.schema.names(),
            });
        };
        let value = parse_value(spec.kind, raw).map_err(|detail| ParamError::BadValue {
            key: key.to_string(),
            value: raw.to_string(),
            expected: spec.kind.name(),
            detail,
        })?;
        self.values.insert(spec.name, value);
        Ok(())
    }

    /// Assigns an already-typed value to `key`.
    ///
    /// # Errors
    ///
    /// [`ParamError::UnknownKey`] / [`ParamError::BadValue`] exactly as
    /// [`ParamMap::set`], but with a type check instead of a parse.
    pub fn set_value(&mut self, key: &str, value: ParamValue) -> Result<(), ParamError> {
        let Some(spec) = self.schema.spec(key) else {
            return Err(ParamError::UnknownKey {
                key: key.to_string(),
                known: self.schema.names(),
            });
        };
        if !value.satisfies(spec.kind) {
            return Err(ParamError::BadValue {
                key: key.to_string(),
                value: value.render(),
                expected: spec.kind.name(),
                detail: format!("got a {}", value.kind().name()),
            });
        }
        self.values.insert(spec.name, value);
        Ok(())
    }

    fn value(&self, key: &str) -> &ParamValue {
        self.values
            .get(key)
            // lint: allow(panic-hygiene): documented panic — schema mismatches are experiment programming errors, not user errors
            .unwrap_or_else(|| panic!("parameter {key:?} not in schema — experiment bug"))
    }

    /// Typed getter. Panics if the schema does not declare `key` as `u64`
    /// (a programming error, not a user error — user input is validated
    /// in [`ParamMap::set`]).
    pub fn u64(&self, key: &str) -> u64 {
        match self.value(key) {
            ParamValue::U64(x) => *x,
            // lint: allow(panic-hygiene): documented panic — typed getters turn schema mismatches into programming-error panics
            v => panic!("parameter {key:?} is a {}, not u64", v.kind().name()),
        }
    }

    /// Typed getter for `u32` parameters (declared via [`ParamSpec::u32`]).
    pub fn u32(&self, key: &str) -> u32 {
        // lint: allow(panic-hygiene): documented panic — typed getters turn schema mismatches into programming-error panics
        u32::try_from(self.u64(key)).expect("u32 params are bound-checked on assignment")
    }

    /// Typed getter returning `usize` (for opinion counts and the like).
    pub fn usize(&self, key: &str) -> usize {
        // lint: allow(panic-hygiene): documented panic — typed getters turn schema mismatches into programming-error panics
        usize::try_from(self.u64(key)).expect("u64 fits usize on supported targets")
    }

    /// Typed getter. Panics if the schema does not declare `key` as `f64`.
    pub fn f64(&self, key: &str) -> f64 {
        match self.value(key) {
            ParamValue::F64(x) => *x,
            // lint: allow(panic-hygiene): documented panic — typed getters turn schema mismatches into programming-error panics
            v => panic!("parameter {key:?} is a {}, not f64", v.kind().name()),
        }
    }

    /// Typed getter. Panics if the schema does not declare `key` as bool.
    pub fn bool(&self, key: &str) -> bool {
        match self.value(key) {
            ParamValue::Bool(b) => *b,
            // lint: allow(panic-hygiene): documented panic — typed getters turn schema mismatches into programming-error panics
            v => panic!("parameter {key:?} is a {}, not bool", v.kind().name()),
        }
    }

    /// Typed getter. Panics if the schema does not declare `key` as a
    /// `u64` list.
    pub fn u64_list(&self, key: &str) -> Vec<u64> {
        match self.value(key) {
            ParamValue::U64List(xs) => xs.clone(),
            // lint: allow(panic-hygiene): documented panic — typed getters turn schema mismatches into programming-error panics
            v => panic!("parameter {key:?} is a {}, not a u64 list", v.kind().name()),
        }
    }

    /// Typed getter returning a `usize` list.
    pub fn usize_list(&self, key: &str) -> Vec<usize> {
        self.u64_list(key)
            .into_iter()
            // lint: allow(panic-hygiene): documented panic — typed getters turn schema mismatches into programming-error panics
            .map(|x| usize::try_from(x).expect("u64 fits usize on supported targets"))
            .collect()
    }

    /// Typed getter. Panics if the schema does not declare `key` as an
    /// `f64` list.
    pub fn f64_list(&self, key: &str) -> Vec<f64> {
        match self.value(key) {
            ParamValue::F64List(xs) => xs.clone(),
            // lint: allow(panic-hygiene): documented panic — typed getters turn schema mismatches into programming-error panics
            v => panic!(
                "parameter {key:?} is a {}, not an f64 list",
                v.kind().name()
            ),
        }
    }

    /// The assignment as JSON, for provenance in saved reports.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(
            self.values
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

fn parse_value(kind: ParamKind, raw: &str) -> Result<ParamValue, String> {
    // Underscore separators are allowed in integers: `--set n=65_536`.
    let clean = |s: &str| s.trim().replace('_', "");
    match kind {
        ParamKind::U64 => clean(raw)
            .parse::<u64>()
            .map(ParamValue::U64)
            .map_err(|e| e.to_string()),
        ParamKind::U32 => clean(raw)
            .parse::<u32>()
            .map(|x| ParamValue::U64(x.into()))
            .map_err(|e| e.to_string()),
        ParamKind::F64 => {
            let x: f64 = raw
                .trim()
                .parse()
                .map_err(|e: std::num::ParseFloatError| e.to_string())?;
            if x.is_finite() {
                Ok(ParamValue::F64(x))
            } else {
                Err("must be finite".to_string())
            }
        }
        ParamKind::Bool => match raw.trim().to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" => Ok(ParamValue::Bool(true)),
            "false" | "0" | "no" => Ok(ParamValue::Bool(false)),
            _ => Err("use true/false".to_string()),
        },
        ParamKind::U64List => split_list(raw)?
            .iter()
            .map(|item| clean(item).parse::<u64>().map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()
            .map(ParamValue::U64List),
        ParamKind::F64List => split_list(raw)?
            .iter()
            .map(|item| {
                let x: f64 = item
                    .trim()
                    .parse()
                    .map_err(|e: std::num::ParseFloatError| e.to_string())?;
                if x.is_finite() {
                    Ok(x)
                } else {
                    Err("must be finite".to_string())
                }
            })
            .collect::<Result<Vec<_>, _>>()
            .map(ParamValue::F64List),
    }
}

fn split_list(raw: &str) -> Result<Vec<&str>, String> {
    // split(',') always yields at least one item, so an empty or
    // all-whitespace input is caught here as an empty item too.
    let items: Vec<&str> = raw.split(',').map(str::trim).collect();
    if items.iter().any(|s| s.is_empty()) {
        return Err("empty or missing list item".to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ParamSchema {
        ParamSchema::new(vec![
            ParamSpec::u64("n", "population", 1 << 14).quick(1 << 10),
            ParamSpec::u64("k", "opinions", 8),
            ParamSpec::f64("eps", "bias", 0.3).quick(0.5),
            ParamSpec::bool("voter", "include voter", true).quick(false),
            ParamSpec::u64_list("ns", "populations", &[1024, 4096]),
            ParamSpec::f64_list("skews", "clock skews", &[0.0, 0.2]),
            ParamSpec::u32("phases", "max phases", 6),
        ])
    }

    #[test]
    fn presets_respect_quick_overrides() {
        let s = schema();
        let full = ParamMap::defaults(&s);
        let quick = ParamMap::quick(&s);
        assert_eq!(full.u64("n"), 1 << 14);
        assert_eq!(quick.u64("n"), 1 << 10);
        // No quick override → same as full.
        assert_eq!(full.u64("k"), quick.u64("k"));
        assert!(full.bool("voter"));
        assert!(!quick.bool("voter"));
        assert_eq!(quick.f64("eps"), 0.5);
    }

    #[test]
    fn set_parses_every_kind() {
        let s = schema();
        let mut m = ParamMap::defaults(&s);
        m.set("n", "65_536").expect("u64");
        m.set("eps", "0.125").expect("f64");
        m.set("voter", "no").expect("bool");
        m.set("ns", "512, 1024,2048").expect("u64 list");
        m.set("skews", "0.1,0.5").expect("f64 list");
        m.set("phases", "9").expect("u32");
        assert_eq!(m.u64("n"), 65_536);
        assert_eq!(m.f64("eps"), 0.125);
        assert!(!m.bool("voter"));
        assert_eq!(m.u64_list("ns"), vec![512, 1024, 2048]);
        assert_eq!(m.usize_list("ns"), vec![512, 1024, 2048]);
        assert_eq!(m.f64_list("skews"), vec![0.1, 0.5]);
        assert_eq!(m.u32("phases"), 9);
        assert_eq!(m.usize("k"), 8);
    }

    #[test]
    fn unknown_keys_are_rejected_with_suggestions() {
        let mut m = ParamMap::defaults(&schema());
        let err = m.set("trials", "3").expect_err("unknown key");
        match err {
            ParamError::UnknownKey { key, known } => {
                assert_eq!(key, "trials");
                assert!(known.contains(&"n"));
                assert!(known.contains(&"skews"));
            }
            e => panic!("wrong error {e:?}"),
        }
    }

    #[test]
    fn malformed_values_are_rejected() {
        let mut m = ParamMap::defaults(&schema());
        for (key, bad) in [
            ("n", "twelve"),
            ("n", "-3"),
            ("eps", "NaN"),
            ("eps", "inf"),
            ("voter", "maybe"),
            ("ns", ""),
            ("ns", "1,,2"),
            ("ns", "1,2.5"),
            ("skews", "0.1,abc"),
            ("phases", "5000000000"),
        ] {
            let err = m.set(key, bad).expect_err(bad);
            assert!(
                matches!(err, ParamError::BadValue { .. }),
                "{key}={bad}: {err:?}"
            );
            assert!(!err.to_string().is_empty());
        }
        // Nothing was clobbered by failed sets.
        assert_eq!(m, ParamMap::defaults(&schema()));
    }

    #[test]
    fn set_value_type_checks() {
        let mut m = ParamMap::defaults(&schema());
        m.set_value("n", ParamValue::U64(7)).expect("matching kind");
        assert_eq!(m.u64("n"), 7);
        assert!(m.set_value("n", ParamValue::F64(1.5)).is_err());
        assert!(m.set_value("phases", ParamValue::U64(u64::MAX)).is_err());
        assert!(m
            .set_value("nope", ParamValue::U64(1))
            .is_err_and(|e| matches!(e, ParamError::UnknownKey { .. })));
    }

    #[test]
    #[should_panic(expected = "not u64")]
    fn wrong_typed_getter_panics() {
        ParamMap::defaults(&schema()).u64("eps");
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_rejected() {
        ParamSchema::new(vec![
            ParamSpec::u64("n", "a", 1),
            ParamSpec::f64("n", "b", 1.0),
        ]);
    }

    #[test]
    fn render_roundtrips_through_set() {
        let s = schema();
        let full = ParamMap::defaults(&s);
        let mut again = ParamMap::quick(&s);
        for spec in s.specs() {
            let rendered = full.value(spec.name).render();
            again.set(spec.name, &rendered).expect("render parses");
        }
        assert_eq!(again, full);
    }
}
