//! The paper's asymptotic predictions, as concrete formulas.
//!
//! Each function evaluates the expression inside an O/Θ bound with unit
//! constant. The experiment tables divide measured values by these, so a
//! *constant ratio column across a sweep* is exactly "the measured curve
//! has the predicted shape".

/// Theorem 1.1 upper bound: Two-Choices rounds `n/c₁ · ln n`.
///
/// # Panics
///
/// Panics if `c1 == 0`.
pub fn two_choices_rounds(n: u64, c1: u64) -> f64 {
    assert!(c1 > 0, "plurality support must be positive");
    (n as f64 / c1 as f64) * (n as f64).ln()
}

/// Theorem 1.2: OneExtraBit rounds
/// `(ln(c₁/(c₁−c₂)) + ln ln n) · (ln k + ln ln n)`.
///
/// # Panics
///
/// Panics if `c1 <= c2` (the theorem needs a strict gap).
pub fn one_extra_bit_rounds(n: u64, k: usize, c1: u64, c2: u64) -> f64 {
    assert!(c1 > c2, "theorem 1.2 requires c1 > c2");
    let lnln = (n as f64).ln().ln().max(1.0);
    let gap_term = (c1 as f64 / (c1 - c2) as f64).ln().max(0.0) + lnln;
    let spread_term = (k as f64).ln().max(1.0) + lnln;
    gap_term * spread_term
}

/// Theorem 1.3: asynchronous protocol time `ln n`.
pub fn async_time(n: u64) -> f64 {
    (n as f64).ln()
}

/// The paper's k-range frontier for Theorem 1.3:
/// `exp(ln n / ln ln n)`.
pub fn async_k_limit(n: u64) -> f64 {
    let ln_n = (n as f64).ln();
    (ln_n / ln_n.ln().max(1.0)).exp()
}

/// Expected number of bit-set nodes right after a Two-Choices step:
/// `Σ c_j² / n` (each node's two samples coincide on `C_j` w.p. `(c_j/n)²`).
pub fn expected_bits_after_two_choices(counts: &[u64]) -> f64 {
    let n: u64 = counts.iter().sum();
    counts.iter().map(|&c| (c as f64).powi(2)).sum::<f64>() / n as f64
}

/// Coupon-collector time for every node to tick at least once: `ln n`
/// time units (the `Ω(log n)` asynchronous barrier).
pub fn coverage_time(n: u64) -> f64 {
    (n as f64).ln()
}

/// Expected maximum tick-count deviation after `t` time units across `n`
/// Poisson clocks: `√(2 t ln n)` (Gaussian tail bound scale).
pub fn tick_deviation_scale(n: u64, t: f64) -> f64 {
    (2.0 * t * (n as f64).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_choices_prediction_decreases_in_c1() {
        assert!(two_choices_rounds(1000, 100) > two_choices_rounds(1000, 500));
    }

    #[test]
    fn one_extra_bit_is_polylog() {
        // Even at huge k the prediction stays tiny next to k itself.
        let r = one_extra_bit_rounds(1 << 20, 1024, 2048, 1024);
        assert!(r < 200.0, "prediction {r}");
        assert!(r > 1.0);
    }

    #[test]
    fn one_extra_bit_grows_with_tighter_gap() {
        let loose = one_extra_bit_rounds(1 << 16, 8, 20_000, 10_000);
        let tight = one_extra_bit_rounds(1 << 16, 8, 10_100, 10_000);
        assert!(tight > loose);
    }

    #[test]
    fn async_limits_scale() {
        assert!(async_time(1 << 20) > async_time(1 << 10));
        // k-limit is superpolylogarithmic but subpolynomial.
        let lim = async_k_limit(1 << 20);
        let ln_n = ((1u64 << 20) as f64).ln();
        assert!(lim > ln_n.powi(2));
        assert!(lim < (1 << 20) as f64);
    }

    #[test]
    fn expected_bits_formula() {
        // counts (60, 40), n=100: (3600+1600)/100 = 52.
        assert!((expected_bits_after_two_choices(&[60, 40]) - 52.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_scale_grows_with_both_arguments() {
        assert!(tick_deviation_scale(1 << 16, 10.0) > tick_deviation_scale(1 << 10, 10.0));
        assert!(tick_deviation_scale(1 << 10, 40.0) > tick_deviation_scale(1 << 10, 10.0));
        assert!(coverage_time(1 << 16) > coverage_time(1 << 10));
    }

    #[test]
    #[should_panic(expected = "c1 > c2")]
    fn one_extra_bit_rejects_no_gap() {
        let _ = one_extra_bit_rounds(100, 2, 50, 50);
    }
}
