//! The static experiment registry.
//!
//! One entry per paper experiment, sorted by id. The registry is the
//! single source of truth for "what experiments exist": the `xp` CLI,
//! the integration tests and the README catalog are all generated from
//! it.

use crate::experiment::Experiment;
use crate::{
    e01, e02, e03, e04, e05, e06, e07, e08, e09, e10, e11, e12, e13, e14, e15, e16, e17, e18, e19,
    e20, e21, e22, e23, e24, e25, e26,
};

static REGISTRY: [&dyn Experiment; 26] = [
    &e01::E01,
    &e02::E02,
    &e03::E03,
    &e04::E04,
    &e05::E05,
    &e06::E06,
    &e07::E07,
    &e08::E08,
    &e09::E09,
    &e10::E10,
    &e11::E11,
    &e12::E12,
    &e13::E13,
    &e14::E14,
    &e15::E15,
    &e16::E16,
    &e17::E17,
    &e18::E18,
    &e19::E19,
    &e20::E20,
    &e21::E21,
    &e22::E22,
    &e23::E23,
    &e24::E24,
    &e25::E25,
    &e26::E26,
];

/// Every experiment, sorted by [`Experiment::id`].
pub fn registry() -> &'static [&'static dyn Experiment] {
    &REGISTRY
}

/// Looks up an experiment by id, case-insensitively (`"e06"` / `"E06"`).
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry()
        .iter()
        .copied()
        .find(|e| e.id().eq_ignore_ascii_case(id))
}

/// The README experiment catalog, generated from the registry so docs
/// can never drift from code (enforced by a test).
pub fn catalog_markdown() -> String {
    let mut out = String::from("| id | paper anchor | claim | key parameters |\n");
    out.push_str("|----|--------------|-------|----------------|\n");
    for exp in registry() {
        let params: Vec<&str> = exp
            .params()
            .specs()
            .iter()
            .map(|s| s.name)
            .filter(|&n| n != "seed" && n != "trials")
            .collect();
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            exp.id(),
            exp.claim(),
            exp.title(),
            params
                .iter()
                .map(|p| format!("`{p}`"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out.push_str("\nEvery experiment also takes `trials` and `seed`.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_unique_and_sorted() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(ids.len(), 26);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "ids must be unique and sorted");
        for i in 1..=26 {
            assert!(
                ids.contains(&format!("e{i:02}").as_str()),
                "missing e{i:02}"
            );
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert_eq!(find("e06").expect("exists").id(), "e06");
        assert_eq!(find("E06").expect("exists").id(), "e06");
        assert!(find("e99").is_none());
        assert!(find("").is_none());
    }

    #[test]
    fn every_schema_declares_seed_and_trials() {
        for exp in registry() {
            let schema = exp.params();
            assert!(schema.spec("seed").is_some(), "{}: no seed", exp.id());
            assert!(schema.spec("trials").is_some(), "{}: no trials", exp.id());
            assert!(!exp.title().is_empty());
            assert!(!exp.claim().is_empty());
        }
    }

    #[test]
    fn catalog_lists_every_id() {
        let md = catalog_markdown();
        for exp in registry() {
            assert!(md.contains(&format!("`{}`", exp.id())), "{}", exp.id());
        }
    }
}
