//! Experiment reports: printable and machine-readable.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::table::Table;

/// The result of one experiment: tables plus provenance.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id (e.g. `"E06"`).
    pub id: String,
    /// Human-readable title (the claim being validated).
    pub title: String,
    /// The regenerated tables / figure series.
    pub tables: Vec<Table>,
    /// Free-form notes (parameter choices, caveats).
    pub notes: Vec<String>,
    /// Master seed used, for exact reproduction.
    pub seed: u64,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, seed: u64) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
            seed,
        }
    }

    /// Adds a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Adds a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Serialises the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Never in practice: the report contains only strings and numbers.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is always serialisable")
    }

    /// Writes `<dir>/<id>.json`; creates `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file writing.
    pub fn save_json(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id.to_lowercase()));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== {} — {} (seed {:#x}) ===", self.id, self.title, self.seed)?;
        for table in &self.tables {
            writeln!(f)?;
            write!(f, "{table}")?;
        }
        if !self.notes.is_empty() {
            writeln!(f)?;
            for note in &self.notes {
                writeln!(f, "* {note}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new("E99", "a demo", 42);
        let mut t = Table::new("demo table", &["x"]);
        t.push_row(vec!["1".into()]);
        r.push_table(t);
        r.push_note("hello");
        r
    }

    #[test]
    fn display_includes_everything() {
        let s = sample_report().to_string();
        assert!(s.contains("E99"));
        assert!(s.contains("a demo"));
        assert!(s.contains("demo table"));
        assert!(s.contains("* hello"));
    }

    #[test]
    fn json_roundtrips() {
        let r = sample_report();
        let back: Report = serde_json::from_str(&r.to_json()).expect("valid JSON");
        assert_eq!(r, back);
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("rapid-report-test");
        let path = sample_report().save_json(&dir).expect("writable");
        assert!(path.exists());
        assert!(path.file_name().expect("file").to_string_lossy().contains("e99"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
