//! Experiment reports: printable and machine-readable.

use std::path::{Path, PathBuf};

use crate::json::{self, JsonValue};
use crate::table::Table;

/// The result of one experiment: tables plus provenance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Experiment id (e.g. `"E06"`).
    pub id: String,
    /// Human-readable title (the claim being validated).
    pub title: String,
    /// The regenerated tables / figure series.
    pub tables: Vec<Table>,
    /// Free-form notes (parameter choices, caveats).
    pub notes: Vec<String>,
    /// Master seed used, for exact reproduction.
    pub seed: u64,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, seed: u64) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
            seed,
        }
    }

    /// Adds a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Adds a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The report as a JSON value (the document [`Report::to_json`]
    /// pretty-prints; sweep result lines render it compactly instead).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("id", JsonValue::String(self.id.clone())),
            ("title", JsonValue::String(self.title.clone())),
            (
                "tables",
                JsonValue::Array(self.tables.iter().map(Table::to_json_value).collect()),
            ),
            ("notes", JsonValue::strings(&self.notes)),
            ("seed", JsonValue::U64(self.seed)),
        ])
    }

    /// Serialises the report as pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Parses a report previously produced by [`Report::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error string when the document is not valid JSON or is
    /// missing a report field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let string = |k: &str| {
            field(k).and_then(|f| {
                f.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("field {k:?} is not a string"))
            })
        };
        Ok(Report {
            id: string("id")?,
            title: string("title")?,
            tables: field("tables")?
                .as_array()
                .ok_or("tables is not an array")?
                .iter()
                .map(Table::from_json_value)
                .collect::<Result<_, _>>()?,
            notes: string_array(field("notes")?)?,
            seed: parse_seed(field("seed")?)?,
        })
    }

    /// Renders every table as CSV, separated by `# `-prefixed provenance
    /// lines (id, title, seed, table titles, notes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} — {} (seed {})\n",
            self.id, self.title, self.seed
        ));
        for table in &self.tables {
            out.push_str(&format!("# table: {}\n", table.title));
            out.push_str(&table.to_csv());
            for note in &table.notes {
                out.push_str(&format!("# note: {note}\n"));
            }
        }
        for note in &self.notes {
            out.push_str(&format!("# note: {note}\n"));
        }
        out
    }

    /// Writes `<dir>/<id>.json`; creates `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file writing.
    pub fn save_json(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id.to_lowercase()));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "=== {} — {} (seed {:#x}) ===",
            self.id, self.title, self.seed
        )?;
        for table in &self.tables {
            writeln!(f)?;
            write!(f, "{table}")?;
        }
        if !self.notes.is_empty() {
            writeln!(f)?;
            for note in &self.notes {
                writeln!(f, "* {note}")?;
            }
        }
        Ok(())
    }
}

/// Reads the seed field: an exact integer in current documents, a decimal
/// string in documents written before [`JsonValue::U64`] existed.
fn parse_seed(v: &JsonValue) -> Result<u64, String> {
    if let Some(x) = v.as_u64() {
        return Ok(x);
    }
    v.as_str()
        .ok_or("seed is neither an integer nor a string")?
        .parse::<u64>()
        .map_err(|e| format!("seed is not a u64: {e}"))
}

/// Extracts a JSON array of strings.
pub(crate) fn string_array(v: &JsonValue) -> Result<Vec<String>, String> {
    v.as_array()
        .ok_or("expected an array of strings")?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| "expected a string".to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new("E99", "a demo", 42);
        let mut t = Table::new("demo table", &["x"]);
        t.push_row(vec!["1".into()]);
        r.push_table(t);
        r.push_note("hello");
        r
    }

    #[test]
    fn display_includes_everything() {
        let s = sample_report().to_string();
        assert!(s.contains("E99"));
        assert!(s.contains("a demo"));
        assert!(s.contains("demo table"));
        assert!(s.contains("* hello"));
    }

    #[test]
    fn json_roundtrips() {
        let r = sample_report();
        let back = Report::from_json(&r.to_json()).expect("valid JSON");
        assert_eq!(r, back);
    }

    #[test]
    fn large_seeds_roundtrip_exactly() {
        // Seeds span the full u64 range (Seed::child output); an f64-backed
        // number field would corrupt anything above 2^53.
        let mut r = sample_report();
        r.seed = u64::MAX - 12345;
        let back = Report::from_json(&r.to_json()).expect("valid JSON");
        assert_eq!(back.seed, r.seed);
    }

    #[test]
    fn legacy_string_seeds_still_parse() {
        // PR-1 documents encoded the seed as a string to survive the
        // f64-backed number type; they must keep loading.
        let modern = sample_report().to_json();
        assert!(modern.contains("\"seed\": 42"), "{modern}");
        let legacy = modern.replace("\"seed\": 42", "\"seed\": \"42\"");
        let back = Report::from_json(&legacy).expect("legacy document parses");
        assert_eq!(back.seed, 42);
    }

    #[test]
    fn csv_contains_tables_and_provenance() {
        let csv = sample_report().to_csv();
        assert!(csv.starts_with("# E99 — a demo (seed 42)\n"));
        assert!(csv.contains("# table: demo table\n"));
        assert!(csv.contains("x\n1\n"));
        assert!(csv.contains("# note: hello"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("rapid-report-test");
        let path = sample_report().save_json(&dir).expect("writable");
        assert!(path.exists());
        assert!(path
            .file_name()
            .expect("file")
            .to_string_lossy()
            .contains("e99"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
