//! Deterministic, multi-threaded trial execution.

use rapid_sim::rng::Seed;

pub use rapid_sim::parallelism::{Parallelism, Workers};

/// Worker-thread policy for [`run_trials_on`].
///
/// Results never depend on this choice — trial seeds are derived from the
/// trial index, not from scheduling — so it only trades wall-clock time
/// for cores.
#[deprecated(note = "use `Parallelism` (the shared trial/shard worker axis); \
                     `Threads::Fixed(n)` maps to `Parallelism::parse(\"n\")`")]
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Threads {
    /// One worker per available core (the default).
    Auto,
    /// Exactly this many workers.
    Fixed(usize),
}

// Not derived: the derive expansion would reference the deprecated
// variant outside this module's `#[allow(deprecated)]` scope.
#[allow(deprecated, clippy::derivable_impls)]
impl Default for Threads {
    fn default() -> Self {
        Threads::Auto
    }
}

#[allow(deprecated)]
impl Threads {
    /// Shorthand for [`Threads::Auto`].
    pub fn auto() -> Self {
        Threads::Auto
    }

    /// An explicit worker count (`0` is treated as `Auto`).
    pub fn fixed(n: usize) -> Self {
        if n == 0 {
            Threads::Auto
        } else {
            Threads::Fixed(n)
        }
    }

    /// The concrete worker count for a run of `trials` trials.
    pub fn resolve(self, trials: u64) -> usize {
        Parallelism::from(self)
            .trial_workers
            .resolve(trials.max(1) as usize)
    }
}

#[allow(deprecated)]
impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Auto => write!(f, "auto"),
            Threads::Fixed(n) => write!(f, "{n}"),
        }
    }
}

#[allow(deprecated)]
impl From<Threads> for Parallelism {
    /// The legacy policy named only the trial axis; shard workers stay at
    /// their sequential default — exactly what `--threads N` used to mean.
    fn from(threads: Threads) -> Self {
        let trial_workers = match threads {
            Threads::Auto => Workers::Auto,
            Threads::Fixed(n) => Workers::fixed(n),
        };
        Parallelism {
            trial_workers,
            ..Parallelism::default()
        }
    }
}

/// Runs `trials` independent trials of `f` across worker threads and
/// returns the results **in trial order**.
///
/// Each trial receives its own derived seed (`master.child(index)`), so the
/// results are independent of thread count and scheduling — re-running with
/// the same master seed reproduces every number in every table.
///
/// # Panics
///
/// Panics if `trials == 0` or if any trial panics.
///
/// # Example
///
/// ```
/// use rapid_experiments::run_trials;
/// use rapid_sim::prelude::*;
///
/// let results = run_trials(8, Seed::new(1), |i, seed| {
///     let mut rng = SimRng::from_seed_value(seed);
///     (i, rng.bounded(100))
/// });
/// assert_eq!(results.len(), 8);
/// assert!(results.iter().enumerate().all(|(i, r)| r.0 == i as u64));
/// ```
pub fn run_trials<T: Send>(trials: u64, master: Seed, f: impl Fn(u64, Seed) -> T + Sync) -> Vec<T> {
    run_trials_on(
        trials,
        master,
        Parallelism {
            trial_workers: Workers::Auto,
            ..Parallelism::default()
        },
        f,
    )
}

/// [`run_trials`] with an explicit [`Parallelism`] policy (the
/// `xp --parallelism` path); only the `trial_workers` axis applies here —
/// `shard_workers` is consumed inside each trial by the sharded micro
/// engine.
///
/// # Panics
///
/// Panics if `trials == 0` or if any trial panics.
pub fn run_trials_on<T: Send>(
    trials: u64,
    master: Seed,
    parallelism: Parallelism,
    f: impl Fn(u64, Seed) -> T + Sync,
) -> Vec<T> {
    assert!(trials > 0, "need at least one trial");
    let threads = parallelism.trial_workers.resolve(trials as usize);

    if threads <= 1 {
        return (0..trials).map(|i| f(i, master.child(i))).collect();
    }

    let next = std::sync::atomic::AtomicU64::new(0);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= trials {
                    return;
                }
                let result = f(i, master.child(i));
                slots_mutex
                    .lock()
                    // lint: allow(panic-hygiene): a poisoned lock means a trial panicked; re-raising that panic is the correct propagation
                    .expect("no trial panicked holding the lock")[i as usize] = Some(result);
            });
        }
    });

    slots
        .into_iter()
        // lint: allow(panic-hygiene): the scoped threads above write every slot exactly once before joining
        .map(|s| s.expect("every trial index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::rng::SimRng;

    #[test]
    fn results_arrive_in_trial_order() {
        let out = run_trials(32, Seed::new(7), |i, _| i * 10);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_deterministic_in_master_seed() {
        let f = |_: u64, seed: Seed| {
            let mut rng = SimRng::from_seed_value(seed);
            rng.bounded(1_000_000)
        };
        let a = run_trials(16, Seed::new(3), f);
        let b = run_trials(16, Seed::new(3), f);
        assert_eq!(a, b);
        let c = run_trials(16, Seed::new(4), f);
        assert_ne!(a, c);
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let seeds = run_trials(64, Seed::new(5), |_, s| s.value());
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn forced_worker_counts_agree() {
        // The determinism guarantee: one worker and many workers produce
        // identical result vectors for the same master seed.
        let f = |i: u64, seed: Seed| {
            let mut rng = SimRng::from_seed_value(seed);
            (i, rng.bounded(1_000_000))
        };
        let fixed = |n| Parallelism {
            trial_workers: Workers::fixed(n),
            ..Parallelism::default()
        };
        let one = run_trials_on(24, Seed::new(9), fixed(1), f);
        let many = run_trials_on(24, Seed::new(9), fixed(8), f);
        let auto = run_trials_on(24, Seed::new(9), Parallelism::auto(), f);
        assert_eq!(one, many);
        assert_eq!(one, auto);
    }

    #[test]
    #[allow(deprecated)]
    fn threads_shim_maps_onto_parallelism() {
        // The deprecated policy and its Parallelism image resolve to the
        // same worker counts, so migrated call sites behave identically.
        assert_eq!(
            Parallelism::from(Threads::Auto),
            Parallelism {
                trial_workers: Workers::Auto,
                shard_workers: Workers::fixed(1),
            }
        );
        assert_eq!(
            Parallelism::from(Threads::Fixed(4)).trial_workers,
            Workers::fixed(4)
        );
        // `fixed(0)` kept its 0-means-auto contract through the shim.
        assert_eq!(Threads::fixed(0), Threads::Auto);
        assert_eq!(Threads::Fixed(8).resolve(2), 2);
        assert_eq!(Threads::Fixed(2).resolve(100), 2);
        assert!(Threads::Auto.resolve(100) >= 1);
        assert_eq!(Threads::Auto.to_string(), "auto");
        assert_eq!(Threads::Fixed(4).to_string(), "4");
    }

    #[test]
    fn single_trial_works() {
        let out = run_trials(1, Seed::new(6), |i, _| i);
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = run_trials(0, Seed::new(1), |_, _| ());
    }
}
