//! Deterministic, multi-threaded trial execution.

use rapid_sim::rng::Seed;

pub use rapid_sim::parallelism::{Parallelism, Workers};

/// Runs `trials` independent trials of `f` across worker threads and
/// returns the results **in trial order**.
///
/// Each trial receives its own derived seed (`master.child(index)`), so the
/// results are independent of thread count and scheduling — re-running with
/// the same master seed reproduces every number in every table.
///
/// # Panics
///
/// Panics if `trials == 0` or if any trial panics.
///
/// # Example
///
/// ```
/// use rapid_experiments::run_trials;
/// use rapid_sim::prelude::*;
///
/// let results = run_trials(8, Seed::new(1), |i, seed| {
///     let mut rng = SimRng::from_seed_value(seed);
///     (i, rng.bounded(100))
/// });
/// assert_eq!(results.len(), 8);
/// assert!(results.iter().enumerate().all(|(i, r)| r.0 == i as u64));
/// ```
pub fn run_trials<T: Send>(trials: u64, master: Seed, f: impl Fn(u64, Seed) -> T + Sync) -> Vec<T> {
    run_trials_on(
        trials,
        master,
        Parallelism {
            trial_workers: Workers::Auto,
            ..Parallelism::default()
        },
        f,
    )
}

/// [`run_trials`] with an explicit [`Parallelism`] policy (the
/// `xp --parallelism` path); only the `trial_workers` axis applies here —
/// `shard_workers` is consumed inside each trial by the sharded micro
/// engine.
///
/// # Panics
///
/// Panics if `trials == 0` or if any trial panics.
pub fn run_trials_on<T: Send>(
    trials: u64,
    master: Seed,
    parallelism: Parallelism,
    f: impl Fn(u64, Seed) -> T + Sync,
) -> Vec<T> {
    assert!(trials > 0, "need at least one trial");
    let threads = parallelism.trial_workers.resolve(trials as usize);

    if threads <= 1 {
        return (0..trials).map(|i| f(i, master.child(i))).collect();
    }

    let next = std::sync::atomic::AtomicU64::new(0);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= trials {
                    return;
                }
                let result = f(i, master.child(i));
                slots_mutex
                    .lock()
                    // lint: allow(panic-hygiene): a poisoned lock means a trial panicked; re-raising that panic is the correct propagation
                    .expect("no trial panicked holding the lock")[i as usize] = Some(result);
            });
        }
    });

    slots
        .into_iter()
        // lint: allow(panic-hygiene): the scoped threads above write every slot exactly once before joining
        .map(|s| s.expect("every trial index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::rng::SimRng;

    #[test]
    fn results_arrive_in_trial_order() {
        let out = run_trials(32, Seed::new(7), |i, _| i * 10);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_deterministic_in_master_seed() {
        let f = |_: u64, seed: Seed| {
            let mut rng = SimRng::from_seed_value(seed);
            rng.bounded(1_000_000)
        };
        let a = run_trials(16, Seed::new(3), f);
        let b = run_trials(16, Seed::new(3), f);
        assert_eq!(a, b);
        let c = run_trials(16, Seed::new(4), f);
        assert_ne!(a, c);
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let seeds = run_trials(64, Seed::new(5), |_, s| s.value());
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn forced_worker_counts_agree() {
        // The determinism guarantee: one worker and many workers produce
        // identical result vectors for the same master seed.
        let f = |i: u64, seed: Seed| {
            let mut rng = SimRng::from_seed_value(seed);
            (i, rng.bounded(1_000_000))
        };
        let fixed = |n| Parallelism {
            trial_workers: Workers::fixed(n),
            ..Parallelism::default()
        };
        let one = run_trials_on(24, Seed::new(9), fixed(1), f);
        let many = run_trials_on(24, Seed::new(9), fixed(8), f);
        let auto = run_trials_on(24, Seed::new(9), Parallelism::auto(), f);
        assert_eq!(one, many);
        assert_eq!(one, auto);
    }

    #[test]
    fn single_trial_works() {
        let out = run_trials(1, Seed::new(6), |i, _| i);
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = run_trials(0, Seed::new(1), |_, _| ());
    }
}
