//! Aligned text tables for experiment output.

use crate::json::JsonValue;
use crate::report::string_array;

/// A simple column-aligned table with a title and optional notes.
///
/// # Example
///
/// ```
/// use rapid_experiments::Table;
/// let mut t = Table::new("Demo", &["n", "time"]);
/// t.push_row(vec!["1024".into(), "7.2".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("1024"));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (must match `columns` in length).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Appends a footnote.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns one column's cells verbatim; empty if the column does not
    /// exist.
    pub fn column(&self, name: &str) -> Vec<String> {
        let Some(idx) = self.columns.iter().position(|c| c == name) else {
            return Vec::new();
        };
        self.rows.iter().map(|r| r[idx].clone()).collect()
    }

    /// Returns one column's cells parsed as `f64` (for shape checks in
    /// tests). Cells that fail to parse are skipped.
    pub fn column_f64(&self, name: &str) -> Vec<f64> {
        let Some(idx) = self.columns.iter().position(|c| c == name) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r[idx].parse::<f64>().ok())
            .collect()
    }

    /// The table as a JSON value (used by [`crate::Report::to_json`]).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("title", JsonValue::String(self.title.clone())),
            ("columns", JsonValue::strings(&self.columns)),
            (
                "rows",
                JsonValue::Array(self.rows.iter().map(JsonValue::strings).collect()),
            ),
            ("notes", JsonValue::strings(&self.notes)),
        ])
    }

    /// Rebuilds a table from [`Table::to_json_value`] output.
    ///
    /// # Errors
    ///
    /// Returns an error string when a field is missing or mistyped.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing table field {k:?}"));
        Ok(Table {
            title: field("title")?
                .as_str()
                .ok_or("table title is not a string")?
                .to_string(),
            columns: string_array(field("columns")?)?,
            rows: field("rows")?
                .as_array()
                .ok_or("table rows is not an array")?
                .iter()
                .map(string_array)
                .collect::<Result<_, _>>()?,
            notes: string_array(field("notes")?)?,
        })
    }

    /// Renders as CSV (header + rows, RFC-4180-style quoting for commas).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        writeln!(f, "{}", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "  {}", header.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "  {}", rule.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "  {}", cells.join("  "))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100".into(), "2000".into()]);
        t.push_note("a note");
        let s = t.to_string();
        assert!(s.contains("long_header"));
        assert!(s.contains("note: a note"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn column_extraction_parses_numbers() {
        let mut t = Table::new("T", &["n", "x"]);
        t.push_row(vec!["10".into(), "1.5".into()]);
        t.push_row(vec!["20".into(), "n/a".into()]);
        t.push_row(vec!["30".into(), "2.5".into()]);
        assert_eq!(t.column_f64("x"), vec![1.5, 2.5]);
        assert_eq!(t.column_f64("n"), vec![10.0, 20.0, 30.0]);
        assert!(t.column_f64("missing").is_empty());
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("T", &["a,b", "c"]);
        t.push_row(vec!["x,y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x,y\",z"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_row_rejected() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }
}
