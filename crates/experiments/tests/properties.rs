//! Property-style tests for the experiment harness: workload generators
//! and the trial runner. Driven by the deterministic
//! [`rapid_sim::testkit`] harness.

use rapid_experiments::distributions::{theorem_11_gap, theorem_12_gap};
use rapid_experiments::{run_trials, InitialDistribution};
use rapid_sim::prelude::*;
use rapid_sim::testkit::cases;

/// Every generator produces counts that sum to n, sorted descending,
/// with color 0 the plurality.
#[test]
fn distributions_are_well_formed() {
    cases(64, |g| {
        let n = g.u64(100..100_000);
        let k = g.usize(2..12);
        let eps = g.f64(0.01..3.0);
        let s = g.f64(0.2..3.0);
        let r = g.f64(0.1..0.9);
        let candidates = vec![
            InitialDistribution::multiplicative_bias(k, eps),
            InitialDistribution::Uniform { k },
            InitialDistribution::Zipf { k, s },
            InitialDistribution::Geometric { k, r },
        ];
        for dist in candidates {
            if let Ok(counts) = dist.counts(n) {
                assert_eq!(counts.iter().sum::<u64>(), n, "{}", dist.label());
                assert!(
                    counts.windows(2).all(|w| w[0] >= w[1]),
                    "{} not sorted",
                    dist.label()
                );
                assert_eq!(counts.len(), k);
            }
        }
    });
}

/// The additive-bias generator hits the requested gap up to rounding.
#[test]
fn additive_gap_is_respected() {
    cases(64, |g| {
        let n = g.u64(1_000..1_000_000);
        let k = g.usize(2..16);
        let gap = (n as f64 * g.f64(0.0..0.5)) as u64;
        if let Ok(counts) = InitialDistribution::additive_bias(k, gap).counts(n) {
            let realised = counts[0] - counts[1];
            assert!(realised >= gap);
            assert!(realised < gap + k as u64);
        }
    });
}

/// Theorem gap formulas are monotone in n and ordered: the
/// Theorem 1.2 gap dominates the Theorem 1.1 gap.
#[test]
fn theorem_gaps_are_ordered() {
    cases(128, |g| {
        let n = g.u64(10..10_000_000);
        let z = g.f64(0.1..4.0);
        assert!(theorem_12_gap(n, z) >= theorem_11_gap(n, z));
        assert!(theorem_11_gap(2 * n, z) > theorem_11_gap(n, z));
    });
}

/// The trial runner is deterministic and order-preserving regardless of
/// trial count.
#[test]
fn runner_is_deterministic() {
    cases(16, |g| {
        let trials = g.u64(1..40);
        let master = g.seed();
        let f = |i: u64, seed: Seed| {
            let mut rng = SimRng::from_seed_value(seed);
            (i, rng.bounded(1_000_000))
        };
        let a = run_trials(trials, master, f);
        let b = run_trials(trials, master, f);
        assert_eq!(&a, &b);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.0, i as u64);
        }
    });
}
