//! Property-based tests for the experiment harness: workload generators
//! and the trial runner.

use proptest::prelude::*;
use rapid_experiments::distributions::{theorem_11_gap, theorem_12_gap};
use rapid_experiments::{run_trials, InitialDistribution};
use rapid_sim::prelude::*;

proptest! {
    /// Every generator produces counts that sum to n, sorted descending,
    /// with color 0 the plurality.
    #[test]
    fn distributions_are_well_formed(
        n in 100u64..100_000,
        k in 2usize..12,
        eps in 0.01f64..3.0,
        s in 0.2f64..3.0,
        r in 0.1f64..0.9,
    ) {
        let candidates = vec![
            InitialDistribution::multiplicative_bias(k, eps),
            InitialDistribution::Uniform { k },
            InitialDistribution::Zipf { k, s },
            InitialDistribution::Geometric { k, r },
        ];
        for dist in candidates {
            if let Ok(counts) = dist.counts(n) {
                prop_assert_eq!(counts.iter().sum::<u64>(), n, "{}", dist.label());
                prop_assert!(
                    counts.windows(2).all(|w| w[0] >= w[1]),
                    "{} not sorted",
                    dist.label()
                );
                prop_assert_eq!(counts.len(), k);
            }
        }
    }

    /// The additive-bias generator hits the requested gap up to rounding.
    #[test]
    fn additive_gap_is_respected(
        n in 1_000u64..1_000_000,
        k in 2usize..16,
        gap_frac in 0.0f64..0.5,
    ) {
        let gap = (n as f64 * gap_frac) as u64;
        if let Ok(counts) = InitialDistribution::additive_bias(k, gap).counts(n) {
            let realised = counts[0] - counts[1];
            prop_assert!(realised >= gap);
            prop_assert!(realised < gap + k as u64);
        }
    }

    /// Theorem gap formulas are monotone in n and ordered: the
    /// Theorem 1.2 gap dominates the Theorem 1.1 gap.
    #[test]
    fn theorem_gaps_are_ordered(n in 10u64..10_000_000, z in 0.1f64..4.0) {
        prop_assert!(theorem_12_gap(n, z) >= theorem_11_gap(n, z));
        prop_assert!(theorem_11_gap(2 * n, z) > theorem_11_gap(n, z));
    }

    /// The trial runner is deterministic and order-preserving regardless of
    /// trial count.
    #[test]
    fn runner_is_deterministic(trials in 1u64..40, master in any::<u64>()) {
        let f = |i: u64, seed: Seed| {
            let mut rng = SimRng::from_seed_value(seed);
            (i, rng.bounded(1_000_000))
        };
        let a = run_trials(trials, Seed::new(master), f);
        let b = run_trials(trials, Seed::new(master), f);
        prop_assert_eq!(&a, &b);
        for (i, r) in a.iter().enumerate() {
            prop_assert_eq!(r.0, i as u64);
        }
    }
}
