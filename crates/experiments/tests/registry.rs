//! Integration tests for the `Experiment` trait, the registry and the
//! param-map ⇄ legacy-`Config` equivalence the redesign promised: driving
//! an experiment through `xp`'s path (registry + `ParamMap`) must produce
//! *bit-identical* reports to the pre-redesign `Config` path.

use rapid_experiments::prelude::*;
use rapid_experiments::{
    e01, e02, e03, e04, e05, e06, e07, e08, e09, e10, e11, e12, e13, e14, e15, e16, e17, e18, e19,
    e20, e21, e22, e23, e24, e25, e26,
};

/// Every experiment's `from_params` over both presets must reproduce the
/// legacy `Config::default()` / `Config::quick()` exactly — this pins the
/// declarative schemas to the historical configurations field by field.
macro_rules! check_config_equivalence {
    ($($module:ident => $entry:expr),+ $(,)?) => {
        $(
            {
                let exp: &dyn Experiment = &$entry;
                let schema = exp.params();
                let full = $module::Config::from_params(&ParamMap::defaults(&schema));
                assert_eq!(full, $module::Config::default(), "{}: full preset drifted", exp.id());
                let quick = $module::Config::from_params(&ParamMap::quick(&schema));
                assert_eq!(quick, $module::Config::quick(), "{}: quick preset drifted", exp.id());
            }
        )+
    };
}

#[test]
fn param_presets_match_legacy_configs_for_all_experiments() {
    check_config_equivalence!(
        e01 => e01::E01,
        e02 => e02::E02,
        e03 => e03::E03,
        e04 => e04::E04,
        e05 => e05::E05,
        e06 => e06::E06,
        e07 => e07::E07,
        e08 => e08::E08,
        e09 => e09::E09,
        e10 => e10::E10,
        e11 => e11::E11,
        e12 => e12::E12,
        e13 => e13::E13,
        e14 => e14::E14,
        e15 => e15::E15,
        e16 => e16::E16,
        e17 => e17::E17,
        e18 => e18::E18,
        e19 => e19::E19,
        e20 => e20::E20,
        e21 => e21::E21,
        e22 => e22::E22,
        e23 => e23::E23,
        e24 => e24::E24,
        e25 => e25::E25,
        e26 => e26::E26,
    );
}

/// The acceptance criterion: `xp run e06 --quick` (registry path, default
/// seed, no overrides) emits byte-identical report JSON to the legacy
/// `e06::run(&Config::quick())` path that the deleted
/// `exp_e06_async_scaling --quick` binary used.
#[test]
fn e06_registry_quick_is_bit_identical_to_legacy_path() {
    let exp = find("e06").expect("registered");
    let map = ParamMap::quick(&exp.params());
    let new = exp.run_map(&map, None, Parallelism::default());
    let old = e06::run(&e06::Config::quick());
    assert_eq!(new, old);
    assert_eq!(new.to_json(), old.to_json());
}

/// Spot-check the same equivalence on a sync experiment (e01) and the
/// cheapest one (e09) so the guarantee is not e06-specific.
#[test]
fn more_registry_quick_runs_match_their_legacy_paths() {
    let exp = find("e09").expect("registered");
    let map = ParamMap::quick(&exp.params());
    assert_eq!(
        exp.run_map(&map, None, Parallelism::default()).to_json(),
        e09::run(&e09::Config::quick()).to_json()
    );

    let exp = find("e01").expect("registered");
    let map = ParamMap::quick(&exp.params());
    assert_eq!(
        exp.run_map(&map, None, Parallelism::default()).to_json(),
        e01::run(&e01::Config::quick()).to_json()
    );
}

/// `--set` overrides flow into the run: changing `trials` must change the
/// report's table while keeping the same seed.
#[test]
fn set_overrides_change_the_run() {
    let exp = find("e09").expect("registered");
    let mut map = ParamMap::quick(&exp.params());
    map.set("trials", "2").expect("known key");
    map.set("ns", "128,256").expect("known key");
    let report = exp.run_map(&map, None, Parallelism::default());
    let trials = report.tables[0].column_f64("trials");
    assert_eq!(trials, vec![2.0, 2.0]);
}

/// `--seed` replaces the schema's master seed verbatim.
#[test]
fn seed_override_is_respected() {
    let exp = find("e09").expect("registered");
    let map = ParamMap::quick(&exp.params());
    let a = exp.run_map(&map, Some(1234), Parallelism::default());
    let b = exp.run_map(&map, Some(1234), Parallelism::default());
    let c = exp.run_map(&map, None, Parallelism::default());
    assert_eq!(a.seed, 1234);
    assert_eq!(a, b, "same seed, same report");
    assert_ne!(a, c, "default seed differs");
}

/// Thread count must never change results: forcing one worker and many
/// workers produces identical reports through the registry path.
#[test]
fn forced_thread_counts_produce_identical_reports() {
    let exp = find("e09").expect("registered");
    let map = ParamMap::quick(&exp.params());
    let fixed = |n| Parallelism {
        trial_workers: Workers::fixed(n),
        ..Parallelism::default()
    };
    let one = exp.run_map(&map, None, fixed(1));
    let many = exp.run_map(&map, None, fixed(8));
    assert_eq!(one, many);
    assert_eq!(one.to_json(), many.to_json());
}

/// Registry completeness: all 26 ids present, unique, sorted, findable.
#[test]
fn registry_is_complete() {
    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    let expected: Vec<String> = (1..=26).map(|i| format!("e{i:02}")).collect();
    assert_eq!(ids, expected.iter().map(String::as_str).collect::<Vec<_>>());
    for id in &expected {
        assert!(find(id).is_some(), "{id} must resolve");
        assert!(find(&id.to_uppercase()).is_some(), "{id} case-insensitive");
    }
}

/// The README experiment catalog is generated from the registry
/// (`xp list --markdown`); this keeps the docs pinned to the code.
#[test]
fn readme_catalog_matches_the_registry() {
    let readme_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("README.md");
    let readme = std::fs::read_to_string(&readme_path).expect("README.md readable");
    let begin = "<!-- experiment-catalog:begin -->\n";
    let end = "<!-- experiment-catalog:end -->";
    let start = readme.find(begin).expect("catalog begin marker") + begin.len();
    let stop = readme.find(end).expect("catalog end marker");
    assert_eq!(
        readme[start..stop],
        rapid_experiments::registry::catalog_markdown(),
        "README catalog is stale: regenerate with `xp list --markdown`"
    );
}

/// The schema rejects unknown keys and malformed values for every
/// experiment — no silent defaults anywhere in the registry.
#[test]
fn every_schema_rejects_unknown_keys_and_bad_values() {
    for exp in registry() {
        let mut map = ParamMap::defaults(&exp.params());
        assert!(
            matches!(
                map.set("definitely_not_a_param", "1"),
                Err(ParamError::UnknownKey { .. })
            ),
            "{}",
            exp.id()
        );
        assert!(
            matches!(
                map.set("seed", "not-a-number"),
                Err(ParamError::BadValue { .. })
            ),
            "{}",
            exp.id()
        );
        // Failed sets leave the map untouched.
        assert_eq!(map, ParamMap::defaults(&exp.params()), "{}", exp.id());
    }
}
