//! Compressed adjacency-list storage shared by the explicit topologies.

use rapid_sim::node::NodeId;
use rapid_sim::rng::SimRng;

use crate::topology::Topology;

/// An undirected graph stored in compressed sparse row (CSR) form.
///
/// Construction goes through [`AdjacencyList::from_edges`], which
/// deduplicates edges, rejects self-loops, and materialises both directions.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
///
/// let g = AdjacencyList::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert_eq!(g.edge_count(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjacencyList {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl AdjacencyList {
    /// Builds a graph on `n` nodes from an edge list.
    ///
    /// Edges are undirected; duplicates are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, any endpoint is out of range, any edge is a
    /// self-loop, or some node ends up isolated (degree 0) — isolated nodes
    /// cannot participate in gossip.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n > 0, "graph needs at least one node");
        let mut pairs = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a}, {b}) out of range for n={n}");
            assert!(a != b, "self-loop at node {a}");
            pairs.push((a, b));
            pairs.push((b, a));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut offsets = vec![0usize; n + 1];
        for &(a, _) in &pairs {
            offsets[a + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<u32> = pairs.iter().map(|&(_, b)| b as u32).collect();

        for u in 0..n {
            assert!(
                offsets[u + 1] > offsets[u],
                "node {u} is isolated; every node needs at least one neighbor"
            );
        }
        AdjacencyList { offsets, targets }
    }

    /// The neighbor slice of `u`.
    #[inline]
    pub fn neighbor_slice(&self, u: NodeId) -> &[u32] {
        let i = u.index();
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }
}

impl Topology for AdjacencyList {
    fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    fn degree(&self, u: NodeId) -> usize {
        assert!(u.index() < self.n(), "node {u} out of range");
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    #[inline]
    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        let nbrs = self.neighbor_slice(u);
        debug_assert!(!nbrs.is_empty());
        NodeId::from(nbrs[rng.bounded_usize(nbrs.len())])
    }

    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        assert!(u.index() < self.n(), "node {u} out of range");
        self.neighbor_slice(u)
            .iter()
            .map(|&v| NodeId::from(v))
            .collect()
    }

    fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.n() && v.index() < self.n(),
            "node out of range"
        );
        self.neighbor_slice(u)
            .binary_search(&(v.index() as u32))
            .is_ok()
    }

    fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::rng::Seed;

    #[test]
    fn builds_csr_correctly() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.degree(NodeId::new(0)), 3);
        assert_eq!(g.degree(NodeId::new(1)), 1);
        assert_eq!(g.edge_count(), 3);
        assert!(g.contains_edge(NodeId::new(2), NodeId::new(0)));
        assert!(!g.contains_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = AdjacencyList::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn sampling_is_uniform_over_neighbors() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let mut rng = SimRng::from_seed_value(Seed::new(3));
        let mut counts = [0u32; 4];
        let trials = 30_000;
        for _ in 0..trials {
            counts[g.sample_neighbor(NodeId::new(0), &mut rng).index()] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "count {c} too far from 10000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let _ = AdjacencyList::from_edges(2, &[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn rejects_isolated_nodes() {
        let _ = AdjacencyList::from_edges(3, &[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = AdjacencyList::from_edges(2, &[(0, 5)]);
    }
}
