//! Graph analysis helpers: connectivity, distances, degree statistics.

use std::collections::VecDeque;

use rapid_sim::node::NodeId;

use crate::topology::Topology;

/// Breadth-first distances from `source`; unreachable nodes get `None`.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
/// let g = Cycle::new(6);
/// let d = bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d[3], Some(3));
/// ```
pub fn bfs_distances(g: &dyn Topology, source: NodeId) -> Vec<Option<usize>> {
    assert!(source.index() < g.n(), "source out of range");
    let mut dist = vec![None; g.n()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        // lint: allow(panic-hygiene): BFS assigns a node's distance before queueing it
        let du = dist[u.index()].expect("queued nodes have distances");
        for v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Whether the graph is connected.
pub fn is_connected(g: &dyn Topology) -> bool {
    bfs_distances(g, NodeId::new(0)).iter().all(Option::is_some)
}

/// Summary statistics of a degree sequence.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes [`DegreeStats`] for a topology.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_graph::analysis::degree_stats;
/// let g = Star::new(5);
/// let s = degree_stats(&g);
/// assert_eq!((s.min, s.max), (1, 4));
/// ```
pub fn degree_stats(g: &dyn Topology) -> DegreeStats {
    let mut min = usize::MAX;
    let mut max = 0;
    let mut sum = 0usize;
    for i in 0..g.n() {
        let d = g.degree(NodeId::new(i));
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    DegreeStats {
        min,
        max,
        mean: sum as f64 / g.n() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::Complete;
    use crate::random::{ErdosRenyi, RandomRegular};
    use crate::structured::{Cycle, Hypercube, Star, Torus2d};
    use rapid_sim::rng::Seed;

    #[test]
    fn cycle_distances_wrap() {
        let g = Cycle::new(8);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[4], Some(4));
        assert_eq!(d[7], Some(1));
    }

    #[test]
    fn structured_graphs_are_connected() {
        assert!(is_connected(&Complete::new(10)));
        assert!(is_connected(&Cycle::new(9)));
        assert!(is_connected(&Torus2d::new(4, 4)));
        assert!(is_connected(&Hypercube::new(4)));
        assert!(is_connected(&Star::new(7)));
    }

    #[test]
    fn dense_er_is_connected() {
        // p = 0.2 ≫ ln(100)/100 ≈ 0.046 → connected w.h.p.
        let g = ErdosRenyi::sample(100, 0.2, Seed::new(3));
        assert!(is_connected(&g));
    }

    #[test]
    fn regular_graph_is_connected() {
        // Random 3-regular graphs are connected w.h.p.
        let g = RandomRegular::sample(60, 3, Seed::new(4)).expect("samplable");
        assert!(is_connected(&g));
    }

    #[test]
    fn degree_stats_on_known_graphs() {
        let s = degree_stats(&Complete::new(6));
        assert_eq!((s.min, s.max), (5, 5));
        assert!((s.mean - 5.0).abs() < 1e-12);

        let s = degree_stats(&Torus2d::new(3, 3));
        assert_eq!((s.min, s.max), (4, 4));
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        let g = Hypercube::new(5);
        let d = bfs_distances(&g, NodeId::new(0));
        let max = d
            .iter()
            .map(|x| x.expect("connected"))
            .max()
            .expect("nonempty");
        assert_eq!(max, 5);
    }
}
