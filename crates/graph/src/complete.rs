//! The complete graph `K_n` — the paper's topology.

use rapid_sim::node::NodeId;
use rapid_sim::rng::SimRng;

use crate::topology::Topology;

/// The complete graph on `n` nodes.
///
/// Neighbor sampling is O(1) and storage is O(1): a uniform draw over
/// `0..n-1` is shifted past the sampling node's own index.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
///
/// let g = Complete::new(8);
/// assert_eq!(g.n(), 8);
/// assert_eq!(g.degree(NodeId::new(0)), 7);
/// assert_eq!(g.edge_count(), 28);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Complete {
    n: usize,
}

impl Complete {
    /// Creates the complete graph `K_n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a single node has no neighbors to sample).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "complete graph needs at least two nodes, got {n}");
        Complete { n }
    }
}

impl Topology for Complete {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, u: NodeId) -> usize {
        assert!(u.index() < self.n, "node {u} out of range");
        self.n - 1
    }

    #[inline]
    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        debug_assert!(u.index() < self.n, "node {u} out of range");
        // Draw from 0..n-1 and skip over u: uniform over the n-1 neighbors.
        let r = rng.bounded_usize(self.n - 1);
        NodeId::new(if r >= u.index() { r + 1 } else { r })
    }

    fn complete_n(&self) -> Option<usize> {
        Some(self.n)
    }

    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        assert!(u.index() < self.n, "node {u} out of range");
        (0..self.n)
            .filter(|&i| i != u.index())
            .map(NodeId::new)
            .collect()
    }

    fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "node out of range"
        );
        u != v
    }

    fn edge_count(&self) -> usize {
        self.n * (self.n - 1) / 2
    }

    fn is_complete(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::rng::Seed;

    #[test]
    fn sampling_never_returns_self_and_is_uniform() {
        let g = Complete::new(10);
        let mut rng = SimRng::from_seed_value(Seed::new(1));
        let u = NodeId::new(4);
        let mut counts = [0u32; 10];
        let trials = 90_000;
        for _ in 0..trials {
            let v = g.sample_neighbor(u, &mut rng);
            assert_ne!(v, u);
            counts[v.index()] += 1;
        }
        assert_eq!(counts[4], 0);
        let expected = trials as f64 / 9.0;
        for (i, &c) in counts.iter().enumerate() {
            if i == 4 {
                continue;
            }
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "neighbor {i}: count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn boundary_nodes_sample_correctly() {
        let g = Complete::new(3);
        let mut rng = SimRng::from_seed_value(Seed::new(2));
        for u in 0..3 {
            for _ in 0..100 {
                let v = g.sample_neighbor(NodeId::new(u), &mut rng);
                assert_ne!(v.index(), u);
                assert!(v.index() < 3);
            }
        }
    }

    #[test]
    fn neighbors_lists_everyone_else() {
        let g = Complete::new(5);
        let nbrs = g.neighbors(NodeId::new(2));
        assert_eq!(
            nbrs,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(3),
                NodeId::new(4)
            ]
        );
    }

    #[test]
    fn contains_edge_semantics() {
        let g = Complete::new(4);
        assert!(g.contains_edge(NodeId::new(0), NodeId::new(3)));
        assert!(!g.contains_edge(NodeId::new(1), NodeId::new(1)));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_singleton() {
        let _ = Complete::new(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degree_checks_range() {
        let g = Complete::new(3);
        let _ = g.degree(NodeId::new(3));
    }
}
