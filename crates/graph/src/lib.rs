//! Graph topologies with uniform neighbor sampling.
//!
//! The protocols of Elsässer et al. (PODC 2017) are analysed on the
//! complete graph `K_n`; [`Complete`] provides that topology with O(1)
//! sampling and no adjacency storage. The paper's discussion section
//! conjectures the techniques carry over to more general settings, so this
//! crate also ships structured ([`Cycle`], [`Torus2d`], [`Hypercube`],
//! [`Star`]) and random ([`ErdosRenyi`], [`RandomRegular`]) topologies for
//! the generalisation experiments.
//!
//! All topologies implement [`Topology`], whose core operation is
//! `sample_neighbor`: draw a uniformly random neighbor of a node — the only
//! graph primitive the gossip protocols need.
//!
//! # Example
//!
//! ```
//! use rapid_graph::prelude::*;
//! use rapid_sim::prelude::*;
//!
//! let g = Complete::new(100);
//! let mut rng = SimRng::from_seed_value(Seed::new(1));
//! let u = NodeId::new(7);
//! let v = g.sample_neighbor(u, &mut rng);
//! assert_ne!(u, v);
//! assert_eq!(g.degree(u), 99);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adjacency;
pub mod analysis;
pub mod complete;
pub mod random;
pub mod structured;
pub mod topology;

pub use adjacency::AdjacencyList;
pub use analysis::{bfs_distances, degree_stats, is_connected, DegreeStats};
pub use complete::Complete;
pub use random::{ErdosRenyi, RandomRegular, RandomRegularError};
pub use structured::{Cycle, Hypercube, Star, Torus2d};
pub use topology::Topology;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::adjacency::AdjacencyList;
    pub use crate::analysis::{bfs_distances, degree_stats, is_connected};
    pub use crate::complete::Complete;
    pub use crate::random::{ErdosRenyi, RandomRegular};
    pub use crate::structured::{Cycle, Hypercube, Star, Torus2d};
    pub use crate::topology::Topology;
}
