//! Random graph models: Erdős–Rényi `G(n, p)` and random `d`-regular graphs.

use rapid_sim::node::NodeId;
use rapid_sim::rng::{Seed, SimRng};

use crate::adjacency::AdjacencyList;
use crate::topology::Topology;

/// An Erdős–Rényi random graph `G(n, p)`, materialised as an adjacency list.
///
/// Edge generation uses geometric skipping, so construction costs
/// `O(n + m)` rather than `O(n²)`.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
/// let g = ErdosRenyi::sample(200, 0.1, Seed::new(1));
/// assert_eq!(g.n(), 200);
/// // Expected degree ≈ 19.9.
/// let mean: f64 = (0..200).map(|i| g.degree(NodeId::new(i)) as f64).sum::<f64>() / 200.0;
/// assert!((mean - 19.9).abs() < 3.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ErdosRenyi {
    graph: AdjacencyList,
    p: f64,
}

// Manual Eq is fine: p is a construction parameter, never NaN (validated).
impl Eq for ErdosRenyi {}

impl ErdosRenyi {
    /// Samples `G(n, p)`.
    ///
    /// Isolated nodes (possible at small `p`) are patched by wiring them to
    /// a uniformly random other node, preserving the gossip invariant that
    /// every node has at least one neighbor; for `p ≫ ln n / n` this path
    /// is never taken.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `p` is not in `(0, 1]`.
    pub fn sample(n: usize, p: f64, seed: Seed) -> Self {
        assert!(n >= 2, "G(n, p) needs at least two nodes, got {n}");
        assert!(
            p > 0.0 && p <= 1.0 && p.is_finite(),
            "edge probability must lie in (0, 1], got {p}"
        );
        let mut rng = SimRng::from_seed_value(seed);
        let mut edges: Vec<(usize, usize)> = Vec::new();

        // Iterate over the pairs (u, v), u < v, in lexicographic order,
        // skipping ahead by geometric jumps.
        let log_q = (1.0 - p).ln();
        let mut u = 0usize;
        let mut v = 0usize; // candidate position within row u is v+1..n
        if p >= 1.0 {
            for a in 0..n {
                for b in (a + 1)..n {
                    edges.push((a, b));
                }
            }
        } else {
            loop {
                // Geometric skip: number of non-edges before the next edge.
                let r = rng.unit_f64_open_left();
                let skip = (r.ln() / log_q).floor() as usize;
                // Advance (u, v) by skip + 1 positions.
                let mut advance = skip + 1;
                while advance > 0 && u < n - 1 {
                    let row_left = n - 1 - v; // positions remaining in row u
                    if advance <= row_left {
                        v += advance;
                        advance = 0;
                    } else {
                        advance -= row_left;
                        u += 1;
                        v = u;
                    }
                }
                if u >= n - 1 {
                    break;
                }
                edges.push((u, v));
            }
        }

        // Patch isolated nodes.
        let mut degree = vec![0usize; n];
        for &(a, b) in &edges {
            degree[a] += 1;
            degree[b] += 1;
        }
        for i in 0..n {
            if degree[i] == 0 {
                let mut j = rng.bounded_usize(n - 1);
                if j >= i {
                    j += 1;
                }
                edges.push((i.min(j), i.max(j)));
                degree[i] += 1;
                degree[j] += 1;
            }
        }

        ErdosRenyi {
            graph: AdjacencyList::from_edges(n, &edges),
            p,
        }
    }

    /// The edge probability this graph was sampled with.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Topology for ErdosRenyi {
    fn n(&self) -> usize {
        self.graph.n()
    }
    fn degree(&self, u: NodeId) -> usize {
        self.graph.degree(u)
    }
    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        self.graph.sample_neighbor(u, rng)
    }
    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        self.graph.neighbors(u)
    }
    fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.contains_edge(u, v)
    }
    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Error from random-regular-graph sampling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RandomRegularError {
    /// `n * d` must be even to admit a `d`-regular graph.
    OddDegreeSum {
        /// Requested number of nodes.
        n: usize,
        /// Requested degree.
        d: usize,
    },
    /// The pairing model failed to produce a simple graph within the retry
    /// budget (only plausible for `d` close to `n`).
    RetriesExhausted {
        /// Number of attempts made.
        attempts: usize,
    },
}

impl std::fmt::Display for RandomRegularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RandomRegularError::OddDegreeSum { n, d } => {
                write!(f, "no {d}-regular graph on {n} nodes: n*d must be even")
            }
            RandomRegularError::RetriesExhausted { attempts } => {
                write!(
                    f,
                    "pairing model failed to produce a simple graph in {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for RandomRegularError {}

/// A uniformly random simple `d`-regular graph via the configuration
/// (pairing) model with rejection.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
/// let g = RandomRegular::sample(50, 4, Seed::new(2)).expect("valid parameters");
/// assert!((0..50).all(|i| g.degree(NodeId::new(i)) == 4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomRegular {
    graph: AdjacencyList,
    d: usize,
}

impl RandomRegular {
    /// Samples a random simple `d`-regular graph on `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`RandomRegularError::OddDegreeSum`] if `n·d` is odd, and
    /// [`RandomRegularError::RetriesExhausted`] if rejection sampling fails
    /// (practically impossible for `d = O(√n)`).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `d >= n`.
    pub fn sample(n: usize, d: usize, seed: Seed) -> Result<Self, RandomRegularError> {
        assert!(d >= 1, "degree must be positive");
        assert!(d < n, "degree must be less than n");
        if !(n * d).is_multiple_of(2) {
            return Err(RandomRegularError::OddDegreeSum { n, d });
        }
        let mut rng = SimRng::from_seed_value(seed);
        let attempts = 200;
        // Steger–Wormald: repeatedly match two random unmatched stubs,
        // skipping self-loops and multi-edges; restart the attempt only if
        // the tail of the pairing stalls. Near-certain success per attempt
        // for d = O(n^{1/3}), unlike whole-shuffle rejection whose success
        // probability decays like exp(-d²/4).
        'attempt: for _ in 0..attempts {
            let mut stubs: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat_n(i, d)).collect();
            let mut edges: Vec<(usize, usize)> = Vec::with_capacity(stubs.len() / 2);
            // lint: allow(no-unordered-iteration): membership-only duplicate-edge set; it is never iterated, so its order cannot reach any outcome
            let mut seen = std::collections::HashSet::with_capacity(stubs.len() / 2);
            let mut failures = 0usize;
            while stubs.len() >= 2 {
                let i = rng.bounded_usize(stubs.len());
                let mut j = rng.bounded_usize(stubs.len() - 1);
                if j >= i {
                    j += 1;
                }
                let (a, b) = (stubs[i], stubs[j]);
                let key = (a.min(b), a.max(b));
                if a == b || seen.contains(&key) {
                    failures += 1;
                    if failures > 100 * (n * d) {
                        continue 'attempt; // stalled tail → restart
                    }
                    continue;
                }
                seen.insert(key);
                edges.push(key);
                // Remove both stubs; remove the larger index first.
                let (hi, lo) = (i.max(j), i.min(j));
                stubs.swap_remove(hi);
                stubs.swap_remove(lo);
            }
            return Ok(RandomRegular {
                graph: AdjacencyList::from_edges(n, &edges),
                d,
            });
        }
        Err(RandomRegularError::RetriesExhausted { attempts })
    }

    /// The degree `d`.
    pub fn d(&self) -> usize {
        self.d
    }
}

impl Topology for RandomRegular {
    fn n(&self) -> usize {
        self.graph.n()
    }
    fn degree(&self, u: NodeId) -> usize {
        self.graph.degree(u)
    }
    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        self.graph.sample_neighbor(u, rng)
    }
    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        self.graph.neighbors(u)
    }
    fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.contains_edge(u, v)
    }
    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_edge_count_matches_expectation() {
        let n = 400;
        let p = 0.05;
        let g = ErdosRenyi::sample(n, p, Seed::new(7));
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt() + 5.0,
            "edges {got} vs expected {expected}"
        );
        assert_eq!(g.p(), p);
    }

    #[test]
    fn erdos_renyi_no_isolated_nodes_even_at_tiny_p() {
        let g = ErdosRenyi::sample(100, 0.001, Seed::new(8));
        for i in 0..100 {
            assert!(g.degree(NodeId::new(i)) >= 1, "node {i} isolated");
        }
    }

    #[test]
    fn erdos_renyi_p_one_is_complete() {
        let g = ErdosRenyi::sample(10, 1.0, Seed::new(9));
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_is_deterministic_in_seed() {
        let a = ErdosRenyi::sample(60, 0.1, Seed::new(10));
        let b = ErdosRenyi::sample(60, 0.1, Seed::new(10));
        assert_eq!(a, b);
    }

    #[test]
    fn random_regular_has_exact_degrees() {
        for &(n, d) in &[(20, 3), (50, 4), (64, 6)] {
            let g = RandomRegular::sample(n, d, Seed::new(11)).expect("samplable");
            for i in 0..n {
                assert_eq!(g.degree(NodeId::new(i)), d);
            }
            assert_eq!(g.edge_count(), n * d / 2);
            assert_eq!(g.d(), d);
        }
    }

    #[test]
    fn random_regular_rejects_odd_sum() {
        let err = RandomRegular::sample(5, 3, Seed::new(12)).unwrap_err();
        assert_eq!(err, RandomRegularError::OddDegreeSum { n: 5, d: 3 });
        assert!(err.to_string().contains("must be even"));
    }

    #[test]
    #[should_panic(expected = "less than n")]
    fn random_regular_rejects_degree_n() {
        let _ = RandomRegular::sample(4, 4, Seed::new(13));
    }
}
