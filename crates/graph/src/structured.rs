//! Structured topologies: cycle, 2-D torus, hypercube, star.
//!
//! These implement neighbor sampling arithmetically (no adjacency storage),
//! so they scale to millions of nodes. They serve the generalisation
//! experiments suggested by the paper's discussion section.

use rapid_sim::node::NodeId;
use rapid_sim::rng::SimRng;

use crate::topology::Topology;

/// The cycle `C_n`: node `i` is adjacent to `i±1 (mod n)`.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
/// let g = Cycle::new(6);
/// assert_eq!(g.degree(NodeId::new(0)), 2);
/// assert_eq!(g.edge_count(), 6);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Cycle {
    n: usize,
}

impl Cycle {
    /// Creates the cycle on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (smaller cycles degenerate to multi-edges).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least three nodes, got {n}");
        Cycle { n }
    }
}

impl Topology for Cycle {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, u: NodeId) -> usize {
        assert!(u.index() < self.n, "node {u} out of range");
        2
    }

    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        assert!(u.index() < self.n, "node {u} out of range");
        let i = u.index();
        if rng.bounded(2) == 0 {
            NodeId::new((i + 1) % self.n)
        } else {
            NodeId::new((i + self.n - 1) % self.n)
        }
    }

    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        assert!(u.index() < self.n, "node {u} out of range");
        let i = u.index();
        vec![
            NodeId::new((i + self.n - 1) % self.n),
            NodeId::new((i + 1) % self.n),
        ]
    }

    fn edge_count(&self) -> usize {
        self.n
    }
}

/// The `w × h` torus: each node has four neighbors (up/down/left/right with
/// wraparound).
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
/// let g = Torus2d::new(4, 3);
/// assert_eq!(g.n(), 12);
/// assert_eq!(g.degree(NodeId::new(5)), 4);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Torus2d {
    width: usize,
    height: usize,
}

impl Torus2d {
    /// Creates a `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either side is `< 3` (smaller sides create multi-edges).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width >= 3 && height >= 3,
            "torus sides must be at least 3, got {width}x{height}"
        );
        Torus2d { width, height }
    }

    /// Grid coordinates of a node.
    pub fn coords(&self, u: NodeId) -> (usize, usize) {
        assert!(u.index() < self.n(), "node {u} out of range");
        (u.index() % self.width, u.index() / self.width)
    }

    fn id(&self, x: usize, y: usize) -> NodeId {
        NodeId::new(y * self.width + x)
    }
}

impl Topology for Torus2d {
    fn n(&self) -> usize {
        self.width * self.height
    }

    fn degree(&self, u: NodeId) -> usize {
        assert!(u.index() < self.n(), "node {u} out of range");
        4
    }

    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        let (x, y) = self.coords(u);
        let (w, h) = (self.width, self.height);
        match rng.bounded(4) {
            0 => self.id((x + 1) % w, y),
            1 => self.id((x + w - 1) % w, y),
            2 => self.id(x, (y + 1) % h),
            _ => self.id(x, (y + h - 1) % h),
        }
    }

    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let (x, y) = self.coords(u);
        let (w, h) = (self.width, self.height);
        vec![
            self.id((x + 1) % w, y),
            self.id((x + w - 1) % w, y),
            self.id(x, (y + 1) % h),
            self.id(x, (y + h - 1) % h),
        ]
    }

    fn edge_count(&self) -> usize {
        2 * self.n()
    }
}

/// The `d`-dimensional hypercube on `2^d` nodes: neighbors differ in one bit.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
/// let g = Hypercube::new(4);
/// assert_eq!(g.n(), 16);
/// assert_eq!(g.degree(NodeId::new(3)), 4);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Creates the hypercube of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > 30`.
    pub fn new(dim: u32) -> Self {
        assert!(
            (1..=30).contains(&dim),
            "dimension must be in 1..=30, got {dim}"
        );
        Hypercube { dim }
    }

    /// The dimension `d`.
    pub fn dim(&self) -> u32 {
        self.dim
    }
}

impl Topology for Hypercube {
    fn n(&self) -> usize {
        1usize << self.dim
    }

    fn degree(&self, u: NodeId) -> usize {
        assert!(u.index() < self.n(), "node {u} out of range");
        self.dim as usize
    }

    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        assert!(u.index() < self.n(), "node {u} out of range");
        let bit = rng.bounded(self.dim as u64) as usize;
        NodeId::new(u.index() ^ (1 << bit))
    }

    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        assert!(u.index() < self.n(), "node {u} out of range");
        (0..self.dim as usize)
            .map(|b| NodeId::new(u.index() ^ (1 << b)))
            .collect()
    }

    fn edge_count(&self) -> usize {
        self.n() * self.dim as usize / 2
    }
}

/// The star graph: node 0 is the hub, all others are leaves.
///
/// A worst case for gossip fairness — every leaf always samples the hub —
/// used by tests that probe topology-sensitivity of the protocols.
///
/// # Example
///
/// ```
/// use rapid_graph::prelude::*;
/// use rapid_sim::prelude::*;
/// let g = Star::new(5);
/// assert_eq!(g.degree(NodeId::new(0)), 4);
/// assert_eq!(g.degree(NodeId::new(1)), 1);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Star {
    n: usize,
}

impl Star {
    /// Creates a star on `n` nodes (1 hub + `n−1` leaves).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "star needs at least two nodes, got {n}");
        Star { n }
    }
}

impl Topology for Star {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, u: NodeId) -> usize {
        assert!(u.index() < self.n, "node {u} out of range");
        if u.index() == 0 {
            self.n - 1
        } else {
            1
        }
    }

    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        assert!(u.index() < self.n, "node {u} out of range");
        if u.index() == 0 {
            NodeId::new(1 + rng.bounded_usize(self.n - 1))
        } else {
            NodeId::new(0)
        }
    }

    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        assert!(u.index() < self.n, "node {u} out of range");
        if u.index() == 0 {
            (1..self.n).map(NodeId::new).collect()
        } else {
            vec![NodeId::new(0)]
        }
    }

    fn edge_count(&self) -> usize {
        self.n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::rng::Seed;

    fn check_sampling_matches_neighbors(g: &impl Topology, seed: u64) {
        let mut rng = SimRng::from_seed_value(Seed::new(seed));
        for i in 0..g.n().min(16) {
            let u = NodeId::new(i);
            let nbrs = g.neighbors(u);
            assert_eq!(nbrs.len(), g.degree(u), "degree mismatch at {u}");
            for _ in 0..50 {
                let v = g.sample_neighbor(u, &mut rng);
                assert!(nbrs.contains(&v), "{v} is not a neighbor of {u}");
                assert_ne!(u, v);
            }
        }
    }

    #[test]
    fn cycle_invariants() {
        let g = Cycle::new(7);
        check_sampling_matches_neighbors(&g, 1);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(
            g.neighbors(NodeId::new(0)),
            vec![NodeId::new(6), NodeId::new(1)]
        );
    }

    #[test]
    fn torus_invariants() {
        let g = Torus2d::new(4, 5);
        check_sampling_matches_neighbors(&g, 2);
        assert_eq!(g.n(), 20);
        assert_eq!(g.edge_count(), 40);
        assert_eq!(g.coords(NodeId::new(7)), (3, 1));
    }

    #[test]
    fn torus_wraps_around() {
        let g = Torus2d::new(3, 3);
        let nbrs = g.neighbors(NodeId::new(0));
        assert!(nbrs.contains(&NodeId::new(2)), "left wrap");
        assert!(nbrs.contains(&NodeId::new(6)), "up wrap");
    }

    #[test]
    fn hypercube_invariants() {
        let g = Hypercube::new(5);
        check_sampling_matches_neighbors(&g, 3);
        assert_eq!(g.n(), 32);
        assert_eq!(g.dim(), 5);
        assert_eq!(g.edge_count(), 80);
    }

    #[test]
    fn hypercube_neighbors_differ_in_one_bit() {
        let g = Hypercube::new(4);
        for v in g.neighbors(NodeId::new(0b1010)) {
            assert_eq!((v.index() ^ 0b1010).count_ones(), 1);
        }
    }

    #[test]
    fn star_invariants() {
        let g = Star::new(9);
        check_sampling_matches_neighbors(&g, 4);
        assert_eq!(g.edge_count(), 8);
        let mut rng = SimRng::from_seed_value(Seed::new(5));
        assert_eq!(g.sample_neighbor(NodeId::new(3), &mut rng), NodeId::new(0));
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_cycle_rejected() {
        let _ = Cycle::new(2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_torus_rejected() {
        let _ = Torus2d::new(2, 5);
    }

    #[test]
    #[should_panic(expected = "1..=30")]
    fn zero_dim_hypercube_rejected() {
        let _ = Hypercube::new(0);
    }
}
