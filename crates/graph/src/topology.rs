//! The [`Topology`] trait: the graph interface gossip protocols consume.

use rapid_sim::node::NodeId;
use rapid_sim::rng::SimRng;

/// An undirected graph on nodes `0..n` supporting uniform neighbor sampling.
///
/// This is the *only* graph capability the consensus protocols require: a
/// node samples communication partners uniformly at random from its
/// neighborhood. Implementations must guarantee:
///
/// * `sample_neighbor(u, _)` returns each neighbor of `u` with equal
///   probability and never returns `u` itself;
/// * `degree(u) ≥ 1` for every node (no isolated nodes — a node that cannot
///   sample cannot participate in gossip).
///
/// The trait is object-safe so engines can hold `&dyn Topology`.
pub trait Topology {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    fn degree(&self, u: NodeId) -> usize;

    /// Samples a uniformly random neighbor of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId;

    /// Returns all neighbors of `u` (ascending order not guaranteed).
    ///
    /// Intended for analysis and tests, not protocol hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    fn neighbors(&self, u: NodeId) -> Vec<NodeId>;

    /// Whether `{u, v}` is an edge.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).contains(&v)
    }

    /// For complete graphs, the node count; `None` otherwise.
    ///
    /// A uniform neighbor of any node in `K_n` is a uniform draw over
    /// the other `n − 1` nodes, so engines that only need an aggregate
    /// of the neighbor's state (e.g. its color under a frozen snapshot)
    /// can answer the pull from a histogram instead of a per-node
    /// lookup. Implementations must return `Some` only when the graph
    /// really is complete.
    fn complete_n(&self) -> Option<usize> {
        None
    }

    /// Total number of undirected edges.
    fn edge_count(&self) -> usize {
        (0..self.n())
            .map(|i| self.degree(NodeId::new(i)))
            .sum::<usize>()
            / 2
    }

    /// Whether this topology is (known to be) the complete graph `K_n`.
    ///
    /// Mean-field engines require exchangeable uniform sampling over the
    /// whole population, which only `K_n` provides; the macro builder path
    /// consults this. The default is conservative: `false` even for graphs
    /// that happen to be complete (e.g. a dense Erdős–Rényi draw).
    fn is_complete(&self) -> bool {
        false
    }
}

impl Topology for Box<dyn Topology + Send + Sync> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn degree(&self, u: NodeId) -> usize {
        (**self).degree(u)
    }

    fn sample_neighbor(&self, u: NodeId, rng: &mut SimRng) -> NodeId {
        (**self).sample_neighbor(u, rng)
    }

    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        (**self).neighbors(u)
    }

    fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        (**self).contains_edge(u, v)
    }

    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    fn is_complete(&self) -> bool {
        (**self).is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::Complete;

    #[test]
    fn trait_is_object_safe() {
        let g = Complete::new(5);
        let obj: &dyn Topology = &g;
        assert_eq!(obj.n(), 5);
        assert_eq!(obj.edge_count(), 10);
    }

    #[test]
    fn default_contains_edge_uses_neighbors() {
        let g = Complete::new(4);
        let obj: &dyn Topology = &g;
        assert!(obj.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!obj.contains_edge(NodeId::new(2), NodeId::new(2)));
    }
}
