//! Property-style tests for the topology implementations, driven by the
//! deterministic [`rapid_sim::testkit`] harness.

use rapid_graph::prelude::*;
use rapid_sim::prelude::*;
use rapid_sim::testkit::cases;

fn check_topology(g: &dyn Topology, seed: Seed) {
    let mut rng = SimRng::from_seed_value(seed);
    // Degree sum = 2 * edges (handshake lemma).
    let degree_sum: usize = (0..g.n()).map(|i| g.degree(NodeId::new(i))).sum();
    assert_eq!(degree_sum, 2 * g.edge_count());
    // Sampling returns genuine neighbors, never the node itself.
    for i in (0..g.n()).step_by((g.n() / 8).max(1)) {
        let u = NodeId::new(i);
        let nbrs = g.neighbors(u);
        assert_eq!(nbrs.len(), g.degree(u));
        assert!(!nbrs.contains(&u), "self-loop at {u}");
        for _ in 0..8 {
            let v = g.sample_neighbor(u, &mut rng);
            assert!(nbrs.contains(&v));
            assert!(g.contains_edge(u, v));
            assert!(g.contains_edge(v, u), "undirectedness at {u}-{v}");
        }
    }
}

#[test]
fn complete_graph_invariants() {
    cases(32, |g| {
        let n = g.usize(2..300);
        check_topology(&Complete::new(n), g.seed());
    });
}

#[test]
fn cycle_invariants() {
    cases(32, |g| {
        let n = g.usize(3..300);
        let cycle = Cycle::new(n);
        check_topology(&cycle, g.seed());
        assert!(is_connected(&cycle));
    });
}

#[test]
fn torus_invariants() {
    cases(32, |g| {
        let w = g.usize(3..18);
        let h = g.usize(3..18);
        let torus = Torus2d::new(w, h);
        check_topology(&torus, g.seed());
        assert!(is_connected(&torus));
    });
}

#[test]
fn hypercube_invariants() {
    cases(9, |g| {
        let dim = g.usize(1..10) as u32;
        let cube = Hypercube::new(dim);
        check_topology(&cube, g.seed());
        assert!(is_connected(&cube));
    });
}

#[test]
fn star_invariants() {
    cases(32, |g| {
        let n = g.usize(2..300);
        let star = Star::new(n);
        check_topology(&star, g.seed());
        assert!(is_connected(&star));
    });
}

#[test]
fn erdos_renyi_invariants() {
    cases(32, |g| {
        let n = g.usize(2..150);
        let p = g.f64(0.01..1.0);
        let er = ErdosRenyi::sample(n, p, g.seed());
        check_topology(&er, g.seed());
        // The isolated-node patch guarantees min degree 1.
        for i in 0..n {
            assert!(er.degree(NodeId::new(i)) >= 1);
        }
    });
}

#[test]
fn random_regular_invariants() {
    cases(32, |g| {
        let n = 2 * g.usize(4..60); // even n so any d is feasible
        let d = g.usize(1..6);
        let rr = RandomRegular::sample(n, d, g.seed()).expect("n*d is even");
        check_topology(&rr, g.seed());
        for i in 0..n {
            assert_eq!(rr.degree(NodeId::new(i)), d);
        }
    });
}

/// BFS distances satisfy the triangle-ish property: neighbors differ by
/// at most 1 from each other in distance from any source.
#[test]
fn bfs_distances_are_lipschitz_on_edges() {
    cases(32, |g| {
        let n = g.usize(3..100);
        let cycle = Cycle::new(n);
        let src = NodeId::new(g.usize(0..n));
        let dist = bfs_distances(&cycle, src);
        for i in 0..n {
            let u = NodeId::new(i);
            let du = dist[i].expect("cycle is connected");
            for v in cycle.neighbors(u) {
                let dv = dist[v.index()].expect("connected");
                assert!(du.abs_diff(dv) <= 1);
            }
        }
    });
}
