//! Property-based tests for the topology implementations.

use proptest::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::prelude::*;

fn check_topology(g: &dyn Topology, seed: u64) -> Result<(), TestCaseError> {
    let mut rng = SimRng::from_seed_value(Seed::new(seed));
    // Degree sum = 2 * edges (handshake lemma).
    let degree_sum: usize = (0..g.n()).map(|i| g.degree(NodeId::new(i))).sum();
    prop_assert_eq!(degree_sum, 2 * g.edge_count());
    // Sampling returns genuine neighbors, never the node itself.
    for i in (0..g.n()).step_by((g.n() / 8).max(1)) {
        let u = NodeId::new(i);
        let nbrs = g.neighbors(u);
        prop_assert_eq!(nbrs.len(), g.degree(u));
        prop_assert!(!nbrs.contains(&u), "self-loop at {}", u);
        for _ in 0..8 {
            let v = g.sample_neighbor(u, &mut rng);
            prop_assert!(nbrs.contains(&v));
            prop_assert!(g.contains_edge(u, v));
            prop_assert!(g.contains_edge(v, u), "undirectedness at {}-{}", u, v);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complete_graph_invariants(n in 2usize..300, seed in any::<u64>()) {
        check_topology(&Complete::new(n), seed)?;
    }

    #[test]
    fn cycle_invariants(n in 3usize..300, seed in any::<u64>()) {
        let g = Cycle::new(n);
        check_topology(&g, seed)?;
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn torus_invariants(w in 3usize..18, h in 3usize..18, seed in any::<u64>()) {
        let g = Torus2d::new(w, h);
        check_topology(&g, seed)?;
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn hypercube_invariants(dim in 1u32..10, seed in any::<u64>()) {
        let g = Hypercube::new(dim);
        check_topology(&g, seed)?;
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn star_invariants(n in 2usize..300, seed in any::<u64>()) {
        let g = Star::new(n);
        check_topology(&g, seed)?;
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn erdos_renyi_invariants(n in 2usize..150, p in 0.01f64..1.0, seed in any::<u64>()) {
        let g = ErdosRenyi::sample(n, p, Seed::new(seed));
        check_topology(&g, seed)?;
        // The isolated-node patch guarantees min degree 1.
        for i in 0..n {
            prop_assert!(g.degree(NodeId::new(i)) >= 1);
        }
    }

    #[test]
    fn random_regular_invariants(
        half_n in 4usize..60,
        d in 1usize..6,
        seed in any::<u64>(),
    ) {
        let n = 2 * half_n; // even n so any d is feasible
        prop_assume!(d < n);
        let g = RandomRegular::sample(n, d, Seed::new(seed)).expect("n*d is even");
        check_topology(&g, seed)?;
        for i in 0..n {
            prop_assert_eq!(g.degree(NodeId::new(i)), d);
        }
    }

    /// BFS distances satisfy the triangle-ish property: neighbors differ by
    /// at most 1 from each other in distance from any source.
    #[test]
    fn bfs_distances_are_lipschitz_on_edges(n in 3usize..100, seed in any::<u64>()) {
        let g = Cycle::new(n);
        let src = NodeId::new(seed as usize % n);
        let dist = bfs_distances(&g, src);
        for i in 0..n {
            let u = NodeId::new(i);
            let du = dist[i].expect("cycle is connected");
            for v in g.neighbors(u) {
                let dv = dist[v.index()].expect("connected");
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
    }
}
