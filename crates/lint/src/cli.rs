//! The `xp lint` command line.
//!
//! ```text
//! xp lint                        lint the workspace, table output
//! xp lint --format json          machine-readable findings document
//! xp lint --root DIR             lint another tree (fixture testing)
//! xp lint rules                  list every rule with its description
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error — mirroring the
//! other `xp` subcommands so CI can gate on the process status alone.

use std::path::{Path, PathBuf};

use crate::rules::{self, RULE_IDS};
use crate::source::Workspace;

/// Output rendering for `xp lint`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum LintFormat {
    /// Human-readable findings list (the default).
    #[default]
    Table,
    /// The JSON findings document.
    Json,
}

/// A parsed `xp lint` invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum LintCommand {
    /// `xp lint help`.
    Help,
    /// `xp lint rules`.
    Rules,
    /// `xp lint [--format F] [--root DIR]`.
    Run {
        /// Output format.
        format: LintFormat,
        /// Workspace root override.
        root: Option<PathBuf>,
    },
}

/// A user error in the invocation (exit code 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintCliError {
    /// Unknown positional word.
    UnknownCommand(String),
    /// Unknown flag.
    UnknownFlag(String),
    /// Flag without its value.
    MissingValue(&'static str),
    /// `--format` with something other than `table|json`.
    BadFormat(String),
}

impl std::fmt::Display for LintCliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintCliError::UnknownCommand(c) => {
                write!(
                    f,
                    "unknown lint command {c:?} (try `xp lint` or `xp lint rules`)"
                )
            }
            LintCliError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            LintCliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            LintCliError::BadFormat(v) => write!(f, "--format must be table or json, got {v:?}"),
        }
    }
}

impl std::error::Error for LintCliError {}

const USAGE: &str = "\
xp lint — determinism & hygiene static analysis over the workspace's own source

USAGE:
    xp lint [OPTIONS]      lint every member crate; exit 1 on findings
    xp lint rules          list the rules
    xp lint help           this message

OPTIONS:
    --format table|json    stdout rendering (default: table)
    --root DIR             workspace root (default: this checkout)

Suppress a finding at one site with a reasoned marker on or above the line:
    // lint: allow(<rule-id>): <why this site is sound>
Manifests use `#` comments. Markers without a reason are findings themselves.
";

/// Parses an `xp lint` argument vector (after the `lint` word).
///
/// # Errors
///
/// Returns the first [`LintCliError`] encountered, left to right.
pub fn parse(args: &[String]) -> Result<LintCommand, LintCliError> {
    let mut it = args.iter().map(String::as_str);
    let mut format = LintFormat::default();
    let mut root = None;
    let mut saw_flag = false;
    while let Some(arg) = it.next() {
        match arg {
            "help" | "--help" | "-h" => return Ok(LintCommand::Help),
            "rules" => return Ok(LintCommand::Rules),
            "--format" => {
                saw_flag = true;
                let v = it.next().ok_or(LintCliError::MissingValue("--format"))?;
                format = match v {
                    "table" => LintFormat::Table,
                    "json" => LintFormat::Json,
                    other => return Err(LintCliError::BadFormat(other.to_string())),
                };
            }
            "--root" => {
                saw_flag = true;
                let v = it.next().ok_or(LintCliError::MissingValue("--root"))?;
                root = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => {
                return Err(LintCliError::UnknownFlag(flag.to_string()))
            }
            other => return Err(LintCliError::UnknownCommand(other.to_string())),
        }
    }
    let _ = saw_flag;
    Ok(LintCommand::Run { format, root })
}

/// The workspace root when `--root` is absent: two levels above this
/// crate's manifest directory (same anchoring as the other `xp`
/// subcommands).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Full `xp lint` entry point: parse, execute, map to an exit code.
pub fn run(args: &[String]) -> i32 {
    let cmd = match parse(args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("xp lint: {e}");
            eprintln!("run `xp lint help` for usage");
            return 2;
        }
    };
    match cmd {
        LintCommand::Help => {
            print!("{USAGE}");
            0
        }
        LintCommand::Rules => {
            for rule in RULE_IDS {
                println!("{rule:<24} {}", rules::rule_description(rule));
            }
            0
        }
        LintCommand::Run { format, root } => {
            let root = root.unwrap_or_else(default_root);
            let ws = match Workspace::discover(&root) {
                Ok(ws) => ws,
                Err(e) => {
                    eprintln!("xp lint: {e}");
                    return 2;
                }
            };
            let report = rules::run(&ws);
            match format {
                LintFormat::Table => print!("{}", report.to_table()),
                LintFormat::Json => println!("{}", report.to_json().to_pretty()),
            }
            i32::from(!report.clean())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<LintCommand, LintCliError> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn golden_parse_table() {
        assert_eq!(
            p(&[]),
            Ok(LintCommand::Run {
                format: LintFormat::Table,
                root: None
            })
        );
        assert_eq!(p(&["help"]), Ok(LintCommand::Help));
        assert_eq!(p(&["rules"]), Ok(LintCommand::Rules));
        assert_eq!(
            p(&["--format", "json", "--root", "/tmp/ws"]),
            Ok(LintCommand::Run {
                format: LintFormat::Json,
                root: Some(PathBuf::from("/tmp/ws"))
            })
        );
    }

    #[test]
    fn golden_error_table() {
        assert_eq!(
            p(&["bogus"]),
            Err(LintCliError::UnknownCommand("bogus".into()))
        );
        assert_eq!(
            p(&["--nope"]),
            Err(LintCliError::UnknownFlag("--nope".into()))
        );
        assert_eq!(
            p(&["--format"]),
            Err(LintCliError::MissingValue("--format"))
        );
        assert_eq!(
            p(&["--format", "xml"]),
            Err(LintCliError::BadFormat("xml".into()))
        );
    }

    #[test]
    fn errors_render_readably() {
        for (err, needle) in [
            (LintCliError::UnknownCommand("x".into()), "unknown lint"),
            (LintCliError::UnknownFlag("--x".into()), "--x"),
            (LintCliError::MissingValue("--root"), "--root"),
            (LintCliError::BadFormat("xml".into()), "xml"),
        ] {
            assert!(err.to_string().contains(needle), "{err:?}");
        }
    }

    #[test]
    fn default_root_is_the_workspace_checkout() {
        assert!(default_root().join("Cargo.toml").is_file());
    }
}
