//! Findings: what a rule reports, and the machine-readable document.

use crate::json::Json;

/// Schema version of the JSON findings document. Bump on any breaking
/// change to the field set.
pub const SCHEMA_VERSION: u64 = 1;

/// One rule violation at one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule id (e.g. `no-wall-clock`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The result of linting a workspace: findings plus scan accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Manifests scanned.
    pub manifests_scanned: usize,
    /// Allow-markers that suppressed at least one would-be finding.
    pub markers_honored: usize,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Canonical ordering: file, then line, then rule id.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
    }

    /// Per-rule finding counts, in rule-id order.
    pub fn per_rule(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.findings {
            match counts.iter_mut().find(|(r, _)| *r == f.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.rule, 1)),
            }
        }
        counts.sort_by_key(|(r, _)| *r);
        counts
    }

    /// The machine-readable findings document (`xp lint --format json`).
    pub fn to_json(&self) -> Json {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("rule".into(), Json::Str(f.rule.into())),
                    ("file".into(), Json::Str(f.file.clone())),
                    ("line".into(), Json::Num(f.line as f64)),
                    ("message".into(), Json::Str(f.message.clone())),
                    ("snippet".into(), Json::Str(f.snippet.clone())),
                ])
            })
            .collect();
        let rules = self
            .per_rule()
            .into_iter()
            .map(|(r, n)| (r.to_string(), Json::Num(n as f64)))
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            ("clean".into(), Json::Bool(self.clean())),
            ("findings".into(), Json::Arr(findings)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("total".into(), Json::Num(self.findings.len() as f64)),
                    ("per_rule".into(), Json::Obj(rules)),
                    ("files_scanned".into(), Json::Num(self.files_scanned as f64)),
                    (
                        "manifests_scanned".into(),
                        Json::Num(self.manifests_scanned as f64),
                    ),
                    (
                        "markers_honored".into(),
                        Json::Num(self.markers_honored as f64),
                    ),
                ]),
            ),
        ])
    }

    /// The human-readable table (`xp lint`, the default format).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.snippet
            ));
        }
        out.push_str(&format!(
            "{} finding(s) · {} files, {} manifests scanned · {} allow-marker(s) honored\n",
            self.findings.len(),
            self.files_scanned,
            self.manifests_scanned,
            self.markers_honored
        ));
        if !self.findings.is_empty() {
            out.push_str("per rule:");
            for (rule, n) in self.per_rule() {
                out.push_str(&format!(" {rule}={n}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: "no-wall-clock",
                    file: "crates/x/src/a.rs".into(),
                    line: 9,
                    message: "Instant::now outside crates/bench".into(),
                    snippet: "let t = Instant::now();".into(),
                },
                Finding {
                    rule: "panic-hygiene",
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    message: "expect() without a reasoned allow-marker".into(),
                    snippet: "foo.expect(\"bar\");".into(),
                },
            ],
            files_scanned: 2,
            manifests_scanned: 1,
            markers_honored: 1,
        }
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let mut r = sample();
        r.sort();
        assert_eq!(r.findings[0].line, 3);
        assert_eq!(r.findings[1].line, 9);
    }

    #[test]
    fn json_document_round_trips_and_carries_summary() {
        let r = sample();
        let text = r.to_json().to_pretty();
        let doc = Json::parse(&text).expect("emitted document parses");
        assert_eq!(doc.get("clean"), Some(&Json::Bool(false)));
        let summary = doc.get("summary").expect("summary");
        assert_eq!(summary.get("total").and_then(Json::as_num), Some(2.0));
        let findings = doc.get("findings").and_then(Json::as_arr).expect("array");
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("rule").and_then(Json::as_str),
            Some("no-wall-clock")
        );
    }

    #[test]
    fn table_mentions_every_finding_and_the_counts() {
        let t = sample().to_table();
        assert!(t.contains("crates/x/src/a.rs:9"));
        assert!(t.contains("panic-hygiene=1"));
        assert!(t.contains("2 finding(s)"));
    }
}
