//! A minimal JSON value: emit and parse, std only.
//!
//! `rapid-lint` deliberately depends on nothing — not even the workspace's
//! own `rapid-experiments` JSON module — so the findings document needs a
//! local emitter, and the fixture tests need a parser to prove the schema
//! round-trips. Both fit in this file. Object keys keep insertion order
//! (a `Vec` of pairs), so emitted documents are deterministic.

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64`; the findings schema only uses
/// integers small enough to round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline-free
    /// result, stable across runs.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a one-line description with a byte offset on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at offset {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("no-wall-clock".into())),
            ("line".into(), Json::Num(42.0)),
            ("clean".into(), Json::Bool(false)),
            (
                "items".into(),
                Json::Arr(vec![Json::Null, Json::Str("a \"quoted\" path\n".into())]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text), Ok(doc));
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(7.0).to_pretty(), "7");
        assert_eq!(Json::Num(2.5).to_pretty(), "2.5");
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("[1,").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"a\": [1, 2], \"s\": \"x\"}").expect("valid");
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("a")
                .and_then(Json::as_arr)
                .and_then(|a| a[0].as_num()),
            Some(1.0)
        );
    }
}
