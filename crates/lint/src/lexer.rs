//! A comment- and string-stripping lexer for Rust source.
//!
//! The rule engine never looks at raw source: it looks at the **code
//! view** (comments blanked, string/char literal *contents* blanked but
//! delimiters kept) so that a `panic!` inside a doc example or an
//! `Instant::now` inside an error message cannot fire a rule, and at the
//! **comment view** (comment text only) where allow-markers live.
//!
//! This is not a full Rust lexer — it recognises exactly the token
//! classes that decide "is this byte code or not": line comments, nested
//! block comments, string literals (including raw strings with any
//! number of `#`s and byte/raw-byte prefixes), char and byte-char
//! literals, and lifetimes. That is sufficient to classify every byte of
//! the workspace, and small enough to audit by eye.
//!
//! A third per-line channel marks `#[cfg(test)]` regions: the attribute
//! plus the braced item that follows it. Rules that exempt test code key
//! off it.

/// The per-line views of one source file produced by [`lex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lexed {
    /// Line `i` with comments removed and literal contents blanked.
    pub code: Vec<String>,
    /// Line `i`'s comment text only (without the `//` / `/*` markers).
    pub comments: Vec<String>,
    /// Whether line `i` lies inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth.
    BlockComment(u32),
    /// Inside `"…"`; the flag records whether the previous char escaped.
    Str(bool),
    /// Inside `r##"…"##` with the given number of `#`s.
    RawStr(u32),
    /// Inside `'…'`; the flag records whether the previous char escaped.
    CharLit(bool),
}

/// Lexes `source` into per-line code/comment views. See the module docs
/// for exactly which token classes are recognised.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut state = State::Code;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; every other state
            // carries across (block comments and raw strings span lines).
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                        // Skip the doc-comment sigil too, so the comment
                        // view starts at the text.
                        if matches!(chars.get(i), Some('/' | '!')) {
                            i += 1;
                        }
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                        continue;
                    }
                    '"' => {
                        code_line.push('"');
                        state = State::Str(false);
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string or byte-char prefix:
                        // r" r#" br" b" rb#" b'.
                        if let Some((kind, consumed)) = literal_prefix(&chars, i) {
                            match kind {
                                Prefix::RawStr(hashes) => {
                                    code_line.push_str(
                                        &chars[i..i + consumed].iter().collect::<String>(),
                                    );
                                    state = State::RawStr(hashes);
                                }
                                Prefix::Str => {
                                    code_line.push_str(
                                        &chars[i..i + consumed].iter().collect::<String>(),
                                    );
                                    state = State::Str(false);
                                }
                                Prefix::Char => {
                                    code_line.push_str(
                                        &chars[i..i + consumed].iter().collect::<String>(),
                                    );
                                    state = State::CharLit(false);
                                }
                            }
                            i += consumed;
                            continue;
                        }
                        code_line.push(c);
                    }
                    '\'' => {
                        // Char literal or lifetime. `'\…` and `'x'` are
                        // char literals; `'ident` (no closing quote right
                        // after one char) is a lifetime, which the code
                        // view keeps verbatim.
                        code_line.push('\'');
                        let is_char = next == Some('\\')
                            || (chars.get(i + 2) == Some(&'\'') && next != Some('\''));
                        if is_char {
                            state = State::CharLit(false);
                        }
                    }
                    _ => code_line.push(c),
                }
            }
            State::LineComment => comment_line.push(c),
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                comment_line.push(c);
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if c == '\\' {
                    state = State::Str(true);
                } else if c == '"' {
                    code_line.push('"');
                    state = State::Code;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closes = (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        code_line.push('"');
                        for _ in 0..hashes {
                            code_line.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                } else if c == '\\' {
                    state = State::CharLit(true);
                } else if c == '\'' {
                    code_line.push('\'');
                    state = State::Code;
                }
            }
        }
        i += 1;
    }
    // A final line without a terminating newline.
    if !code_line.is_empty() || !comment_line.is_empty() {
        code.push(code_line);
        comments.push(comment_line);
    }
    let in_test = mark_test_regions(&code);
    Lexed {
        code,
        comments,
        in_test,
    }
}

enum Prefix {
    Str,
    RawStr(u32),
    Char,
}

/// If `chars[i..]` starts a prefixed literal (`r"`, `r#"`, `b"`, `br#"`,
/// `b'`, …), returns its kind and how many chars the opener spans.
fn literal_prefix(chars: &[char], i: usize) -> Option<(Prefix, usize)> {
    let mut j = i;
    let mut raw = false;
    // Up to two prefix letters in either order (b, r).
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') => {
                raw = true;
                j += 1;
            }
            Some('b') => j += 1,
            _ => break,
        }
    }
    if j == i {
        return None;
    }
    if raw {
        let mut hashes = 0u32;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            return Some((Prefix::RawStr(hashes), j + 1 - i));
        }
        return None;
    }
    match chars.get(j) {
        Some('"') => Some((Prefix::Str, j + 1 - i)),
        Some('\'') => Some((Prefix::Char, j + 1 - i)),
        _ => None,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item: the attribute
/// line(s), then everything through the close of the first brace block
/// that follows.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut pending = false; // saw the attribute, waiting for `{`
    let mut depth = 0i64;
    let mut active = false;
    for (idx, line) in code.iter().enumerate() {
        if !active && !pending && (line.contains("#[cfg(test)]") || line.contains("cfg(all(test")) {
            pending = true;
        }
        if pending || active {
            in_test[idx] = true;
        }
        if pending || active {
            for ch in line.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        if pending {
                            pending = false;
                            active = true;
                        }
                    }
                    '}' => {
                        depth -= 1;
                        if active && depth <= 0 {
                            active = false;
                            depth = 0;
                        }
                    }
                    _ => {}
                }
            }
            // An attribute applied to a braceless item (e.g. a `use`)
            // ends at the first `;` before any `{`.
            if pending && line.contains(';') {
                pending = false;
            }
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_doc_comments() {
        let l = lex("let x = 1; // panic! here\n/// docs with Instant::now()\nlet y = 2;\n");
        assert_eq!(l.code[0], "let x = 1; ");
        assert!(l.comments[0].contains("panic!"));
        assert_eq!(l.code[1], "");
        assert!(l.comments[1].contains("Instant::now"));
        assert_eq!(l.code[2], "let y = 2;");
    }

    #[test]
    fn blanks_string_contents_but_keeps_delimiters() {
        let l = lex("call(\"panic! Instant::now\");\n");
        assert_eq!(l.code[0], "call(\"\");");
    }

    #[test]
    fn nested_block_comments_and_multiline_strings() {
        let l = lex("a /* one /* two */ still */ b\nlet s = \"line1\nline2\"; c\n");
        assert_eq!(l.code[0], "a  b");
        assert_eq!(l.code[1], "let s = \"");
        assert_eq!(l.code[2], "\"; c");
    }

    #[test]
    fn raw_strings_span_until_matching_hashes() {
        let l = lex("let s = r#\"has \" quote and panic!\"# ; done\n");
        assert_eq!(l.code[0], "let s = r#\"\"# ; done");
        let l = lex("let b = br\"bytes panic!\";\n");
        assert_eq!(l.code[0], "let b = br\"\";");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let l = lex("let c = '\\''; let q = '\"'; fn f<'a>(x: &'a str) {}\n");
        assert!(!l.code[0].contains('"') || !l.code[0].contains("= '\"'"));
        assert!(l.code[0].contains("fn f<'a>(x: &'a str) {}"));
        let l = lex("self.expect(b'{', \"msg\")\n");
        assert_eq!(l.code[0], "self.expect(b'', \"\")");
    }

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let l = lex(src);
        assert_eq!(l.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let l = lex(src);
        assert!(l.in_test[0] && l.in_test[1]);
        assert!(!l.in_test[2]);
    }

    #[test]
    fn comment_inside_string_is_code() {
        let l = lex("let url = \"https://example.com\"; after\n");
        assert_eq!(l.code[0], "let url = \"\"; after");
        assert_eq!(l.comments[0], "");
    }
}
