//! rapid-lint: determinism & hygiene static analysis over this
//! workspace's own source and manifests.
//!
//! Every claim the reproduction makes — oracle agreement, micro/macro
//! cross-validation, bit-identical fault-layer equivalence — rests on
//! invariants no test exercises directly: seeds fully determine runs,
//! RNG streams never collide, iteration order never leaks into an
//! outcome, the build needs nothing outside the repository. This crate
//! makes those invariants *machine-checked*: a small comment- and
//! string-stripping lexer ([`lexer`]) feeds a rule engine ([`rules`])
//! over every member crate, driven by `xp lint` ([`cli`]) and a blocking
//! CI job.
//!
//! The rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `rng-stream-registry` | literal `seed.child(N)` indices match the declared [`registry`] |
//! | `no-wall-clock` | `Instant::now`/`SystemTime::now` only in `crates/bench` |
//! | `no-unordered-iteration` | no `HashMap`/`HashSet` in engine crates |
//! | `panic-hygiene` | no `unwrap()`; `expect(`/`panic!` justified per site |
//! | `obs-rng-isolation` | trace emission sites never draw from an RNG stream |
//! | `zero-deps-policy` | manifests contain only path/workspace dependencies |
//! | `crate-header-policy` | every `lib.rs` forbids unsafe code and denies missing docs |
//!
//! Any rule can be suppressed at one site with a **reasoned** marker —
//! `// lint: allow(<rule-id>): <why>` (`#` comments in manifests);
//! markers without a reason are themselves findings (`marker-syntax`).
//! Findings are machine-readable ([`findings`], `xp lint --format
//! json`), and the live workspace is pinned clean by this crate's
//! `self_clean` integration test, so `cargo test` is itself the merge
//! gate.
//!
//! The crate is deliberately std-only with **zero** dependencies — not
//! even on the rest of the workspace — so the analysis pass satisfies
//! its own `zero-deps-policy` and never waits on an engine rebuild.
//!
//! # Example
//!
//! ```
//! use rapid_lint::source::{FileKind, SourceFile};
//! use rapid_lint::{findings::Report, rules};
//!
//! let file = SourceFile::from_source(
//!     "crates/core/src/hot.rs",
//!     FileKind::Src,
//!     "let t = std::time::Instant::now();\n",
//! );
//! let mut report = Report::default();
//! rules::check_file(&file, &mut report);
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "no-wall-clock");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cli;
pub mod findings;
pub mod json;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod source;
