//! The declared RNG stream registry: `Seed::child(N)` index → owner.
//!
//! Every deterministic engine in this workspace derives its random
//! streams as `seed.child(N)` for a small fixed `N`. Reproducibility of
//! published numbers rests on those indices never colliding: if a new
//! subsystem grabbed `child(1)` it would silently share the engine's
//! stream and every golden pin downstream would still pass while the
//! runs stopped being independent. This table is the single source of
//! truth; the `rng-stream-registry` rule fails the build on any literal
//! child index used outside it (and on a duplicate inside it). The same
//! table is documented for humans in `ARCHITECTURE.md`.
//!
//! Experiment-local streams (per-trial sub-seeds, topology sampling) may
//! use other indices behind a reasoned
//! `// lint: allow(rng-stream-registry): …` marker; runtime-offset
//! streams such as rapid-net's `NODE_STREAM + i` are non-literal and
//! out of static reach — they document their offset at the declaration.

/// One declared child-stream index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEntry {
    /// The literal index passed to `Seed::child`.
    pub id: u64,
    /// The subsystem that owns draws from this stream.
    pub owner: &'static str,
    /// Where the stream is consumed.
    pub consumer: &'static str,
    /// The PR that introduced the stream.
    pub introduced_in: &'static str,
}

/// The declared registry, in index order. Keep in sync with the table in
/// `ARCHITECTURE.md` (the `registry_matches_architecture_doc` test pins
/// that).
pub const STREAM_REGISTRY: &[StreamEntry] = &[
    StreamEntry {
        id: 0,
        owner: "scheduler",
        consumer: "activation schedulers (`crates/sim/src/scheduler.rs`, facade `Clock`)",
        introduced_in: "PR 1",
    },
    StreamEntry {
        id: 1,
        owner: "engine",
        consumer: "protocol engines: neighbor sampling and coin flips",
        introduced_in: "PR 1",
    },
    StreamEntry {
        id: 2,
        owner: "shuffle",
        consumer: "initial-configuration shuffling (`Sim` builder)",
        introduced_in: "PR 1",
    },
    StreamEntry {
        id: 3,
        owner: "jitter",
        consumer: "`JitteredScheduler` delay draws",
        introduced_in: "PR 1",
    },
    StreamEntry {
        id: 4,
        owner: "faults",
        consumer: "fault layer: loss, churn, adversary draws",
        introduced_in: "PR 4",
    },
    StreamEntry {
        id: 5,
        owner: "fault-latency",
        consumer: "`LatencyScheduler` per-activation delay draws",
        introduced_in: "PR 4",
    },
    StreamEntry {
        id: 6,
        owner: "macro",
        consumer: "`MacroSim` τ-leap and Gillespie draws",
        introduced_in: "PR 5",
    },
    StreamEntry {
        id: 7,
        owner: "sharded",
        consumer: "`ShardedSim` per-(epoch, node) activation streams \
                   (`child(7).child(epoch).child(node)`)",
        introduced_in: "PR 8",
    },
];

/// Whether `id` is a declared stream index.
pub fn is_registered(id: u64) -> bool {
    STREAM_REGISTRY.iter().any(|e| e.id == id)
}

/// The registry's own duplicate-index check; `Err` carries the first
/// duplicated id. The live table is pinned duplicate-free by a test, and
/// the rule engine re-checks at runtime so a future bad edit fails
/// `xp lint` rather than silently shadowing a stream.
pub fn duplicate_id() -> Result<(), u64> {
    for (i, e) in STREAM_REGISTRY.iter().enumerate() {
        if STREAM_REGISTRY[..i].iter().any(|p| p.id == e.id) {
            return Err(e.id);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicate_ids() {
        assert_eq!(duplicate_id(), Ok(()));
    }

    #[test]
    fn registry_covers_exactly_children_zero_through_seven() {
        let mut ids: Vec<u64> = STREAM_REGISTRY.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(is_registered(7));
        assert!(!is_registered(8));
    }
}
