//! The seven determinism & hygiene rules, and the engine that runs them.
//!
//! Each rule is a function from a lexed [`SourceFile`] (or [`Manifest`])
//! to findings; the engine applies scoping (which trees, which crates,
//! test-code exemption), then the allow-marker filter. Every rule can be
//! suppressed per-site with a reasoned
//! `// lint: allow(<rule-id>): <reason>` marker — suppressions are
//! counted, and malformed markers are themselves findings
//! (`marker-syntax`), so the escape hatch stays auditable.

use crate::findings::{Finding, Report};
use crate::registry;
use crate::source::{FileKind, Manifest, SourceFile, Workspace};

/// The crates whose iteration order can leak into simulation outcomes.
const ENGINE_CRATES: &[&str] = &[
    "crates/sim",
    "crates/core",
    "crates/macro",
    "crates/graph",
    "crates/net",
];

/// Rule ids, in the order they run. `marker-syntax` is the engine's own
/// rule for malformed allow-markers.
pub const RULE_IDS: &[&str] = &[
    "rng-stream-registry",
    "no-wall-clock",
    "no-unordered-iteration",
    "panic-hygiene",
    "obs-rng-isolation",
    "zero-deps-policy",
    "crate-header-policy",
    "marker-syntax",
];

/// One-line description per rule, for `xp lint rules`.
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "rng-stream-registry" => {
            "literal Seed::child(N) indices must appear in the declared stream registry"
        }
        "no-wall-clock" => "Instant::now / SystemTime::now are forbidden outside crates/bench",
        "no-unordered-iteration" => {
            "HashMap/HashSet in engine crates need a marker explaining why order cannot leak"
        }
        "panic-hygiene" => {
            "no unwrap() in non-test library code; expect()/panic! need reasoned markers"
        }
        "obs-rng-isolation" => {
            "trace emission sites must not draw from RNG streams (observation stays passive)"
        }
        "zero-deps-policy" => "every manifest dependency must be a path or workspace dependency",
        "crate-header-policy" => {
            "every lib.rs must carry #![forbid(unsafe_code)] and #![deny(missing_docs)]"
        }
        "marker-syntax" => "allow-markers must parse and carry a non-empty reason",
        _ => "unknown rule",
    }
}

/// Runs every rule over a discovered workspace.
pub fn run(ws: &Workspace) -> Report {
    let mut report = Report {
        files_scanned: ws.files.len(),
        manifests_scanned: ws.manifests.len(),
        ..Report::default()
    };
    // Registry self-check: a duplicate id in the declared table is a
    // workspace finding against the table itself.
    if let Err(dup) = registry::duplicate_id() {
        report.findings.push(Finding {
            rule: "rng-stream-registry",
            file: "crates/lint/src/registry.rs".into(),
            line: 1,
            message: format!("stream registry declares child index {dup} twice"),
            snippet: "STREAM_REGISTRY".into(),
        });
    }
    for file in &ws.files {
        check_file(file, &mut report);
    }
    for manifest in &ws.manifests {
        check_manifest(manifest, &mut report);
    }
    check_crate_headers(ws, &mut report);
    report.sort();
    report
}

/// Applies every per-line source rule to one file.
pub fn check_file(file: &SourceFile, report: &mut Report) {
    for bad in &file.bad_markers {
        report.findings.push(Finding {
            rule: "marker-syntax",
            file: file.rel.clone(),
            line: bad.line,
            message: bad.why.clone(),
            snippet: file.snippet(bad.line - 1),
        });
    }
    // Rules below only police shipping code: `tests/`, `examples/` and
    // `#[cfg(test)]` regions are exempt by design.
    if file.kind != FileKind::Src {
        return;
    }
    for i in 0..file.lexed.code.len() {
        if file.lexed.in_test[i] {
            continue;
        }
        let code = file.lexed.code[i].as_str();
        rng_stream_registry(file, i, code, report);
        no_wall_clock(file, i, code, report);
        no_unordered_iteration(file, i, code, report);
        panic_hygiene(file, i, code, report);
        obs_rng_isolation(file, i, code, report);
    }
}

/// Emits `finding` unless an allow-marker covers it; counts honored
/// markers.
fn emit(file: &SourceFile, i: usize, rule: &'static str, message: String, report: &mut Report) {
    if file.allowed(rule, i) {
        report.markers_honored += 1;
        return;
    }
    report.findings.push(Finding {
        rule,
        file: file.rel.clone(),
        line: i + 1,
        message,
        snippet: file.snippet(i),
    });
}

/// Rule 1: every literal `seed.child(N)` must use a registered stream
/// index. Identifier arguments are resolved against `const NAME: u64 =
/// <literal>` declarations in the same file; computed offsets (for
/// example `NODE_STREAM + i`) are out of static reach and skipped.
fn rng_stream_registry(file: &SourceFile, i: usize, code: &str, report: &mut Report) {
    let mut rest = code;
    while let Some(at) = rest.find(".child(") {
        // Only `…seed.child(`-shaped receivers: the token before `.child`
        // must end with `seed` (covers `seed`, `self.seed`, `spec.seed`).
        let before = &rest[..at];
        let recv_ok = before
            .trim_end()
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
            .map_or(before.trim_end(), |p| &before.trim_end()[p + 1..])
            .ends_with("seed");
        let args = &rest[at + ".child(".len()..];
        rest = args;
        if !recv_ok {
            continue;
        }
        let Some(close) = args.find(')') else {
            continue;
        };
        let arg = args[..close].trim();
        let value = parse_u64_literal(arg).or_else(|| resolve_const(file, arg));
        if let Some(id) = value {
            if !registry::is_registered(id) {
                emit(
                    file,
                    i,
                    "rng-stream-registry",
                    format!(
                        "seed.child({id}) uses an unregistered RNG stream index — declare it \
                         in rapid_lint::registry::STREAM_REGISTRY (and ARCHITECTURE.md) or \
                         justify an experiment-local stream with a marker"
                    ),
                    report,
                );
            }
        }
    }
}

fn parse_u64_literal(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if cleaned.is_empty() || !cleaned.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    cleaned.parse().ok()
}

/// Resolves a bare identifier against `const NAME: u64 = <literal>;` (or
/// `u32`/`usize`) anywhere in the same file's code view.
fn resolve_const(file: &SourceFile, ident: &str) -> Option<u64> {
    if ident.is_empty() || !ident.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    for line in &file.lexed.code {
        let Some(at) = line.find("const ") else {
            continue;
        };
        let decl = &line[at + "const ".len()..];
        let Some((name, rest)) = decl.split_once(':') else {
            continue;
        };
        if name.trim() != ident {
            continue;
        }
        let Some((_, value)) = rest.split_once('=') else {
            continue;
        };
        let value = value.trim().trim_end_matches(';').trim();
        if let Some(v) = parse_u64_literal(value) {
            return Some(v);
        }
    }
    None
}

/// Rule 2: wall-clock reads are forbidden outside `crates/bench` (the
/// measurement layer). Timing that is *reported but never steers
/// behaviour* gets a marker saying exactly that.
fn no_wall_clock(file: &SourceFile, i: usize, code: &str, report: &mut Report) {
    if file.crate_dir() == "crates/bench" {
        return;
    }
    for token in ["Instant::now", "SystemTime::now"] {
        if code.contains(token) {
            emit(
                file,
                i,
                "no-wall-clock",
                format!(
                    "{token} outside crates/bench — wall-clock reads break seeded \
                     reproducibility when they influence behaviour; prefer a deterministic \
                     activation/step budget, or mark measurement-only use"
                ),
                report,
            );
        }
    }
}

/// Rule 3: `HashMap`/`HashSet` in engine crates. Randomised iteration
/// order is invisible to every equivalence test until it leaks into an
/// outcome, so each use must say why it cannot.
fn no_unordered_iteration(file: &SourceFile, i: usize, code: &str, report: &mut Report) {
    if !ENGINE_CRATES.contains(&file.crate_dir()) {
        return;
    }
    for token in ["HashMap", "HashSet"] {
        if code.contains(token) {
            emit(
                file,
                i,
                "no-unordered-iteration",
                format!(
                    "{token} in an engine crate — iteration order is unseeded; use \
                     BTreeMap/BTreeSet/Vec, or mark why order cannot reach any outcome"
                ),
                report,
            );
        }
    }
}

/// Rule 4: panic hygiene in shipping code. `unwrap()` is always a
/// finding (convert to `expect` + marker, or a typed error); `expect(`
/// and `panic!`/`unreachable!` need a reasoned marker.
fn panic_hygiene(file: &SourceFile, i: usize, code: &str, report: &mut Report) {
    if code.contains(".unwrap()") {
        emit(
            file,
            i,
            "panic-hygiene",
            "unwrap() in library code — return a typed error, or use expect() with a \
             reasoned allow-marker"
                .to_string(),
            report,
        );
    }
    for token in [".expect(", "panic!", "unreachable!"] {
        if code.contains(token) {
            emit(
                file,
                i,
                "panic-hygiene",
                format!(
                    "{} in library code without a reasoned allow-marker — convert to a \
                     typed error or justify the invariant",
                    token.trim_matches(|c| c == '.' || c == '(')
                ),
                report,
            );
        }
    }
}

/// Rule 5: trace emission never touches randomness. The zero-overhead
/// contract pins goldens bit-identical with tracing on, off and absent,
/// which only holds if no emission site draws from (or even advances) an
/// RNG stream. A line that both emits a trace event and reaches an RNG
/// is flagged; payloads must come from already-materialised state.
fn obs_rng_isolation(file: &SourceFile, i: usize, code: &str, report: &mut Report) {
    if !code.contains("trace.emit(") {
        return;
    }
    for token in [
        "rng.",
        "rng().",
        ".child(",
        ".sample(",
        ".next_u64(",
        ".unit_f64(",
    ] {
        if code.contains(token) {
            emit(
                file,
                i,
                "obs-rng-isolation",
                format!(
                    "trace emission and RNG access (`{token}`) on one line — observers are \
                     passive and must never draw from or advance an RNG stream; bind the \
                     payload to a local first if the proximity is coincidental"
                ),
                report,
            );
            return;
        }
    }
}

/// Rule 6: zero-deps policy over one manifest. Every entry in a
/// dependency table must be a path or workspace dependency; anything
/// version- or git-shaped would reach outside the repository.
pub fn check_manifest(manifest: &Manifest, report: &mut Report) {
    for bad in &manifest.bad_markers {
        report.findings.push(Finding {
            rule: "marker-syntax",
            file: manifest.rel.clone(),
            line: bad.line,
            message: bad.why.clone(),
            snippet: manifest.lines[bad.line - 1].trim().to_string(),
        });
    }
    let mut in_dep_table = false;
    let mut in_dep_subtable = false;
    let mut subtable_ok = false;
    let mut subtable_start = 0usize;
    for (i, raw) in manifest.lines.iter().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            // Close a `[dependencies.foo]`-style subtable first.
            if in_dep_subtable && !subtable_ok {
                flag_dep(manifest, subtable_start, report);
            }
            in_dep_subtable = false;
            let section = line.trim_matches(['[', ']']);
            let last = section.rsplit('.').next().unwrap_or(section);
            let parent: Vec<&str> = section.split('.').collect();
            in_dep_table = matches!(
                last,
                "dependencies" | "dev-dependencies" | "build-dependencies"
            );
            // `[dependencies.foo]` — a single-dependency subtable.
            if !in_dep_table
                && parent.len() >= 2
                && matches!(
                    parent[parent.len() - 2],
                    "dependencies" | "dev-dependencies" | "build-dependencies"
                )
            {
                in_dep_subtable = true;
                subtable_ok = false;
                subtable_start = i;
            }
            continue;
        }
        if in_dep_subtable {
            if line.starts_with("path") || line == "workspace = true" {
                subtable_ok = true;
            }
            continue;
        }
        if !in_dep_table || line.is_empty() {
            continue;
        }
        // An entry line: `name = …` / `name.workspace = true`.
        if !line.contains('=') {
            continue;
        }
        let ok = line.contains("workspace = true") || line.contains("path =");
        if !ok {
            flag_dep(manifest, i, report);
        }
    }
    if in_dep_subtable && !subtable_ok {
        flag_dep(manifest, subtable_start, report);
    }
}

fn flag_dep(manifest: &Manifest, i: usize, report: &mut Report) {
    if manifest.allowed("zero-deps-policy", i) {
        report.markers_honored += 1;
        return;
    }
    report.findings.push(Finding {
        rule: "zero-deps-policy",
        file: manifest.rel.clone(),
        line: i + 1,
        message: "dependency is not a path/workspace dependency — the workspace builds \
                  from the repository alone; vendor or gate the code instead"
            .to_string(),
        snippet: manifest.lines[i].trim().to_string(),
    });
}

/// Rule 7: crate headers. Every member's `lib.rs` must forbid unsafe
/// code and deny missing docs, so the guarantees hold workspace-wide
/// rather than per-crate-by-convention.
pub fn check_crate_headers(ws: &Workspace, report: &mut Report) {
    for file in ws.lib_files() {
        for required in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            let present = file
                .lexed
                .code
                .iter()
                .any(|line| line.replace(' ', "").contains(&required.replace(' ', "")));
            if present {
                continue;
            }
            // Line 1 is the natural anchor; a marker there can suppress.
            if file.allowed("crate-header-policy", 0) {
                report.markers_honored += 1;
                continue;
            }
            report.findings.push(Finding {
                rule: "crate-header-policy",
                file: file.rel.clone(),
                line: 1,
                message: format!("crate root is missing `{required}`"),
                snippet: "(crate attributes)".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn lint_src(rel: &str, src: &str) -> Report {
        let file = SourceFile::from_source(rel, FileKind::Src, src);
        let mut report = Report::default();
        check_file(&file, &mut report);
        report.sort();
        report
    }

    #[test]
    fn every_rule_has_a_description() {
        for rule in RULE_IDS {
            assert_ne!(rule_description(rule), "unknown rule", "{rule}");
        }
    }

    #[test]
    fn child_receiver_must_be_seed_shaped() {
        let r = lint_src("crates/sim/src/x.rs", "let c = parent.child(9);\n");
        assert!(r.clean(), "non-seed receivers are out of scope: {r:?}");
        let r = lint_src("crates/sim/src/x.rs", "let c = spec.seed.child(9);\n");
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn const_indirection_is_resolved() {
        let src = "const MY_STREAM: u64 = 11;\nlet r = seed.child(MY_STREAM);\n";
        let r = lint_src("crates/sim/src/x.rs", src);
        assert_eq!(r.findings.len(), 1, "{r:?}");
        assert!(r.findings[0].message.contains("child(11)"));
        let src =
            "const MACRO_STREAM_INDEX: u64 = 6;\nlet r = spec.seed.child(MACRO_STREAM_INDEX);\n";
        assert!(lint_src("crates/macro/src/x.rs", src).clean());
    }

    #[test]
    fn computed_offsets_are_skipped() {
        let r = lint_src(
            "crates/net/src/x.rs",
            "const NODE_STREAM: u64 = 10_000;\nlet s = spec.seed.child(NODE_STREAM + i as u64);\n",
        );
        assert!(r.clean(), "{r:?}");
    }

    #[test]
    fn wall_clock_exempts_bench_crate() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(lint_src("crates/bench/src/x.rs", src).clean());
        let r = lint_src("crates/net/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "no-wall-clock");
    }

    #[test]
    fn unordered_iteration_scopes_to_engine_crates() {
        let src = "use std::collections::HashSet;\n";
        assert!(lint_src("crates/experiments/src/x.rs", src).clean());
        let r = lint_src("crates/graph/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "no-unordered-iteration");
    }

    #[test]
    fn panic_hygiene_fires_on_each_form() {
        let r = lint_src(
            "crates/core/src/x.rs",
            "a.unwrap();\nb.expect(\"msg\");\npanic!(\"boom\");\nunreachable!();\n",
        );
        assert_eq!(r.findings.len(), 4);
        assert!(r.findings.iter().all(|f| f.rule == "panic-hygiene"));
    }

    #[test]
    fn obs_rng_isolation_flags_emission_mixed_with_rng() {
        let src = "obs.trace.emit(\"s\", TraceEvent::Note { label: l, value: rng.unit_f64() });\n";
        let r = lint_src("crates/core/src/x.rs", src);
        assert_eq!(r.findings.len(), 1, "{r:?}");
        assert_eq!(r.findings[0].rule, "obs-rng-isolation");
    }

    #[test]
    fn obs_rng_isolation_leaves_passive_emission_alone() {
        // Payloads built from already-materialised state are the
        // sanctioned shape; `BiasSample` must not trip the `.sample(`
        // token either.
        let src = "obs.trace.emit(\"s\", TraceEvent::BiasSample { time, leader, support, runner_up, total });\n";
        assert!(lint_src("crates/core/src/x.rs", src).clean());
        // RNG use on a *different* line is fine: only co-located access
        // can smuggle a draw into the emission expression.
        let src = "let v = rng.unit_f64();\nobs.trace.emit(\"s\", TraceEvent::Note { label: l, value: v });\n";
        assert!(lint_src("crates/core/src/x.rs", src).clean());
    }

    #[test]
    fn obs_rng_isolation_honors_markers() {
        let src = "\
// lint: allow(obs-rng-isolation): `rng.len()` is a buffer, not a random stream.
obs.trace.emit(\"s\", TraceEvent::Note { label: l, value: rng.len() as f64 });
";
        let r = lint_src("crates/core/src/x.rs", src);
        assert!(r.clean(), "{r:?}");
        assert_eq!(r.markers_honored, 1);
    }

    #[test]
    fn test_code_and_doc_comments_are_exempt() {
        let src = "\
/// ```
/// x.unwrap();
/// ```
fn f() {}
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); panic!(); }
}
";
        assert!(lint_src("crates/core/src/x.rs", src).clean());
    }

    #[test]
    fn markers_suppress_and_are_counted() {
        let src = "\
// lint: allow(panic-hygiene): heap is refilled two lines up, never empty here.
let top = heap.peek_mut().expect(\"non-empty\");
";
        let r = lint_src("crates/sim/src/x.rs", src);
        assert!(r.clean(), "{r:?}");
        assert_eq!(r.markers_honored, 1);
    }

    #[test]
    fn bad_marker_is_a_finding_even_in_tests_tree() {
        let file = SourceFile::from_source(
            "crates/sim/tests/t.rs",
            FileKind::Test,
            "// lint: allow(panic-hygiene)\nfoo();\n",
        );
        let mut r = Report::default();
        check_file(&file, &mut r);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "marker-syntax");
    }

    #[test]
    fn manifest_rule_accepts_path_and_workspace_deps_only() {
        let m = Manifest::from_source(
            "crates/x/Cargo.toml",
            "[dependencies]\nrapid-sim.workspace = true\nlocal = { path = \"../local\" }\nserde = \"1\"\n",
        );
        let mut r = Report::default();
        check_manifest(&m, &mut r);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 4);
        assert_eq!(r.findings[0].rule, "zero-deps-policy");
    }

    #[test]
    fn manifest_rule_handles_subtables_and_markers() {
        let m = Manifest::from_source(
            "Cargo.toml",
            "[dependencies.foo]\nversion = \"1\"\n\n[dev-dependencies]\n# lint: allow(zero-deps-policy): test-only vendored shim\nbar = \"2\"\n",
        );
        let mut r = Report::default();
        check_manifest(&m, &mut r);
        assert_eq!(r.findings.len(), 1, "{r:?}");
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.markers_honored, 1);
    }

    #[test]
    fn non_dependency_version_keys_are_fine() {
        let m = Manifest::from_source(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[dependencies]\n",
        );
        let mut r = Report::default();
        check_manifest(&m, &mut r);
        assert!(r.clean(), "{r:?}");
    }
}
