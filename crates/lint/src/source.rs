//! Workspace discovery and the per-file source model.
//!
//! [`Workspace::discover`] reads the root `Cargo.toml` for the member
//! list, then walks every member's `src/`, `tests/` and `examples/`
//! trees (plus the root package's) collecting Rust files and manifests.
//! The walk is sorted, so findings come out in a stable order on every
//! machine.
//!
//! Allow-markers are parsed here, once per file, from the comment view:
//!
//! ```text
//! // lint: allow(<rule-id>): <reason>
//! ```
//!
//! A marker must carry a non-empty reason — a bare `allow` is itself
//! reported by the rule engine. A marker written on the offending line
//! (trailing comment) applies to that line; a marker on its own line
//! applies to the next code line, looking through further comment-only
//! lines so multi-line justifications work.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed};

/// Which tree of a crate a file came from; rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under some `src/`: shipping library/binary code.
    Src,
    /// Under some `tests/`: integration tests.
    Test,
    /// Under some `examples/`.
    Example,
}

/// One allow-marker parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// The rule the marker suppresses.
    pub rule: String,
    /// The justification after the colon; never empty for a valid marker.
    pub reason: String,
}

/// A malformed marker (missing reason, unparseable shape) — reported as
/// a finding so markers cannot silently rot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadMarker {
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub why: String,
}

/// One Rust source file with its lexed views and parsed markers.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Which tree the file belongs to.
    pub kind: FileKind,
    /// Lexed code/comment/test views.
    pub lexed: Lexed,
    /// `markers[i]` = markers written on line `i` (0-based).
    pub markers: Vec<Vec<Marker>>,
    /// Malformed markers to report.
    pub bad_markers: Vec<BadMarker>,
}

impl SourceFile {
    /// Builds a source file from text (the fixture-test entry point).
    pub fn from_source(rel: &str, kind: FileKind, text: &str) -> SourceFile {
        let lexed = lex(text);
        let mut markers = vec![Vec::new(); lexed.comments.len()];
        let mut bad_markers = Vec::new();
        for (i, comment) in lexed.comments.iter().enumerate() {
            parse_markers(comment, i, &mut markers[i], &mut bad_markers);
        }
        SourceFile {
            rel: rel.to_string(),
            kind,
            lexed,
            markers,
            bad_markers,
        }
    }

    /// The crate subdirectory (`crates/sim`) or `"."` for the root package.
    pub fn crate_dir(&self) -> &str {
        match self.rel.strip_prefix("crates/") {
            Some(rest) => {
                let end = rest.find('/').map_or(rest.len(), |i| i);
                &self.rel[..("crates/".len() + end)]
            }
            None => ".",
        }
    }

    /// Whether a finding of `rule` at 0-based line `i` is covered by a
    /// reasoned allow-marker: on the line itself, or on the run of
    /// comment-only lines directly above it.
    pub fn allowed(&self, rule: &str, i: usize) -> bool {
        let hit = |line: usize| self.markers[line].iter().any(|m| m.rule == rule);
        if hit(i) {
            return true;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let comment_only =
                self.lexed.code[j].trim().is_empty() && !self.lexed.comments[j].trim().is_empty();
            if !comment_only {
                return false;
            }
            if hit(j) {
                return true;
            }
        }
        false
    }

    /// The trimmed raw-ish snippet for a finding: the code view plus the
    /// comment, enough to recognise the line.
    pub fn snippet(&self, i: usize) -> String {
        let code = self.lexed.code[i].trim();
        if code.is_empty() {
            format!("// {}", self.lexed.comments[i].trim())
        } else {
            code.to_string()
        }
    }
}

/// Parses every `lint: allow(rule): reason` occurrence in one comment
/// line. TOML manifests reuse this on `#` comment text.
pub fn parse_markers(
    comment: &str,
    line_idx: usize,
    out: &mut Vec<Marker>,
    bad: &mut Vec<BadMarker>,
) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint: allow") {
        let tail = &rest[at + "lint: allow".len()..];
        match parse_one_marker(tail) {
            Ok(m) => out.push(m),
            Err(why) => bad.push(BadMarker {
                line: line_idx + 1,
                why,
            }),
        }
        rest = tail;
    }
}

fn parse_one_marker(tail: &str) -> Result<Marker, String> {
    let tail = tail
        .strip_prefix('(')
        .ok_or("expected `(` after `lint: allow`")?;
    let close = tail.find(')').ok_or("unclosed `(` in allow-marker")?;
    let rule = tail[..close].trim();
    if rule.is_empty() {
        return Err("empty rule id in allow-marker".into());
    }
    let after = tail[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or_default();
    if reason.is_empty() {
        return Err(format!(
            "allow({rule}) without a reason — write `lint: allow({rule}): <why>`"
        ));
    }
    Ok(Marker {
        rule: rule.to_string(),
        reason: reason.to_string(),
    })
}

/// One `Cargo.toml`, raw lines plus `#`-comment markers.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Workspace-relative path.
    pub rel: String,
    /// Raw lines.
    pub lines: Vec<String>,
    /// Markers per line.
    pub markers: Vec<Vec<Marker>>,
    /// Malformed markers.
    pub bad_markers: Vec<BadMarker>,
}

impl Manifest {
    /// Builds a manifest from text (the fixture-test entry point).
    pub fn from_source(rel: &str, text: &str) -> Manifest {
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut markers = vec![Vec::new(); lines.len()];
        let mut bad_markers = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            if let Some(hash) = line.find('#') {
                parse_markers(&line[hash + 1..], i, &mut markers[i], &mut bad_markers);
            }
        }
        Manifest {
            rel: rel.to_string(),
            lines,
            markers,
            bad_markers,
        }
    }

    /// Same-line / preceding-comment-line marker lookup as
    /// [`SourceFile::allowed`].
    pub fn allowed(&self, rule: &str, i: usize) -> bool {
        let hit = |line: usize| self.markers[line].iter().any(|m| m.rule == rule);
        if hit(i) {
            return true;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            if !self.lines[j].trim_start().starts_with('#') {
                return false;
            }
            if hit(j) {
                return true;
            }
        }
        false
    }
}

/// The discovered workspace: every Rust file and manifest under lint.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Member directories relative to the root (`crates/sim`, …), plus
    /// `"."` for the root package.
    pub members: Vec<String>,
    /// All Rust files, sorted by path.
    pub files: Vec<SourceFile>,
    /// All member manifests plus the root manifest, sorted by path.
    pub manifests: Vec<Manifest>,
}

/// An I/O or structure problem while discovering the workspace.
#[derive(Debug)]
pub enum DiscoverError {
    /// The root manifest could not be read.
    RootManifest(PathBuf, std::io::Error),
    /// A file under a member tree could not be read.
    File(PathBuf, std::io::Error),
}

impl std::fmt::Display for DiscoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoverError::RootManifest(p, e) => {
                write!(f, "cannot read workspace manifest {}: {e}", p.display())
            }
            DiscoverError::File(p, e) => write!(f, "cannot read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for DiscoverError {}

impl Workspace {
    /// Walks the workspace rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`DiscoverError`] when the root manifest or any discovered file
    /// cannot be read.
    pub fn discover(root: &Path) -> Result<Workspace, DiscoverError> {
        let manifest_path = root.join("Cargo.toml");
        let manifest_text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| DiscoverError::RootManifest(manifest_path.clone(), e))?;
        let mut members = parse_members(&manifest_text);
        // The root package, when the manifest also declares `[package]`.
        if manifest_text.lines().any(|l| l.trim() == "[package]") {
            members.push(".".to_string());
        }
        members.sort();
        members.dedup();

        let mut files = Vec::new();
        let mut manifests = vec![Manifest::from_source("Cargo.toml", &manifest_text)];
        for member in &members {
            let dir = if member == "." {
                root.to_path_buf()
            } else {
                root.join(member)
            };
            if member != "." {
                let mp = dir.join("Cargo.toml");
                if let Ok(text) = std::fs::read_to_string(&mp) {
                    manifests.push(Manifest::from_source(&rel_of(root, &mp), &text));
                }
            }
            for (tree, kind) in [
                ("src", FileKind::Src),
                ("tests", FileKind::Test),
                // `benches/` targets are measurement drivers, policed
                // like tests: markers are validated, source rules skip.
                ("benches", FileKind::Test),
                ("examples", FileKind::Example),
            ] {
                // The root package's trees coincide with the workspace
                // root; members own theirs.
                let tree_dir = dir.join(tree);
                if tree_dir.is_dir() {
                    walk_rs(root, &tree_dir, kind, &mut files)?;
                }
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        files.dedup_by(|a, b| a.rel == b.rel);
        manifests.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace {
            members,
            files,
            manifests,
        })
    }

    /// The `src/lib.rs` path of each member that has one (the
    /// crate-header rule's targets).
    pub fn lib_files(&self) -> Vec<&SourceFile> {
        self.files
            .iter()
            .filter(|f| {
                f.rel == "src/lib.rs"
                    || (f.rel.starts_with("crates/") && f.rel.ends_with("/src/lib.rs"))
            })
            .collect()
    }
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn walk_rs(
    root: &Path,
    dir: &Path,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> Result<(), DiscoverError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()),
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(root, &path, kind, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text =
                std::fs::read_to_string(&path).map_err(|e| DiscoverError::File(path.clone(), e))?;
            out.push(SourceFile::from_source(&rel_of(root, &path), kind, &text));
        }
    }
    Ok(())
}

/// Extracts the `members = [ … ]` list from the root manifest.
fn parse_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_workspace = t == "[workspace]";
            in_members = false;
        }
        if in_workspace && t.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in t.split('"').skip(1).step_by(2) {
                if piece != "." {
                    members.push(piece.to_string());
                }
            }
            if t.contains(']') {
                in_members = false;
            }
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_parse_rule_and_reason() {
        let f = SourceFile::from_source(
            "x.rs",
            FileKind::Src,
            "foo(); // lint: allow(no-wall-clock): measurement only\n",
        );
        assert_eq!(f.markers[0].len(), 1);
        assert_eq!(f.markers[0][0].rule, "no-wall-clock");
        assert_eq!(f.markers[0][0].reason, "measurement only");
        assert!(f.allowed("no-wall-clock", 0));
        assert!(!f.allowed("panic-hygiene", 0));
    }

    #[test]
    fn marker_without_reason_is_reported_not_honored() {
        let f = SourceFile::from_source(
            "x.rs",
            FileKind::Src,
            "foo(); // lint: allow(panic-hygiene)\n",
        );
        assert!(f.markers[0].is_empty());
        assert_eq!(f.bad_markers.len(), 1);
        assert!(f.bad_markers[0].why.contains("without a reason"));
    }

    #[test]
    fn standalone_marker_covers_next_code_line_through_comments() {
        let src = "\
// lint: allow(no-unordered-iteration): membership-only; order never
// leaks into any outcome.
let s = HashSet::new();
let t = HashSet::new();
";
        let f = SourceFile::from_source("x.rs", FileKind::Src, src);
        assert!(f.allowed("no-unordered-iteration", 2));
        assert!(
            !f.allowed("no-unordered-iteration", 3),
            "only the next code line"
        );
    }

    #[test]
    fn manifest_markers_use_hash_comments() {
        let m = Manifest::from_source(
            "Cargo.toml",
            "[dependencies]\n# lint: allow(zero-deps-policy): vendored stub\nweird = \"1\"\n",
        );
        assert!(m.allowed("zero-deps-policy", 2));
        assert!(!m.allowed("zero-deps-policy", 0));
    }

    #[test]
    fn member_parsing_reads_the_workspace_table() {
        let members = parse_members(
            "[workspace]\nmembers = [\n  \"crates/a\",\n  \"crates/b\",\n]\n[package]\n",
        );
        assert_eq!(members, vec!["crates/a", "crates/b"]);
    }

    #[test]
    fn crate_dir_classifies_root_and_members() {
        let f = SourceFile::from_source("crates/sim/src/rng.rs", FileKind::Src, "");
        assert_eq!(f.crate_dir(), "crates/sim");
        let f = SourceFile::from_source("src/lib.rs", FileKind::Src, "");
        assert_eq!(f.crate_dir(), ".");
    }
}
