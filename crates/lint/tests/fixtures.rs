//! Per-rule fixtures: every rule fires on its bad case, and a reasoned
//! allow-marker suppresses it. These are the executable specification of
//! the marker contract — if a rule's trigger or a marker's scope drifts,
//! one of these fails before the live workspace does.

use rapid_lint::findings::Report;
use rapid_lint::json::Json;
use rapid_lint::rules;
use rapid_lint::source::{FileKind, Manifest, SourceFile, Workspace};

/// Lints one in-memory `Src` file at the given path.
fn lint_src(rel: &str, text: &str) -> Report {
    let file = SourceFile::from_source(rel, FileKind::Src, text);
    let mut report = Report::default();
    rules::check_file(&file, &mut report);
    report.sort();
    report
}

fn rules_fired(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- rule 1

#[test]
fn rng_stream_registry_fires_on_unregistered_index() {
    let r = lint_src("crates/sim/src/x.rs", "let s = seed.child(42);\n");
    assert_eq!(rules_fired(&r), ["rng-stream-registry"]);
}

#[test]
fn rng_stream_registry_passes_registered_indices() {
    for id in 0..=6u64 {
        let src = format!("let s = seed.child({id});\n");
        let r = lint_src("crates/sim/src/x.rs", &src);
        assert!(r.clean(), "child({id}) is registered but fired: {r:?}");
    }
}

#[test]
fn rng_stream_registry_marker_suppresses() {
    let src = "// lint: allow(rng-stream-registry): experiment-local stream\n\
               let s = seed.child(42);\n";
    let r = lint_src("crates/sim/src/x.rs", src);
    assert!(r.clean());
    assert_eq!(r.markers_honored, 1);
}

#[test]
fn rng_stream_registry_resolves_const_indirection() {
    let bad = "const MY_STREAM: u64 = 99;\nlet s = seed.child(MY_STREAM);\n";
    let r = lint_src("crates/sim/src/x.rs", bad);
    assert_eq!(rules_fired(&r), ["rng-stream-registry"]);

    let good = "const MY_STREAM: u64 = 6;\nlet s = seed.child(MY_STREAM);\n";
    assert!(lint_src("crates/sim/src/x.rs", good).clean());
}

// ---------------------------------------------------------------- rule 2

#[test]
fn no_wall_clock_fires_outside_bench() {
    let r = lint_src(
        "crates/core/src/x.rs",
        "let t = std::time::Instant::now();\n",
    );
    assert_eq!(rules_fired(&r), ["no-wall-clock"]);
    let r = lint_src("crates/sim/src/x.rs", "let t = SystemTime::now();\n");
    assert_eq!(rules_fired(&r), ["no-wall-clock"]);
}

#[test]
fn no_wall_clock_exempts_bench_crate() {
    let r = lint_src(
        "crates/bench/src/x.rs",
        "let t = std::time::Instant::now();\n",
    );
    assert!(r.clean());
}

#[test]
fn no_wall_clock_marker_suppresses() {
    let src = "// lint: allow(no-wall-clock): measurement only\n\
               let t = std::time::Instant::now();\n";
    let r = lint_src("crates/core/src/x.rs", src);
    assert!(r.clean());
    assert_eq!(r.markers_honored, 1);
}

// ---------------------------------------------------------------- rule 3

#[test]
fn no_unordered_iteration_fires_in_engine_crates() {
    for krate in ["sim", "core", "macro", "graph", "net"] {
        let rel = format!("crates/{krate}/src/x.rs");
        let r = lint_src(&rel, "let m: HashMap<u32, u32> = HashMap::new();\n");
        assert!(
            rules_fired(&r).contains(&"no-unordered-iteration"),
            "{krate} is an engine crate but HashMap did not fire"
        );
    }
}

#[test]
fn no_unordered_iteration_exempts_non_engine_crates() {
    let r = lint_src(
        "crates/experiments/src/x.rs",
        "let s: HashSet<u32> = HashSet::new();\n",
    );
    assert!(r.clean());
}

#[test]
fn no_unordered_iteration_marker_suppresses() {
    let src = "// lint: allow(no-unordered-iteration): membership-only set\n\
               let s = std::collections::HashSet::new();\n";
    let r = lint_src("crates/graph/src/x.rs", src);
    assert!(r.clean());
    assert_eq!(r.markers_honored, 1);
}

// ---------------------------------------------------------------- rule 4

#[test]
fn panic_hygiene_fires_on_unwrap_expect_panic() {
    assert_eq!(
        rules_fired(&lint_src("crates/sim/src/x.rs", "x.unwrap();\n")),
        ["panic-hygiene"]
    );
    assert_eq!(
        rules_fired(&lint_src("crates/sim/src/x.rs", "x.expect(\"y\");\n")),
        ["panic-hygiene"]
    );
    assert_eq!(
        rules_fired(&lint_src("crates/sim/src/x.rs", "panic!(\"boom\");\n")),
        ["panic-hygiene"]
    );
    assert_eq!(
        rules_fired(&lint_src("crates/sim/src/x.rs", "unreachable!();\n")),
        ["panic-hygiene"]
    );
}

#[test]
fn panic_hygiene_exempts_cfg_test_and_test_files() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
    assert!(lint_src("crates/sim/src/x.rs", src).clean());

    let file = SourceFile::from_source("crates/sim/tests/t.rs", FileKind::Test, "x.unwrap();\n");
    let mut report = Report::default();
    rules::check_file(&file, &mut report);
    assert!(report.clean());
}

#[test]
fn panic_hygiene_ignores_panic_words_in_strings_and_comments() {
    let src = "let m = \"never panic! or .unwrap() here\"; // .expect( in prose\n";
    assert!(lint_src("crates/sim/src/x.rs", src).clean());
}

#[test]
fn panic_hygiene_marker_suppresses() {
    let src = "// lint: allow(panic-hygiene): invariant documented here\n\
               x.expect(\"invariant\");\n";
    let r = lint_src("crates/sim/src/x.rs", src);
    assert!(r.clean());
    assert_eq!(r.markers_honored, 1);
}

// ------------------------------------------------------- marker contract

#[test]
fn reasonless_marker_is_itself_a_finding() {
    let src = "// lint: allow(panic-hygiene)\nx.expect(\"y\");\n";
    let r = lint_src("crates/sim/src/x.rs", src);
    assert!(rules_fired(&r).contains(&"marker-syntax"));
}

#[test]
fn marker_for_one_rule_does_not_cover_another() {
    let src = "// lint: allow(no-wall-clock): measurement only\n\
               let t = std::time::Instant::now().checked_add(d).unwrap();\n";
    let r = lint_src("crates/core/src/x.rs", src);
    assert_eq!(rules_fired(&r), ["panic-hygiene"]);
}

#[test]
fn marker_does_not_leak_past_the_next_code_line() {
    let src = "// lint: allow(panic-hygiene): first site only\n\
               a.expect(\"one\");\n\
               b.expect(\"two\");\n";
    let r = lint_src("crates/sim/src/x.rs", src);
    assert_eq!(rules_fired(&r), ["panic-hygiene"]);
    assert_eq!(r.findings[0].line, 3);
}

// ---------------------------------------------------------------- rule 5

#[test]
fn zero_deps_policy_fires_on_registry_dependency() {
    let toml = "[package]\nname = \"x\"\n[dependencies]\nserde = \"1\"\n";
    let manifest = Manifest::from_source("crates/x/Cargo.toml", toml);
    let mut report = Report::default();
    rules::check_manifest(&manifest, &mut report);
    assert_eq!(rules_fired(&report), ["zero-deps-policy"]);
}

#[test]
fn zero_deps_policy_passes_path_and_workspace_deps() {
    let toml = "[package]\nname = \"x\"\n\
                [dependencies]\n\
                rapid-sim.workspace = true\n\
                rapid-core = { workspace = true }\n\
                rapid-lint = { path = \"../lint\" }\n\
                [dev-dependencies]\n\
                rapid-stats.workspace = true\n";
    let manifest = Manifest::from_source("crates/x/Cargo.toml", toml);
    let mut report = Report::default();
    rules::check_manifest(&manifest, &mut report);
    assert!(report.clean(), "{report:?}");
}

#[test]
fn zero_deps_policy_marker_suppresses() {
    let toml = "[package]\nname = \"x\"\n[dependencies]\n\
                # lint: allow(zero-deps-policy): vendored exception\n\
                serde = \"1\"\n";
    let manifest = Manifest::from_source("crates/x/Cargo.toml", toml);
    let mut report = Report::default();
    rules::check_manifest(&manifest, &mut report);
    assert!(report.clean());
    assert_eq!(report.markers_honored, 1);
}

// ---------------------------------------------------------------- rule 6

fn workspace_with_lib(lib_source: &str) -> Workspace {
    Workspace {
        members: vec!["crates/x".into()],
        files: vec![SourceFile::from_source(
            "crates/x/src/lib.rs",
            FileKind::Src,
            lib_source,
        )],
        manifests: Vec::new(),
    }
}

#[test]
fn crate_header_policy_fires_on_missing_headers() {
    let ws = workspace_with_lib("//! Docs.\npub fn f() {}\n");
    let mut report = Report::default();
    rules::check_crate_headers(&ws, &mut report);
    assert_eq!(
        rules_fired(&report),
        ["crate-header-policy", "crate-header-policy"]
    );
}

#[test]
fn crate_header_policy_passes_complete_headers() {
    let ws = workspace_with_lib(
        "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n",
    );
    let mut report = Report::default();
    rules::check_crate_headers(&ws, &mut report);
    assert!(report.clean(), "{report:?}");
}

// ----------------------------------------------------------- JSON schema

#[test]
fn json_document_round_trips_through_own_parser() {
    let r = lint_src(
        "crates/sim/src/x.rs",
        "let t = std::time::Instant::now();\nx.unwrap();\n",
    );
    let text = r.to_json().to_pretty();
    let doc = Json::parse(&text).expect("emitted findings document parses");

    assert_eq!(doc.get("schema_version").and_then(Json::as_num), Some(1.0));
    assert_eq!(doc.get("clean"), Some(&Json::Bool(false)));
    let findings = doc.get("findings").and_then(Json::as_arr).expect("array");
    assert_eq!(findings.len(), 2);
    for f in findings {
        for key in ["rule", "file", "line", "message", "snippet"] {
            assert!(f.get(key).is_some(), "finding missing field {key}");
        }
    }
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("total").and_then(Json::as_num), Some(2.0));
    assert!(summary.get("per_rule").is_some());
}
