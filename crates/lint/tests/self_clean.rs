//! The live workspace is pinned clean: `cargo test` is itself the merge
//! gate for every lint rule, independent of whether CI runs `xp lint`.

use rapid_lint::rules;
use rapid_lint::source::Workspace;

fn workspace_root() -> std::path::PathBuf {
    // crates/lint -> crates -> workspace root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn live_workspace_is_clean() {
    let ws = Workspace::discover(&workspace_root()).expect("workspace discovery");
    let report = rules::run(&ws);
    assert!(
        report.clean(),
        "the workspace has lint findings — run `xp lint` for the list:\n{}",
        report.to_table()
    );
}

#[test]
fn discovery_sees_the_whole_workspace() {
    let ws = Workspace::discover(&workspace_root()).expect("workspace discovery");
    // 11 member crates + the lint crate itself + the root package.
    assert_eq!(ws.members.len(), 13, "members: {:?}", ws.members);
    assert!(
        ws.members.iter().any(|m| m == "crates/lint"),
        "the lint crate must lint itself"
    );
    // Workspace manifest + one per member with its own Cargo.toml (the
    // root package shares the workspace manifest).
    assert_eq!(ws.manifests.len(), 13);
    let report = rules::run(&ws);
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — discovery lost a tree",
        report.files_scanned
    );
    assert!(
        report.markers_honored >= 80,
        "only {} markers honored — marker parsing regressed",
        report.markers_honored
    );
}
