//! Micro/macro cross-validation: the evidence that the count-based
//! engine simulates the *same* process as the per-node engines.
//!
//! The harness runs matched trial sets of a micro simulation (through the
//! `Sim` facade) and a macro simulation ([`crate::MacroSim`]) from the
//! same workload, records the occupancy trajectory (color fractions) of
//! every trial at a common grid of time checkpoints, and compares the two
//! mean trajectories:
//!
//! * per checkpoint, the **total-variation distance** between the mean
//!   micro and mean macro occupancy vectors;
//! * per checkpoint and color, a bootstrap percentile CI
//!   ([`rapid_stats::bootstrap::bootstrap_ci`]) for each engine's mean
//!   fraction — agreement means the intervals overlap (within a small
//!   absolute slack absorbing finite-trial noise at tiny variances).
//!
//! Experiment E20 tabulates this report; the acceptance tests in
//! `crates/macro/tests` assert it for both gossip and rapid protocols at
//! `n ∈ {2¹⁰, 2¹⁴}`.

use rapid_core::facade::{EngineKind, MacroProtocol, Sim};
use rapid_core::prelude::*;
use rapid_graph::prelude::*;
use rapid_sim::rng::{Seed, SimRng};
use rapid_sim::time::SimTime;
use rapid_stats::bootstrap::bootstrap_ci;

use crate::engine::{MacroMode, MacroSim};

/// Absolute slack added to the CI-overlap test: with a handful of trials
/// a fraction that is essentially deterministic (variance ≈ 0) yields a
/// zero-width interval, which no finite simulation can hit exactly.
const OVERLAP_SLACK: f64 = 0.02;

/// Configuration of one cross-validation comparison.
#[derive(Clone, Debug)]
pub struct CrossValConfig {
    /// Population size.
    pub n: u64,
    /// Initial per-color counts (color 0 first; must sum to `n`).
    pub counts: Vec<u64>,
    /// The protocol to compare.
    pub protocol: MacroProtocol,
    /// Time checkpoints (time units) at which occupancies are compared.
    pub checkpoints: Vec<f64>,
    /// Trials per engine.
    pub trials: u64,
    /// Master seed (micro trial `i` uses `child(i)`, macro trial `i`
    /// uses `child(1000 + i)` — independent streams, same workload).
    pub seed: u64,
    /// Bootstrap resamples per CI.
    pub resamples: usize,
    /// Bootstrap confidence level.
    pub level: f64,
    /// Stepping regime forced on the macro trials
    /// ([`MacroMode::Auto`] by default; force [`MacroMode::TauLeap`] to
    /// validate the leap path itself against micro).
    pub mode: MacroMode,
}

impl CrossValConfig {
    /// A comparison with the harness defaults (8 trials, 500 resamples,
    /// 95% CIs, checkpoints over the protocol's natural horizon).
    pub fn new(n: u64, counts: Vec<u64>, protocol: MacroProtocol) -> Self {
        assert_eq!(counts.iter().sum::<u64>(), n, "counts must sum to n");
        let horizon = match protocol {
            MacroProtocol::Gossip(_) => 4.0 * (n as f64).ln(),
            MacroProtocol::Rapid(p) => p.total_len() as f64,
        };
        let checkpoints = (1..=6).map(|i| horizon * i as f64 / 6.0).collect();
        CrossValConfig {
            n,
            counts,
            protocol,
            checkpoints,
            trials: 8,
            seed: 0xC505,
            resamples: 500,
            level: 0.95,
            mode: MacroMode::Auto,
        }
    }
}

/// Agreement measurements at one checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointAgreement {
    /// The checkpoint (time units).
    pub time: f64,
    /// Mean micro fractions per color.
    pub micro_mean: Vec<f64>,
    /// Bootstrap CI per color for the micro mean.
    pub micro_ci: Vec<(f64, f64)>,
    /// Mean macro fractions per color.
    pub macro_mean: Vec<f64>,
    /// Bootstrap CI per color for the macro mean.
    pub macro_ci: Vec<(f64, f64)>,
    /// Total-variation distance between the two mean occupancy vectors.
    pub tv: f64,
    /// Whether every color's CIs overlap (within the harness slack).
    pub agree: bool,
}

/// The full cross-validation report.
#[derive(Clone, Debug)]
pub struct CrossValReport {
    /// One agreement record per configured checkpoint.
    pub checkpoints: Vec<CheckpointAgreement>,
}

impl CrossValReport {
    /// Whether every checkpoint agrees.
    pub fn all_agree(&self) -> bool {
        self.checkpoints.iter().all(|c| c.agree)
    }

    /// The worst (largest) TV distance across checkpoints.
    pub fn max_tv(&self) -> f64 {
        self.checkpoints.iter().map(|c| c.tv).fold(0.0, f64::max)
    }
}

/// Captures per-time-unit occupancy snapshots of a micro run.
struct TrajectoryObserver {
    snapshots: Vec<(f64, Vec<u64>)>,
}

impl Observer for TrajectoryObserver {
    fn observe(&mut self, progress: &Progress<'_>) {
        let t = progress
            .time
            .map(SimTime::as_secs)
            .unwrap_or(progress.steps as f64);
        self.snapshots
            .push((t, progress.config.counts().as_slice().to_vec()));
    }
}

/// The fractions at checkpoint `t`: the latest snapshot not after `t`
/// (runs that end early — unanimity — hold their final state).
fn fractions_at(snapshots: &[(f64, Vec<u64>)], t: f64, n: u64) -> Vec<f64> {
    let mut best = &snapshots[0].1;
    for (time, counts) in snapshots {
        if *time <= t {
            best = counts;
        } else {
            break;
        }
    }
    best.iter().map(|&c| c as f64 / n as f64).collect()
}

fn micro_trial(cfg: &CrossValConfig, seed: Seed, horizon: f64) -> Vec<(f64, Vec<u64>)> {
    let mut builder = Sim::builder()
        .topology(Complete::new(cfg.n as usize))
        .counts(&cfg.counts)
        .seed(seed)
        .stop(StopCondition::TimeHorizon(SimTime::from_secs(horizon)));
    builder = match cfg.protocol {
        MacroProtocol::Gossip(rule) => builder.gossip(rule),
        MacroProtocol::Rapid(params) => builder.rapid(params),
    };
    // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
    let mut sim = builder.build().expect("validated micro assembly");
    let mut observer = TrajectoryObserver {
        snapshots: Vec::new(),
    };
    sim.run_observed(&mut observer);
    observer.snapshots
}

fn macro_trial(cfg: &CrossValConfig, seed: Seed, horizon: f64) -> Vec<(f64, Vec<u64>)> {
    let mut builder = Sim::builder()
        .topology(Complete::new(cfg.n as usize))
        .counts(&cfg.counts)
        .engine(EngineKind::Macro)
        .seed(seed)
        .stop(StopCondition::TimeHorizon(SimTime::from_secs(horizon)));
    builder = match cfg.protocol {
        MacroProtocol::Gossip(rule) => builder.gossip(rule),
        MacroProtocol::Rapid(params) => builder.rapid(params),
    };
    let mut sim = MacroSim::from_builder(builder)
        // lint: allow(panic-hygiene): inputs are fixed by the experiment/benchmark definition; build failure is a programming error
        .expect("validated macro assembly")
        .with_mode(cfg.mode);
    let mut snapshots = Vec::new();
    sim.run_traced(|t, counts| snapshots.push((t.as_secs(), counts.to_vec())));
    snapshots
}

/// Runs the comparison.
///
/// # Panics
///
/// Panics if the configuration is structurally invalid (empty
/// checkpoints, zero trials, counts not summing to `n`).
pub fn cross_validate(cfg: &CrossValConfig) -> CrossValReport {
    assert!(!cfg.checkpoints.is_empty(), "need at least one checkpoint");
    assert!(cfg.trials > 0, "need at least one trial");
    // Micro trials draw child(i), macro trials child(1000 + i): the
    // offset is the independence contract between the two trial sets.
    assert!(
        cfg.trials <= 1000,
        "more than 1000 trials would collide the seed streams"
    );
    let k = cfg.counts.len();
    let master = Seed::new(cfg.seed);
    let horizon = cfg.checkpoints.iter().fold(0.0f64, |a, &b| a.max(b));

    // trajectories[trial][checkpoint][color]
    let collect = |trajectories: Vec<Vec<(f64, Vec<u64>)>>| -> Vec<Vec<Vec<f64>>> {
        trajectories
            .iter()
            .map(|snaps| {
                cfg.checkpoints
                    .iter()
                    .map(|&t| fractions_at(snaps, t, cfg.n))
                    .collect()
            })
            .collect()
    };
    let micro = collect(
        (0..cfg.trials)
            .map(|i| micro_trial(cfg, master.child(i), horizon))
            .collect(),
    );
    let macro_ = collect(
        (0..cfg.trials)
            .map(|i| macro_trial(cfg, master.child(1000 + i), horizon))
            .collect(),
    );

    let mut boot_rng = SimRng::from_seed_value(master.child(2000));
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let checkpoints = cfg
        .checkpoints
        .iter()
        .enumerate()
        .map(|(ci, &time)| {
            let mut micro_mean = Vec::with_capacity(k);
            let mut micro_ci = Vec::with_capacity(k);
            let mut macro_mean = Vec::with_capacity(k);
            let mut macro_ci = Vec::with_capacity(k);
            let mut agree = true;
            let mut tv = 0.0;
            for j in 0..k {
                let m: Vec<f64> = micro.iter().map(|t| t[ci][j]).collect();
                let g: Vec<f64> = macro_.iter().map(|t| t[ci][j]).collect();
                let ci_m = bootstrap_ci(&m, mean, cfg.resamples, cfg.level, &mut boot_rng);
                let ci_g = bootstrap_ci(&g, mean, cfg.resamples, cfg.level, &mut boot_rng);
                tv += (ci_m.estimate - ci_g.estimate).abs();
                let overlap =
                    ci_m.lo - OVERLAP_SLACK <= ci_g.hi && ci_g.lo - OVERLAP_SLACK <= ci_m.hi;
                agree &= overlap;
                micro_mean.push(ci_m.estimate);
                micro_ci.push((ci_m.lo, ci_m.hi));
                macro_mean.push(ci_g.estimate);
                macro_ci.push((ci_g.lo, ci_g.hi));
            }
            CheckpointAgreement {
                time,
                micro_mean,
                micro_ci,
                macro_mean,
                macro_ci,
                tv: tv / 2.0,
                agree,
            }
        })
        .collect();
    CrossValReport { checkpoints }
}
